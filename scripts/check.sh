#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> network-chaos equivalence suite"
cargo test -p pado-core --test network_chaos -q

echo "==> memory-pressure equivalence suite"
cargo test -p pado-core --test memory_pressure -q

echo "==> reconfig chaos matrix (110 seeds, epoch fencing + byte-identical)"
cargo test -p pado-core --test reconfig_chaos -q

echo "==> WAL codec property suite (round-trip + corruption recovery)"
cargo test -p pado-core --test wal_properties -q

echo "==> crash-recovery matrix (110 seeds, WAL replay + byte-identical)"
cargo test -p pado-core --test crash_recovery -q

echo "==> data-plane small-budget smoke (spill-to-disk, byte-identical)"
cargo run -p pado-bench --release --bin dataplane -- --smoke --mem-budget auto >/dev/null

echo "==> backend differential matrix (sim vs threaded, byte-identical)"
cargo test -p pado-core --test backend_equivalence -q

echo "==> fault-injector regression (legacy draw formulas + cross-backend proptests)"
cargo test -p pado-core --test fault_injector -q

echo "==> threaded chaos matrices (five fault families vs same-seed sim) + watchdog wedge"
cargo test -p pado-core --test threaded_chaos -q

echo "==> threaded soak (10 rounds of chaos against fault-free sim baseline)"
cargo test -p pado-core --test backend_equivalence -q -- --ignored

echo "==> data-plane smoke on the threaded backend (byte-identity vs sim)"
cargo run -p pado-bench --release --bin dataplane -- --smoke --backend threaded >/dev/null

echo "All checks passed."
