//! The Map-Reduce workload (§5.1.3): summing page views per document
//! over a month of hourly pageview records, as in the paper's 280 GB
//! Wikipedia dump experiment.

use std::collections::BTreeMap;

use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, Value};
use pado_engines::{CostModel, OpCost};

/// Scale of a real (in-process) Map-Reduce run.
#[derive(Debug, Clone)]
pub struct MrConfig {
    /// Distinct documents.
    pub pages: usize,
    /// Pageview records.
    pub records: usize,
    /// Read/map parallelism.
    pub partitions: usize,
    /// Reduce parallelism.
    pub reducers: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for MrConfig {
    fn default() -> Self {
        MrConfig {
            pages: 50,
            records: 2_000,
            partitions: 8,
            reducers: 4,
            seed: 7,
        }
    }
}

/// Generates hourly pageview lines: `"<page> <hour> <count>"`.
pub fn generate_pageviews(cfg: &MrConfig) -> Vec<Value> {
    (0..cfg.records)
        .map(|i| {
            let h = crate::util::hash_unit(cfg.seed, i as u64);
            let page = ((h + 0.5) * cfg.pages as f64) as usize % cfg.pages.max(1);
            let hour = i % 24;
            let count = 1 + (i * 31 + page * 7) % 100;
            Value::from(format!("page-{page} {hour} {count}"))
        })
        .collect()
}

/// Builds the Map-Reduce dataflow of Figure 3(a) over real data.
pub fn dag(cfg: &MrConfig) -> LogicalDag {
    let data = generate_pageviews(cfg);
    let p = Pipeline::new();
    p.read("Read", cfg.partitions, SourceFn::from_vec(data))
        .par_do(
            "Map",
            ParDoFn::per_element(|line, emit| {
                let line = line.as_str().unwrap_or("");
                let mut it = line.split_whitespace();
                if let (Some(page), Some(_hour), Some(count)) = (it.next(), it.next(), it.next()) {
                    if let Ok(c) = count.parse::<i64>() {
                        emit(Value::pair(Value::from(page), Value::from(c)));
                    }
                }
            }),
        )
        .combine_per_key("Reduce", CombineFn::sum_i64())
        .with_parallelism(cfg.reducers)
        .sink("Out");
    p.build().expect("map-reduce DAG is valid")
}

/// Single-threaded reference: total views per page.
pub fn reference(cfg: &MrConfig) -> BTreeMap<String, i64> {
    let mut out = BTreeMap::new();
    for line in generate_pageviews(cfg) {
        let line = line.as_str().unwrap_or("").to_string();
        let mut it = line.split_whitespace();
        if let (Some(page), Some(_h), Some(count)) = (it.next(), it.next(), it.next()) {
            *out.entry(page.to_string()).or_insert(0) += count.parse::<i64>().unwrap_or(0);
        }
    }
    out
}

/// Extracts the engine's `Out` sink into a comparable map.
pub fn result_to_map(records: &[Value]) -> BTreeMap<String, i64> {
    records
        .iter()
        .filter_map(|r| {
            let k = r.key()?.as_str()?.to_string();
            let v = r.val()?.as_i64()?;
            Some((k, v))
        })
        .collect()
}

/// The paper-scale Map-Reduce job for the simulator: 280 GB of pageview
/// records in 128 MB blocks (2240 map tasks), reduced by 160 tasks.
/// Text-processing throughput of ~10 MB/s/core and a ~5× in-map reduction
/// of the shuffle volume.
pub fn paper() -> (LogicalDag, CostModel) {
    let p = Pipeline::new();
    let read = p.read("Read", 2240, SourceFn::from_vec(vec![]));
    let map = read.par_do("Map", ParDoFn::per_element(|_, _| {}));
    let red = map
        .combine_per_key("Reduce", CombineFn::sum_i64())
        .with_parallelism(160);
    let sink = red.sink("Write");
    let mut cost = CostModel::new();
    cost.set(
        read.op_id(),
        OpCost {
            compute_us: 4_000_000,
            read_store_bytes: 128e6,
            output_bytes: 128e6,
        },
    )
    .set(
        map.op_id(),
        OpCost {
            compute_us: 9_000_000,
            read_store_bytes: 0.0,
            output_bytes: 25.6e6,
        },
    )
    .set(
        red.op_id(),
        OpCost {
            compute_us: 3_000_000,
            read_store_bytes: 0.0,
            output_bytes: 1e6,
        },
    )
    .set(
        sink.op_id(),
        OpCost {
            compute_us: 500_000,
            read_store_bytes: 0.0,
            output_bytes: 1e6,
        },
    );
    // Reduce is a commutative/associative sum: Pado pre-aggregates map
    // outputs per transient container before the push. With ~56 map
    // tasks per container per wave merging keys, the pushed volume
    // shrinks to roughly 60 % (hot keys collapse, the long tail does
    // not).
    cost.set_preagg(red.op_id(), 0.6);
    (p.build().expect("valid paper MR DAG"), cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = MrConfig::default();
        assert_eq!(generate_pageviews(&cfg), generate_pageviews(&cfg));
    }

    #[test]
    fn reference_counts_every_record() {
        let cfg = MrConfig {
            pages: 3,
            records: 100,
            ..Default::default()
        };
        let m = reference(&cfg);
        assert!(m.len() <= 3);
        assert!(m.values().all(|&v| v > 0));
    }

    #[test]
    fn dag_has_expected_shape() {
        let dag = dag(&MrConfig::default());
        assert_eq!(dag.len(), 4);
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn paper_dag_compiles() {
        let (dag, _) = paper();
        let plan = pado_core::compiler::compile(&dag).unwrap();
        // Read+Map fused transient; Reduce and Write reserved.
        assert_eq!(plan.total_tasks(), 2240 + 160 + 160);
    }
}
