//! The Alternating Least Squares workload (§5.1.3): matrix-factorization
//! recommendation with the long, complex iterative dependency structure
//! of Figure 3(c) — the workload most vulnerable to critical chains.

use std::collections::BTreeMap;

use pado_dag::{LogicalDag, ParDoFn, Pipeline, SourceFn, TaskInput, Value};
use pado_engines::{CostModel, OpCost};

use crate::util::{hash_unit, keep_one, list_append, solve_dense};

/// Scale of a real (in-process) ALS run.
#[derive(Debug, Clone)]
pub struct AlsConfig {
    /// Distinct users.
    pub users: usize,
    /// Distinct items.
    pub items: usize,
    /// Rating records.
    pub ratings: usize,
    /// Factor rank.
    pub rank: usize,
    /// Alternating iterations.
    pub iterations: usize,
    /// Regularization strength.
    pub lambda: f64,
    /// Read parallelism.
    pub partitions: usize,
    /// Shuffle parallelism.
    pub shuffle: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for AlsConfig {
    fn default() -> Self {
        AlsConfig {
            users: 30,
            items: 20,
            ratings: 600,
            rank: 4,
            iterations: 2,
            lambda: 0.1,
            partitions: 6,
            shuffle: 4,
            seed: 5,
        }
    }
}

/// Generates rating records `Pair(Pair(user, item), rating)` from a
/// planted low-rank structure plus noise.
pub fn generate_ratings(cfg: &AlsConfig) -> Vec<Value> {
    let truth_u: Vec<Vec<f64>> = (0..cfg.users)
        .map(|u| {
            (0..cfg.rank)
                .map(|k| hash_unit(cfg.seed, (u * cfg.rank + k) as u64) * 2.0)
                .collect()
        })
        .collect();
    let truth_v: Vec<Vec<f64>> = (0..cfg.items)
        .map(|i| {
            (0..cfg.rank)
                .map(|k| hash_unit(cfg.seed ^ 0xABCD, (i * cfg.rank + k) as u64) * 2.0)
                .collect()
        })
        .collect();
    (0..cfg.ratings)
        .map(|n| {
            let u = (hash_unit(cfg.seed ^ 1, n as u64) + 0.5) * cfg.users as f64;
            let u = (u as usize) % cfg.users;
            let i = (hash_unit(cfg.seed ^ 2, n as u64) + 0.5) * cfg.items as f64;
            let i = (i as usize) % cfg.items;
            let r: f64 = truth_u[u]
                .iter()
                .zip(truth_v[i].iter())
                .map(|(a, b)| a * b)
                .sum::<f64>()
                + hash_unit(cfg.seed ^ 3, n as u64) * 0.05;
            Value::pair(
                Value::pair(Value::from(u as i64), Value::from(i as i64)),
                Value::from(r),
            )
        })
        .collect()
}

/// The deterministic initial item factors.
pub fn initial_item_factors(cfg: &AlsConfig) -> Vec<Value> {
    (0..cfg.items)
        .map(|i| {
            let f: Vec<f64> = (0..cfg.rank)
                .map(|k| hash_unit(cfg.seed ^ 0xF00D, (i * cfg.rank + k) as u64))
                .collect();
            Value::pair(Value::from(i as i64), Value::vector(f))
        })
        .collect()
}

/// Solves one side of the alternation for a single entity: given its
/// ratings `(other_id, r)` and the other side's factors, returns the
/// regularized least-squares factor vector.
fn solve_factor(
    ratings: &[(i64, f64)],
    others: &BTreeMap<i64, Vec<f64>>,
    rank: usize,
    lambda: f64,
) -> Vec<f64> {
    let mut a = vec![0.0; rank * rank];
    let mut b = vec![0.0; rank];
    let mut n = 0.0f64;
    for &(oid, r) in ratings {
        let Some(v) = others.get(&oid) else { continue };
        for x in 0..rank {
            for y in 0..rank {
                a[x * rank + y] += v[x] * v[y];
            }
            b[x] += r * v[x];
        }
        n += 1.0;
    }
    for k in 0..rank {
        a[k * rank + k] += lambda * n.max(1.0);
    }
    solve_dense(a, b).unwrap_or_else(|| vec![0.0; rank])
}

/// Turns a grouped record `Pair(id, List[Pair(other, r)])` into a sorted
/// ratings list (sorting restores order-independence of the grouping).
fn grouped_ratings(rec: &Value) -> Option<(i64, Vec<(i64, f64)>)> {
    let id = rec.key()?.as_i64()?;
    let mut list: Vec<(i64, f64)> = rec
        .val()?
        .as_list()?
        .iter()
        .filter_map(|p| Some((p.key()?.as_i64()?, p.val()?.as_f64()?)))
        .collect();
    list.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    Some((id, list))
}

/// The factor-computation UDF: main input = grouped ratings, side input =
/// the other side's gathered factors.
fn compute_factor_fn(rank: usize, lambda: f64) -> ParDoFn {
    ParDoFn::new(move |input: TaskInput<'_>, emit| {
        let empty = Vec::new();
        let side = input.side.unwrap_or(&empty);
        let others: BTreeMap<i64, Vec<f64>> = side
            .iter()
            .filter_map(|p| Some((p.key()?.as_i64()?, p.val()?.as_vector()?.to_vec())))
            .collect();
        for rec in input.main() {
            if let Some((id, ratings)) = grouped_ratings(rec) {
                let f = solve_factor(&ratings, &others, rank, lambda);
                emit(Value::pair(Value::from(id), Value::vector(f)));
            }
        }
    })
}

/// Builds the ALS dataflow of Figure 3(c) over real data, iterations
/// unrolled; the final item factors land in the `Factors Out` sink.
pub fn dag(cfg: &AlsConfig) -> LogicalDag {
    let p = Pipeline::new();
    let read = p.read(
        "Read",
        cfg.partitions,
        SourceFn::from_vec(generate_ratings(cfg)),
    );
    let by_user = read.par_do(
        "Key By User",
        ParDoFn::per_element(|rec, emit| {
            if let (Some(k), Some(r)) = (rec.key(), rec.val()) {
                if let (Some(u), Some(i)) = (k.key(), k.val()) {
                    emit(Value::pair(u.clone(), Value::pair(i.clone(), r.clone())));
                }
            }
        }),
    );
    let by_item = read.par_do(
        "Key By Item",
        ParDoFn::per_element(|rec, emit| {
            if let (Some(k), Some(r)) = (rec.key(), rec.val()) {
                if let (Some(u), Some(i)) = (k.key(), k.val()) {
                    emit(Value::pair(i.clone(), Value::pair(u.clone(), r.clone())));
                }
            }
        }),
    );
    let user_data = by_user
        .combine_per_key("Aggregate User Data", list_append())
        .with_parallelism(cfg.shuffle);
    let item_data = by_item
        .combine_per_key("Aggregate Item Data", list_append())
        .with_parallelism(cfg.shuffle);
    let mut item_factors = p
        .create("Create Item Factors", initial_item_factors(cfg))
        .cached();
    for k in 1..=cfg.iterations {
        let user_factors = user_data.par_do_with_side(
            format!("Compute User Factor {k}"),
            &item_factors,
            compute_factor_fn(cfg.rank, cfg.lambda),
        );
        let gathered_users = user_factors
            .combine_per_key(format!("Aggregate User Factor {k}"), keep_one())
            .with_parallelism(cfg.shuffle)
            .cached();
        let new_item_factors = item_data.par_do_with_side(
            format!("Compute Item Factor {k}"),
            &gathered_users,
            compute_factor_fn(cfg.rank, cfg.lambda),
        );
        item_factors = new_item_factors
            .combine_per_key(format!("Aggregate Item Factor {k}"), keep_one())
            .with_parallelism(cfg.shuffle)
            .cached();
    }
    item_factors.sink("Factors Out");
    p.build().expect("ALS DAG is valid")
}

/// Single-threaded reference: the same alternation, producing the final
/// item factors.
pub fn reference(cfg: &AlsConfig) -> BTreeMap<i64, Vec<f64>> {
    let ratings = generate_ratings(cfg);
    let mut user_ratings: BTreeMap<i64, Vec<(i64, f64)>> = BTreeMap::new();
    let mut item_ratings: BTreeMap<i64, Vec<(i64, f64)>> = BTreeMap::new();
    for rec in &ratings {
        let k = rec.key().expect("pair");
        let (u, i) = (
            k.key().unwrap().as_i64().unwrap(),
            k.val().unwrap().as_i64().unwrap(),
        );
        let r = rec.val().unwrap().as_f64().unwrap();
        user_ratings.entry(u).or_default().push((i, r));
        item_ratings.entry(i).or_default().push((u, r));
    }
    for list in user_ratings.values_mut().chain(item_ratings.values_mut()) {
        list.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    }
    let mut item_factors: BTreeMap<i64, Vec<f64>> = initial_item_factors(cfg)
        .iter()
        .map(|p| {
            (
                p.key().unwrap().as_i64().unwrap(),
                p.val().unwrap().as_vector().unwrap().to_vec(),
            )
        })
        .collect();
    for _ in 0..cfg.iterations {
        let user_factors: BTreeMap<i64, Vec<f64>> = user_ratings
            .iter()
            .map(|(&u, rs)| (u, solve_factor(rs, &item_factors, cfg.rank, cfg.lambda)))
            .collect();
        item_factors = item_ratings
            .iter()
            .map(|(&i, rs)| (i, solve_factor(rs, &user_factors, cfg.rank, cfg.lambda)))
            .collect();
    }
    item_factors
}

/// Extracts a factor sink's records into a comparable map.
pub fn result_to_map(records: &[Value]) -> BTreeMap<i64, Vec<f64>> {
    records
        .iter()
        .filter_map(|r| Some((r.key()?.as_i64()?, r.val()?.as_vector()?.to_vec())))
        .collect()
}

/// Root-mean-square reconstruction error of item/user factors against the
/// observed ratings — used to check the factorization actually fits.
pub fn rmse(cfg: &AlsConfig, item_factors: &BTreeMap<i64, Vec<f64>>) -> f64 {
    // Recompute user factors from the final item factors, then score.
    let ratings = generate_ratings(cfg);
    let mut user_ratings: BTreeMap<i64, Vec<(i64, f64)>> = BTreeMap::new();
    for rec in &ratings {
        let k = rec.key().unwrap();
        let u = k.key().unwrap().as_i64().unwrap();
        let i = k.val().unwrap().as_i64().unwrap();
        let r = rec.val().unwrap().as_f64().unwrap();
        user_ratings.entry(u).or_default().push((i, r));
    }
    for l in user_ratings.values_mut() {
        l.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    }
    let user_factors: BTreeMap<i64, Vec<f64>> = user_ratings
        .iter()
        .map(|(&u, rs)| (u, solve_factor(rs, item_factors, cfg.rank, cfg.lambda)))
        .collect();
    let mut se = 0.0;
    let mut n = 0.0f64;
    for rec in &ratings {
        let k = rec.key().unwrap();
        let u = k.key().unwrap().as_i64().unwrap();
        let i = k.val().unwrap().as_i64().unwrap();
        let r = rec.val().unwrap().as_f64().unwrap();
        let (Some(uf), Some(vf)) = (user_factors.get(&u), item_factors.get(&i)) else {
            continue;
        };
        let pred: f64 = uf.iter().zip(vf.iter()).map(|(a, b)| a * b).sum();
        se += (pred - r).powi(2);
        n += 1.0;
    }
    (se / n.max(1.0)).sqrt()
}

/// The paper-scale ALS job for the simulator: the 10 GB Yahoo! Music
/// dataset (717 M ratings, 1.8 M users, 136 K songs), rank 50, 10
/// iterations (§5.1.3). Costs are set so a no-eviction Spark run lands
/// near the paper's ~13 minutes.
pub fn paper() -> (LogicalDag, CostModel) {
    let p = Pipeline::new();
    let mut cost = CostModel::new();
    let read = p.read("Read", 80, SourceFn::from_vec(vec![]));
    cost.set(
        read.op_id(),
        OpCost {
            compute_us: 3_000_000,
            read_store_bytes: 125e6,
            output_bytes: 125e6,
        },
    );
    let pair_cost = OpCost {
        compute_us: 2_000_000,
        read_store_bytes: 0.0,
        output_bytes: 125e6,
    };
    let by_user = read.par_do("Key By User", ParDoFn::per_element(|_, _| {}));
    let by_item = read.par_do("Key By Item", ParDoFn::per_element(|_, _| {}));
    cost.set(by_user.op_id(), pair_cost)
        .set(by_item.op_id(), pair_cost);
    let group_cost = OpCost {
        compute_us: 4_000_000,
        read_store_bytes: 0.0,
        output_bytes: 125e6,
    };
    let user_data = by_user
        .combine_per_key("Aggregate User Data", list_append())
        .with_parallelism(80);
    let item_data = by_item
        .combine_per_key("Aggregate Item Data", list_append())
        .with_parallelism(80);
    cost.set(user_data.op_id(), group_cost)
        .set(item_data.op_id(), group_cost);
    let mut item_factors = p.create("Create Item Factors", vec![]);
    cost.set(
        item_factors.op_id(),
        OpCost {
            compute_us: 500_000,
            read_store_bytes: 0.0,
            output_bytes: 54e6,
        },
    );
    // Each factor-computation task emits its factors joined with block
    // routing metadata — the ~7 GB/half-iteration exchange that dominates
    // ALS traffic (and, checkpointed every half-iteration, the bulk of
    // the paper's 279 GB checkpoint volume).
    let factor_cost = OpCost {
        compute_us: 20_000_000,
        read_store_bytes: 0.0,
        output_bytes: 90e6,
    };
    // The gathered factor tables broadcast to the next computation are
    // compact: 1.8 M users (136 K items) x rank 50 x 8 B spread over 40
    // gather tasks, deduplicated.
    let gather_user_cost = OpCost {
        compute_us: 1_000_000,
        read_store_bytes: 0.0,
        output_bytes: 2e6,
    };
    let gather_item_cost = OpCost {
        compute_us: 1_000_000,
        read_store_bytes: 0.0,
        output_bytes: 1.4e6,
    };
    for k in 1..=10 {
        let user_factors = user_data.par_do_with_side(
            format!("Compute User Factor {k}"),
            &item_factors,
            ParDoFn::per_element(|_, _| {}),
        );
        let gathered = user_factors
            .combine_per_key(format!("Aggregate User Factor {k}"), keep_one())
            .with_parallelism(40);
        let new_item = item_data.par_do_with_side(
            format!("Compute Item Factor {k}"),
            &gathered,
            ParDoFn::per_element(|_, _| {}),
        );
        let gathered_item = new_item
            .combine_per_key(format!("Aggregate Item Factor {k}"), keep_one())
            .with_parallelism(40);
        cost.set(user_factors.op_id(), factor_cost)
            .set(gathered.op_id(), gather_user_cost)
            .set(new_item.op_id(), factor_cost)
            .set(gathered_item.op_id(), gather_item_cost);
        item_factors = gathered_item;
    }
    let sink = item_factors.sink("Factors Out");
    cost.set(
        sink.op_id(),
        OpCost {
            compute_us: 500_000,
            read_store_bytes: 0.0,
            output_bytes: 54e6,
        },
    );
    (p.build().expect("valid paper ALS DAG"), cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratings_are_deterministic_and_in_range() {
        let cfg = AlsConfig::default();
        let a = generate_ratings(&cfg);
        assert_eq!(a, generate_ratings(&cfg));
        assert_eq!(a.len(), cfg.ratings);
    }

    #[test]
    fn reference_reduces_rmse_over_iterations() {
        let cfg = AlsConfig {
            iterations: 1,
            ..Default::default()
        };
        let one = rmse(&cfg, &reference(&cfg));
        let cfg5 = AlsConfig {
            iterations: 5,
            ..Default::default()
        };
        let five = rmse(&cfg5, &reference(&cfg5));
        assert!(
            five <= one + 1e-9,
            "more iterations should not hurt: {five} vs {one}"
        );
        assert!(
            five < 0.25,
            "planted structure should be recoverable: {five}"
        );
    }

    #[test]
    fn solve_factor_ignores_unknown_items() {
        let others: BTreeMap<i64, Vec<f64>> = [(1i64, vec![1.0, 0.0])].into_iter().collect();
        let f = solve_factor(&[(1, 2.0), (99, 5.0)], &others, 2, 0.1);
        assert_eq!(f.len(), 2);
        assert!(f[0] > 0.0, "rating 2.0 against basis vector");
    }

    #[test]
    fn dag_shape_and_validity() {
        let cfg = AlsConfig {
            iterations: 2,
            ..Default::default()
        };
        let d = dag(&cfg);
        // read + 2 keyings + 2 groupings + init + 2*(4 per iteration) + sink.
        assert_eq!(d.len(), 5 + 1 + 8 + 1);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn paper_dag_compiles() {
        let (dag, _) = paper();
        let plan = pado_core::compiler::compile(&dag).unwrap();
        assert!(plan.total_tasks() > 2000);
        assert!(plan.stage_dag.stages.len() > 20);
    }
}
