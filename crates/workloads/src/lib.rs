//! The paper's three evaluation workloads (§5.1.3): Alternating Least
//! Squares, Multinomial Logistic Regression, and Map-Reduce.
//!
//! Each workload ships in two forms:
//!
//! - a **real** dataflow (`dag(&config)`) over synthetic datasets with a
//!   single-threaded `reference` implementation, executed in-process by
//!   the `pado-core` runtime in tests and examples;
//! - a **paper-scale** form (`paper()`) whose [`pado_engines::CostModel`]
//!   carries the published sizes (10 GB Yahoo! Music for ALS, 31 GB
//!   Petuum-style MLR with 550 gradient tasks and 323 MB vectors, 280 GB
//!   Wikipedia pageviews for MR), driven by the simulated cluster in the
//!   benchmark harness.
#![warn(missing_docs)]

pub mod als;
pub mod mlr;
pub mod mr;
pub mod util;

pub use als::AlsConfig;
pub use mlr::MlrConfig;
pub use mr::MrConfig;
