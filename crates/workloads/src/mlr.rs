//! The Multinomial Logistic Regression workload (§5.1.3): iterative
//! softmax-regression training with per-partition gradient computation,
//! tree aggregation of gradient matrices, and a model update per
//! iteration — the DAG of Figure 3(b).

use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, TaskInput, Value};
use pado_engines::{CostModel, OpCost};

use crate::util::{hash_unit, softmax};

/// Scale of a real (in-process) MLR run.
#[derive(Debug, Clone)]
pub struct MlrConfig {
    /// Training samples.
    pub samples: usize,
    /// Feature dimension.
    pub features: usize,
    /// Output classes.
    pub classes: usize,
    /// Read parallelism.
    pub partitions: usize,
    /// Training iterations.
    pub iterations: usize,
    /// Learning rate.
    pub lr: f64,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for MlrConfig {
    fn default() -> Self {
        MlrConfig {
            samples: 240,
            features: 6,
            classes: 3,
            partitions: 6,
            iterations: 3,
            lr: 0.5,
            seed: 11,
        }
    }
}

/// Generates training samples as `Pair(label, features)` records with a
/// deterministic planted structure (class c concentrates mass on feature
/// block c).
pub fn generate_dataset(cfg: &MlrConfig) -> Vec<Value> {
    (0..cfg.samples)
        .map(|i| {
            let label = i % cfg.classes;
            let x: Vec<f64> = (0..cfg.features)
                .map(|d| {
                    let noise = hash_unit(cfg.seed, (i * cfg.features + d) as u64) * 0.4;
                    let signal = if d % cfg.classes == label { 1.0 } else { 0.0 };
                    signal + noise
                })
                .collect();
            Value::pair(Value::from(label as i64), Value::vector(x))
        })
        .collect()
}

/// The initial model: a zero `classes × features` matrix (row-major).
fn initial_model(cfg: &MlrConfig) -> Value {
    Value::vector(vec![0.0; cfg.classes * cfg.features])
}

/// Sums the softmax cross-entropy gradient over one partition.
///
/// Returns the flattened gradient matrix extended with one trailing slot
/// holding the partition's sample count (so the update step can average).
fn partition_gradient(samples: &[Value], model: &[f64], classes: usize, features: usize) -> Value {
    let mut grad = vec![0.0; classes * features + 1];
    for s in samples {
        let Some((label, x)) = s.key().zip(s.val()) else {
            continue;
        };
        let (Some(y), Some(x)) = (label.as_i64(), x.as_vector()) else {
            continue;
        };
        let scores: Vec<f64> = (0..classes)
            .map(|c| {
                (0..features)
                    .map(|d| model.get(c * features + d).copied().unwrap_or(0.0) * x[d])
                    .sum()
            })
            .collect();
        let p = softmax(&scores);
        for c in 0..classes {
            let coeff = p[c] - if c as i64 == y { 1.0 } else { 0.0 };
            for d in 0..features {
                grad[c * features + d] += coeff * x[d];
            }
        }
        grad[classes * features] += 1.0;
    }
    Value::vector(grad)
}

/// Applies one averaged gradient step.
fn update_model(model: &[f64], grad_with_count: &[f64], lr: f64) -> Value {
    let n = grad_with_count.last().copied().unwrap_or(1.0).max(1.0);
    let out: Vec<f64> = model
        .iter()
        .enumerate()
        .map(|(i, w)| w - lr * grad_with_count.get(i).copied().unwrap_or(0.0) / n)
        .collect();
    Value::vector(out)
}

/// Builds the MLR dataflow of Figure 3(b) over real data, with the
/// iterations unrolled. The final model lands in the `Model Out` sink.
pub fn dag(cfg: &MlrConfig) -> LogicalDag {
    let (classes, features, lr) = (cfg.classes, cfg.features, cfg.lr);
    let p = Pipeline::new();
    let train = p
        .read(
            "Read Training Data",
            cfg.partitions,
            SourceFn::from_vec(generate_dataset(cfg)),
        )
        .cached();
    let mut model = p
        .create("Create 1st Model", vec![initial_model(cfg)])
        .cached();
    for k in 0..cfg.iterations {
        let grad = train.par_do_with_side(
            format!("Compute Gradient {k}"),
            &model,
            ParDoFn::new(move |input: TaskInput<'_>, emit| {
                let binding = Vec::new();
                let side = input.side.unwrap_or(&binding);
                let m = side.first().and_then(|v| v.as_vector()).unwrap_or(&[]);
                emit(partition_gradient(input.main(), m, classes, features));
            }),
        );
        let agg = grad.aggregate(format!("Aggregate Gradients {k}"), CombineFn::sum_vector());
        model = agg
            .par_do_zip(
                format!("Compute Model {}", k + 2),
                &model,
                ParDoFn::new(move |input: TaskInput<'_>, emit| {
                    let grad = input.mains[0]
                        .first()
                        .and_then(|v| v.as_vector())
                        .unwrap_or(&[]);
                    let prev = input.mains[1]
                        .first()
                        .and_then(|v| v.as_vector())
                        .unwrap_or(&[]);
                    emit(update_model(prev, grad, lr));
                }),
            )
            .cached();
    }
    model.sink("Model Out");
    p.build().expect("MLR DAG is valid")
}

/// Single-threaded reference with the same per-partition gradient
/// structure (so floating-point results match the engine's exactly).
pub fn reference(cfg: &MlrConfig) -> Vec<f64> {
    let data = generate_dataset(cfg);
    // Partition exactly like SourceFn::from_vec: round-robin.
    let parts: Vec<Vec<Value>> = (0..cfg.partitions)
        .map(|part| {
            data.iter()
                .enumerate()
                .filter(|(i, _)| i % cfg.partitions == part)
                .map(|(_, v)| v.clone())
                .collect()
        })
        .collect();
    let mut model: Vec<f64> = vec![0.0; cfg.classes * cfg.features];
    for _ in 0..cfg.iterations {
        let grads: Vec<Value> = parts
            .iter()
            .map(|p| partition_gradient(p, &model, cfg.classes, cfg.features))
            .collect();
        let total = CombineFn::sum_vector().merge_all(grads);
        model = update_model(&model, total.as_vector().unwrap_or(&[]), cfg.lr)
            .as_vector()
            .unwrap_or(&[])
            .to_vec();
    }
    model
}

/// Training-set accuracy of a model (used to check learning actually
/// happens).
pub fn accuracy(cfg: &MlrConfig, model: &[f64]) -> f64 {
    let data = generate_dataset(cfg);
    let mut hit = 0usize;
    for s in &data {
        let y = s.key().and_then(|k| k.as_i64()).unwrap_or(-1);
        let x = s.val().and_then(|v| v.as_vector()).unwrap_or(&[]).to_vec();
        let scores: Vec<f64> = (0..cfg.classes)
            .map(|c| {
                (0..cfg.features)
                    .map(|d| model.get(c * cfg.features + d).copied().unwrap_or(0.0) * x[d])
                    .sum()
            })
            .collect();
        let pred = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i as i64)
            .unwrap_or(-1);
        if pred == y {
            hit += 1;
        }
    }
    hit as f64 / data.len().max(1) as f64
}

/// The paper-scale MLR job for the simulator: 5 iterations over a 31 GB
/// sparse dataset, 550 gradient tasks per iteration, 323 MB compressed
/// gradient/model matrices, tree aggregation through 22 tasks, and
/// transient-side partial aggregation shrinking pushes to ~303/550 of
/// the gradient volume (§5.2.2).
pub fn paper() -> (LogicalDag, CostModel) {
    let p = Pipeline::new();
    let mut cost = CostModel::new();
    let train = p.read("Read Training Data", 550, SourceFn::from_vec(vec![]));
    cost.set(
        train.op_id(),
        OpCost {
            compute_us: 2_000_000,
            read_store_bytes: 56e6,
            output_bytes: 56e6,
        },
    );
    let mut model = p.create("Create 1st Model", vec![]);
    cost.set(
        model.op_id(),
        OpCost {
            compute_us: 100_000,
            read_store_bytes: 0.0,
            output_bytes: 323e6,
        },
    );
    for k in 0..5 {
        let grad = train.par_do_with_side(
            format!("Compute Gradient {k}"),
            &model,
            ParDoFn::per_element(|_, _| {}),
        );
        // ~40 s to compute a dense gradient over a 56 MB partition.
        cost.set(
            grad.op_id(),
            OpCost {
                compute_us: 40_000_000,
                read_store_bytes: 0.0,
                output_bytes: 323e6,
            },
        );
        let tree = grad.aggregate_with(format!("Tree Aggregate {k}"), CombineFn::sum_vector(), 22);
        cost.set(
            tree.op_id(),
            OpCost {
                compute_us: 3_000_000,
                read_store_bytes: 0.0,
                output_bytes: 323e6,
            },
        );
        // ~303 partially-aggregated vectors pushed instead of 550.
        cost.set_preagg(tree.op_id(), 303.0 / 550.0);
        let agg = tree.aggregate(format!("Aggregate Gradients {k}"), CombineFn::sum_vector());
        cost.set(
            agg.op_id(),
            OpCost {
                compute_us: 2_000_000,
                read_store_bytes: 0.0,
                output_bytes: 323e6,
            },
        );
        model = agg.par_do_zip(
            format!("Compute Model {}", k + 2),
            &model,
            ParDoFn::per_element(|_, _| {}),
        );
        cost.set(
            model.op_id(),
            OpCost {
                compute_us: 2_000_000,
                read_store_bytes: 0.0,
                output_bytes: 323e6,
            },
        );
    }
    let sink = model.sink("Model Out");
    cost.set(
        sink.op_id(),
        OpCost {
            compute_us: 100_000,
            read_store_bytes: 0.0,
            output_bytes: 323e6,
        },
    );
    (p.build().expect("valid paper MLR DAG"), cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic_and_labeled() {
        let cfg = MlrConfig::default();
        let a = generate_dataset(&cfg);
        assert_eq!(a, generate_dataset(&cfg));
        assert_eq!(a.len(), cfg.samples);
        for s in &a {
            let y = s.key().unwrap().as_i64().unwrap();
            assert!((0..cfg.classes as i64).contains(&y));
        }
    }

    #[test]
    fn reference_learns_the_planted_structure() {
        let cfg = MlrConfig {
            iterations: 20,
            ..Default::default()
        };
        let model = reference(&cfg);
        let acc = accuracy(&cfg, &model);
        assert!(acc > 0.9, "accuracy {acc} too low");
    }

    #[test]
    fn gradient_count_slot_tracks_samples() {
        let cfg = MlrConfig::default();
        let data = generate_dataset(&cfg);
        let g = partition_gradient(
            &data,
            &vec![0.0; cfg.classes * cfg.features],
            cfg.classes,
            cfg.features,
        );
        let v = g.as_vector().unwrap();
        assert_eq!(v.len(), cfg.classes * cfg.features + 1);
        assert_eq!(v[cfg.classes * cfg.features], cfg.samples as f64);
    }

    #[test]
    fn dag_shape_matches_iterations() {
        let cfg = MlrConfig {
            iterations: 2,
            ..Default::default()
        };
        let dag = dag(&cfg);
        // read + model + 2*(grad, agg, update) + sink.
        assert_eq!(dag.len(), 2 + 3 * 2 + 1);
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn paper_dag_compiles_with_reserved_aggregation() {
        use pado_core::compiler::{compile, Placement};
        let (dag, _) = paper();
        let plan = compile(&dag).unwrap();
        // Every tree/final aggregate and model update is reserved.
        let reserved: usize = plan
            .fops
            .iter()
            .filter(|f| f.placement == Placement::Reserved)
            .count();
        assert!(reserved >= 3 * 5, "5 iterations x (tree, agg, update)");
    }
}
