//! Numeric helpers shared by the workloads: dense linear solves for ALS,
//! softmax for MLR, and small combiner utilities.

use pado_dag::{CombineFn, Value};

/// Solves `A x = b` for a small dense symmetric positive-definite system
/// by Gaussian elimination with partial pivoting. `a` is row-major
/// `n`×`n`.
///
/// Returns `None` if the system is singular (a pivot collapses to ~0).
pub fn solve_dense(mut a: Vec<f64>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert_eq!(a.len(), n * n);
    for col in 0..n {
        // Partial pivoting.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        for row in col + 1..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col * n + k] * x[k];
        }
        x[col] = acc / a[col * n + col];
    }
    Some(x)
}

/// Numerically stable softmax.
pub fn softmax(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// A combiner that appends values into a list (used to group ratings per
/// user/item). Commutativity is recovered downstream by sorting the list
/// before it is consumed.
pub fn list_append() -> CombineFn {
    CombineFn::new(
        || Value::list(Vec::new()),
        |a, b| {
            let mut out: Vec<Value> = a.as_list().unwrap_or(&[]).to_vec();
            match &b {
                Value::List(l) => out.extend(l.iter().cloned()),
                other => out.push(other.clone()),
            }
            Value::list(out)
        },
    )
}

/// A combiner that keeps the single non-unit value of a key — used as a
/// gathering shuffle for datasets with one record per key (e.g. the ALS
/// factor-gather operators in Figure 3(c)).
pub fn keep_one() -> CombineFn {
    CombineFn::new(
        || Value::Unit,
        |a, b| if matches!(a, Value::Unit) { b } else { a },
    )
}

/// Deterministic pseudo-random f64 in `[-0.5, 0.5)` from a seed and index
/// (splitmix64-style) — used to initialize ML models identically in the
/// engine and the single-threaded references.
pub fn hash_unit(seed: u64, index: u64) -> f64 {
    let mut z = seed
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add(index.wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, 4.0];
        assert_eq!(solve_dense(a, b).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = solve_dense(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let b = vec![2.0, 7.0];
        let x = solve_dense(a, b).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singular() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve_dense(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability under large scores.
        let q = softmax(&[1000.0, 1001.0]);
        assert!(q.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn list_append_concats() {
        let c = list_append();
        let merged = c.merge_all(vec![Value::from(1i64), Value::from(2i64)]);
        assert_eq!(merged.as_list().unwrap().len(), 2);
        // Merging two lists flattens.
        let l1 = Value::list(vec![Value::from(1i64)]);
        let l2 = Value::list(vec![Value::from(2i64), Value::from(3i64)]);
        assert_eq!(c.merge(l1, l2).as_list().unwrap().len(), 3);
    }

    #[test]
    fn keep_one_prefers_non_unit() {
        let c = keep_one();
        assert_eq!(c.merge(Value::Unit, Value::from(5i64)), Value::from(5i64));
        assert_eq!(c.merge(Value::from(5i64), Value::Unit), Value::from(5i64));
    }

    #[test]
    fn hash_unit_is_deterministic_and_bounded() {
        assert_eq!(hash_unit(1, 2), hash_unit(1, 2));
        assert_ne!(hash_unit(1, 2), hash_unit(1, 3));
        for i in 0..1000 {
            let v = hash_unit(42, i);
            assert!((-0.5..0.5).contains(&v));
        }
    }
}
