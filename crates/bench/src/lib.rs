//! Benchmark harness utilities: eviction-rate construction from the trace
//! analysis, multi-seed engine runs, and table formatting shared by the
//! per-figure binaries.
#![warn(missing_docs)]

use pado_dag::LogicalDag;
use pado_engines::{simulate, CostModel, Mode, RunMetrics, SimConfig, SimError};
use pado_simcluster::{LifetimeDist, MIN};
use pado_trace::{analyze, generate, SynthConfig};

/// The paper's four eviction rates (§5.2): none, plus the lifetime CDFs
/// obtained at 5 %, 1 %, and 0.1 % safety margins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionRate {
    /// No evictions.
    None,
    /// 5 % safety margin.
    Low,
    /// 1 % safety margin.
    Medium,
    /// 0.1 % safety margin.
    High,
}

impl EvictionRate {
    /// All four rates in presentation order.
    pub const ALL: [EvictionRate; 4] = [
        EvictionRate::None,
        EvictionRate::Low,
        EvictionRate::Medium,
        EvictionRate::High,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EvictionRate::None => "None",
            EvictionRate::Low => "Low",
            EvictionRate::Medium => "Medium",
            EvictionRate::High => "High",
        }
    }

    /// The safety margin producing this rate, if any.
    pub fn margin(self) -> Option<f64> {
        match self {
            EvictionRate::None => None,
            EvictionRate::Low => Some(0.05),
            EvictionRate::Medium => Some(0.01),
            EvictionRate::High => Some(0.001),
        }
    }
}

/// Builds the four lifetime distributions by running the §2.1 trace
/// analysis once (synthetic trace, B-spline refinement, safety margins).
pub fn lifetime_dists() -> [(EvictionRate, LifetimeDist); 4] {
    let series = generate(&SynthConfig::default());
    EvictionRate::ALL.map(|rate| {
        let dist = match rate.margin() {
            None => LifetimeDist::None,
            Some(margin) => {
                let a = analyze(&series, margin);
                // Lifetimes are in minutes; the cluster wants microseconds.
                let us: Vec<u64> = a.lifetimes_min.iter().map(|&m| m.max(1) * MIN).collect();
                LifetimeDist::Empirical(pado_simcluster::EmpiricalDist::new(us))
            }
        };
        (rate, dist)
    })
}

/// Number of repetitions per configuration (the paper runs five; override
/// with `PADO_BENCH_REPEATS`).
pub fn repeats() -> usize {
    std::env::var("PADO_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Aggregate of repeated runs.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Mean JCT in minutes (capped runs contribute the cap).
    pub jct_mean_min: f64,
    /// Standard deviation of the JCT in minutes.
    pub jct_std_min: f64,
    /// Mean relaunched-to-original task ratio.
    pub relaunch_mean: f64,
    /// Whether any repetition hit the simulation time cap.
    pub capped: bool,
    /// Mean bytes checkpointed (Spark-checkpoint).
    pub bytes_checkpointed: f64,
    /// Mean bytes pushed to reserved executors (Pado).
    pub bytes_pushed: f64,
}

impl Aggregate {
    /// Formats the JCT, flagging capped runs with `>`.
    pub fn jct_label(&self) -> String {
        if self.capped {
            format!(">{:.0}", self.jct_mean_min)
        } else {
            format!("{:.1}", self.jct_mean_min)
        }
    }
}

/// Runs one engine `repeats()` times with distinct seeds and aggregates.
/// Runs that exceed `cap_min` minutes of virtual time are recorded at the
/// cap (the paper reports Spark's ALS runs as ">90 minutes").
pub fn run_repeated(
    mode: Mode,
    dag: &LogicalDag,
    model: &CostModel,
    base: &SimConfig,
    cap_min: u64,
) -> Aggregate {
    let n = repeats();
    let mut jcts = Vec::new();
    let mut relaunch = Vec::new();
    let mut capped = false;
    let mut ckpt = 0.0;
    let mut pushed = 0.0;
    for rep in 0..n {
        let config = SimConfig {
            seed: base.seed + 1000 * rep as u64,
            time_limit_us: cap_min * MIN,
            ..base.clone()
        };
        match simulate(mode, dag, model, config) {
            Ok(m) => {
                jcts.push(m.jct_minutes());
                relaunch.push(m.relaunch_ratio());
                ckpt += m.bytes_checkpointed;
                pushed += m.bytes_pushed;
            }
            Err(SimError::TimedOut) => {
                jcts.push(cap_min as f64);
                relaunch.push(f64::NAN);
                capped = true;
            }
            Err(e) => panic!("simulation failed: {e}"),
        }
    }
    let mean = jcts.iter().sum::<f64>() / jcts.len() as f64;
    let var = jcts.iter().map(|j| (j - mean).powi(2)).sum::<f64>() / jcts.len() as f64;
    let rl: Vec<f64> = relaunch.iter().copied().filter(|r| r.is_finite()).collect();
    let relaunch_mean = if rl.is_empty() {
        f64::NAN
    } else {
        rl.iter().sum::<f64>() / rl.len() as f64
    };
    Aggregate {
        jct_mean_min: mean,
        jct_std_min: var.sqrt(),
        relaunch_mean,
        capped,
        bytes_checkpointed: ckpt / n as f64,
        bytes_pushed: pushed / n as f64,
    }
}

/// Convenience: summarize one metrics value without repetition (unit
/// tests).
pub fn single(m: &RunMetrics) -> Aggregate {
    Aggregate {
        jct_mean_min: m.jct_minutes(),
        jct_std_min: 0.0,
        relaunch_mean: m.relaunch_ratio(),
        capped: false,
        bytes_checkpointed: m.bytes_checkpointed,
        bytes_pushed: m.bytes_pushed,
    }
}

/// Prints an aligned table: header + rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Emits machine-readable CSV after the human table.
pub fn print_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n# CSV {name}");
    println!("{}", header.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_rates_map_to_margins() {
        assert_eq!(EvictionRate::High.margin(), Some(0.001));
        assert_eq!(EvictionRate::None.margin(), None);
        assert_eq!(EvictionRate::ALL.len(), 4);
    }

    #[test]
    fn lifetime_dists_order_by_aggressiveness() {
        let dists = lifetime_dists();
        let median = |d: &LifetimeDist| match d {
            LifetimeDist::Empirical(e) => e.quantile(0.5),
            _ => u64::MAX,
        };
        let low = median(&dists[1].1);
        let high = median(&dists[3].1);
        assert!(
            high < low,
            "0.1 % margin lifetimes ({high}) should be shorter than 5 % ({low})"
        );
    }

    #[test]
    fn aggregate_formats_caps() {
        let a = Aggregate {
            jct_mean_min: 240.0,
            jct_std_min: 0.0,
            relaunch_mean: 0.0,
            capped: true,
            bytes_checkpointed: 0.0,
            bytes_pushed: 0.0,
        };
        assert_eq!(a.jct_label(), ">240");
    }
}

/// Renders series of `(x, fraction)` points as a compact ASCII chart
/// (used to draw Figure 1's CDFs in the terminal).
pub fn ascii_cdf_chart(series: &[(&str, Vec<(u64, f64)>)], width: usize, height: usize) -> String {
    let width = width.max(10);
    let height = height.max(4);
    let max_x = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(x, _)| x))
        .max()
        .unwrap_or(1)
        .max(1);
    let marks = ['H', 'M', 'L', '*', '+', 'o'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in pts {
            let col = ((x as f64 / max_x as f64) * (width - 1) as f64).round() as usize;
            let row = ((1.0 - y.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
            grid[row][col] = mark;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            "100%|"
        } else if r == height - 1 {
            "  0%|"
        } else {
            "    |"
        };
        out.push_str(label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "    +{}\n     0 … {} minutes; ",
        "-".repeat(width),
        max_x
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} = {}", marks[i % marks.len()], name))
        .collect();
    out.push_str(&legend.join(", "));
    out.push('\n');
    out
}

/// Runs a small deterministic demo job and returns its frozen event
/// journal: a serial chain (parallelism 1 everywhere) on one transient
/// plus one reserved executor, with a fixed-seed chaos plan (UDF errors
/// only) and one scripted eviction. Only one task is ever in flight, so
/// the canonical journal — and thus the time-elided timeline — is
/// byte-stable run over run. This is the job behind `explain timeline`
/// and the golden timeline test.
pub fn demo_journal() -> pado_core::runtime::EventJournal {
    use pado_core::runtime::{ChaosPlan, FaultPlan, LocalCluster, RuntimeConfig};
    use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};

    let p = Pipeline::new();
    p.read(
        "Read",
        1,
        SourceFn::from_vec((0..12i64).map(Value::from).collect()),
    )
    .par_do(
        "Key",
        ParDoFn::per_element(|v, e| {
            e(Value::pair(Value::from(v.as_i64().unwrap() % 2), v.clone()))
        }),
    )
    .combine_per_key("Sum", CombineFn::sum_i64())
    .sink("Out");
    let dag = p.build().unwrap();
    let config = RuntimeConfig {
        slots_per_executor: 1,
        speculation: false,
        // No blacklisting: a blacklist provisions a replacement container
        // that would run tasks concurrently with the old one, and the
        // interleaving of their commits is thread-timing, not seed.
        executor_fault_threshold: 100,
        heartbeat_interval_ms: 1_000,
        dead_executor_timeout_ms: 60_000,
        ..Default::default()
    };
    let faults = FaultPlan {
        evictions: vec![(1, 0)],
        chaos: Some(ChaosPlan {
            seed: 7,
            error_prob: 0.5,
            panic_prob: 0.0,
            oom_prob: 0.0,
            delay_prob: 0.0,
            delay_ms: 0,
            max_faults_per_task: 1,
        }),
        ..Default::default()
    };
    LocalCluster::new(1, 1)
        .with_config(config)
        .run_with_faults(&dag, faults)
        .expect("demo job")
        .journal
}

/// The demo job's human-readable timeline with the timestamp column
/// elided (the byte-stable, golden-tested form).
pub fn demo_timeline() -> String {
    demo_journal().render_timeline(false)
}

#[cfg(test)]
mod chart_tests {
    use super::*;

    #[test]
    fn chart_places_extremes() {
        let pts: Vec<(u64, f64)> = (0..=10).map(|x| (x, x as f64 / 10.0)).collect();
        let chart = ascii_cdf_chart(&[("diag", pts)], 20, 5);
        assert!(chart.contains("100%|"));
        assert!(chart.contains("  0%|"));
        assert!(chart.contains("H = diag"));
        // Monotone CDF: the top row's mark is to the right of the bottom's.
        let rows: Vec<&str> = chart.lines().collect();
        let top = rows[0].find('H').unwrap();
        let bottom = rows[4].find('H').unwrap();
        assert!(top > bottom);
    }

    #[test]
    fn chart_handles_empty_series() {
        let chart = ascii_cdf_chart(&[("empty", vec![])], 10, 4);
        assert!(chart.contains("0 … 1 minutes"));
    }
}
