//! Ablation study of Pado's design choices (§3.2.7 optimizations and the
//! execution-plan generator's fusion): each row disables one mechanism
//! and reruns the three workloads under the high eviction rate.

use pado_bench::{lifetime_dists, print_csv, print_table, run_repeated, EvictionRate};
use pado_engines::{Mode, SimConfig};
use pado_workloads::{als, mlr, mr};

type Variant = (&'static str, Box<dyn Fn(SimConfig) -> SimConfig>);

fn main() {
    let dists = lifetime_dists();
    let high = dists
        .iter()
        .find(|(r, _)| *r == EvictionRate::High)
        .map(|(_, d)| d.clone())
        .expect("high rate present");

    let workloads: Vec<(&str, _, u64)> = vec![
        ("ALS", als::paper(), 120),
        ("MLR", mlr::paper(), 360),
        ("MR", mr::paper(), 90),
    ];
    let variants: Vec<Variant> = vec![
        ("full", Box::new(|c| c)),
        (
            "no partial aggregation",
            Box::new(|c| SimConfig {
                partial_aggregation: false,
                ..c
            }),
        ),
        (
            "no broadcast caching",
            Box::new(|c| SimConfig {
                broadcast_caching: false,
                ..c
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (name, (dag, model), cap) in &workloads {
        for (label, tweak) in &variants {
            let config = tweak(SimConfig {
                n_transient: 40,
                n_reserved: 5,
                lifetimes: high.clone(),
                ..SimConfig::default()
            });
            let agg = run_repeated(Mode::Pado, dag, model, &config, *cap);
            rows.push(vec![
                name.to_string(),
                label.to_string(),
                agg.jct_label(),
                format!("{:.0}GB", agg.bytes_pushed / 1e9),
            ]);
        }
    }
    print_table(
        "Ablations: Pado at the high eviction rate with individual optimizations disabled",
        &["workload", "variant", "JCT(m)", "pushed"],
        &rows,
    );
    print_csv(
        "ablations",
        &["workload", "variant", "jct_min", "bytes_pushed"],
        &rows,
    );
}
