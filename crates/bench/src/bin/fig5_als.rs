//! Regenerates Figure 5: ALS job completion times and relaunched-task
//! ratios under the four eviction rates, for Spark, Spark-checkpoint, and
//! Pado on 40 transient + 5 reserved containers.

use pado_bench::{lifetime_dists, print_csv, print_table, run_repeated};
use pado_engines::{Mode, SimConfig};
use pado_workloads::als;

fn main() {
    let (dag, model) = als::paper();
    let dists = lifetime_dists();
    let mut rows = Vec::new();
    for (rate, dist) in dists {
        for mode in [Mode::Spark, Mode::SparkCkpt, Mode::Pado] {
            let config = SimConfig {
                n_transient: 40,
                n_reserved: 5,
                lifetimes: dist.clone(),
                ..SimConfig::default()
            };
            let agg = run_repeated(mode, &dag, &model, &config, 90);
            rows.push(vec![
                rate.label().to_string(),
                mode.name().to_string(),
                agg.jct_label(),
                format!("{:.1}", agg.jct_std_min),
                if agg.relaunch_mean.is_nan() {
                    "-".into()
                } else {
                    format!("{:.1}%", agg.relaunch_mean * 100.0)
                },
                format!("{:.0}GB", agg.bytes_checkpointed / 1e9),
                format!("{:.0}GB", agg.bytes_pushed / 1e9),
            ]);
        }
    }
    print_table(
        "Figure 5: ALS under different eviction rates (paper at High: Pado 2.1x faster than Spark-checkpoint, 4.1x than Spark; Spark >90m at Medium/High, 31% tasks relaunched; 279GB checkpointed)",
        &["eviction", "engine", "JCT(m)", "std", "relaunched", "ckpt", "pushed"],
        &rows,
    );
    print_csv(
        "figure5_als",
        &[
            "eviction",
            "engine",
            "jct_min",
            "jct_std",
            "relaunch_ratio",
            "bytes_ckpt",
            "bytes_pushed",
        ],
        &rows,
    );
}
