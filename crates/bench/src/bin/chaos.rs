//! Standalone seeded chaos driver for the runtime's failure domain: each
//! seed derives a randomized fault plan (evictions, reserved failures,
//! master restarts, probabilistic UDF errors/panics/OOMs/delays, and
//! mid-job store-budget shrinks), runs a real job on the in-process
//! cluster, and checks the result byte-for-byte against a fault-free
//! baseline plus the commit/retry invariants.
//!
//! Usage: `cargo run -p pado-bench --bin chaos [n_seeds] [--network]
//! [--reconfig] [--crash] [--journal <path>] [--wal-dump <path>]
//! [--backend <sim|threaded>] [--stall-diag <path>]`
//! `--backend` selects the execution backend for the seeded runs; the
//! fault-free baselines always run on the deterministic sim backend, so
//! `--backend threaded` doubles as a cross-backend differential check
//! under chaos.
//! `--network` adds the transport dimension: seeded message
//! drop/duplicate/reorder/delay in both directions plus timed executor
//! partitions kept below the dead-executor threshold, so outputs must
//! still match the fault-free baseline byte-for-byte.
//! `--reconfig` adds the live-reconfiguration dimension: seeded
//! epoch-fenced placement transactions (stage migrations, transient
//! drains — including infeasible requests that must abort cleanly)
//! plus spill-tier disk faults, racing the rest of the chaos.
//! `--crash` adds the durability dimension: each seed arms a write-ahead
//! log and a randomized crash schedule (fixed handler boundary,
//! every-k-th WAL append, or probabilistic), sometimes with seeded
//! bit-flip/truncation corruption of the WAL file itself; the recovered
//! run must still match the fault-free baseline byte-for-byte.
//! `--journal <path>` writes a Chrome-trace JSON of the last seed's
//! journal to `<path>` (open it in chrome://tracing or Perfetto).
//! `--wal-dump <path>` (with `--crash`) writes a human-readable frame
//! dump of the last seed's surviving WAL image to `<path>`.
//! `--stall-diag <path>` writes the structured stall diagnostics to
//! `<path>` if any seeded run wedges and the hang watchdog aborts it
//! with `RuntimeError::Stalled` (threaded backend; CI uploads this file
//! as a failure artifact).
//! Every seed's journal additionally replays through the generic
//! invariant checker. Exits non-zero if any seed violates an invariant.

use std::collections::HashMap;

use pado_core::compiler::Placement;
use pado_core::error::RuntimeError;
use pado_core::runtime::{
    temp_wal_path, BackendKind, ChaosPlan, CrashPlan, DirectionFaults, FaultPlan, JobEvent,
    JobResult, LocalCluster, NetworkFault, PartitionSpec, ReconfigChange, ReconfigTrigger,
    RuntimeConfig, ScheduledReconfig, SpillFaultPlan, WalCorruption,
};
use pado_dag::codec::encode_batch;
use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, TaskInput, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAX_TASK_ATTEMPTS: usize = 3;
const MAX_FAULTS_PER_TASK: usize = 2;

fn ints(n: i64) -> Vec<Value> {
    (0..n).map(Value::from).collect()
}

fn wordcount_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        4,
        SourceFn::from_vec(vec![
            Value::from("pado harnesses transient resources"),
            Value::from("transient containers come and go"),
            Value::from("reserved containers hold the line"),
            Value::from("pado retries pado recovers"),
        ]),
    )
    .par_do(
        "Split",
        ParDoFn::per_element(|line, emit| {
            for w in line.as_str().unwrap_or("").split_whitespace() {
                emit(Value::pair(Value::from(w), Value::from(1i64)));
            }
        }),
    )
    .combine_per_key("Count", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn side_input_dag() -> LogicalDag {
    let p = Pipeline::new();
    let bcast = p.read("Bcast", 3, SourceFn::from_vec(ints(9)));
    let data = p.read("Data", 2, SourceFn::from_vec(ints(6)));
    data.par_do_with_side(
        "AddSide",
        &bcast,
        ParDoFn::new(|input: TaskInput<'_>, emit| {
            let side_sum: i64 = input
                .side
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .sum();
            for v in input.main() {
                emit(Value::from(v.as_i64().unwrap() + side_sum));
            }
        }),
    )
    .aggregate("Total", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn chaos_config() -> RuntimeConfig {
    RuntimeConfig {
        slots_per_executor: 2,
        event_timeout_ms: 10_000,
        snapshot_every: 2,
        max_task_attempts: MAX_TASK_ATTEMPTS,
        executor_fault_threshold: 2,
        speculation_floor_ms: 50,
        tick_ms: 5,
        // Tight transport tunings so lost messages retry quickly, while
        // the dead threshold stays far above any injected partition.
        heartbeat_interval_ms: 20,
        dead_executor_timeout_ms: 600,
        retransmit_base_ms: 20,
        retransmit_max_ms: 160,
        ..Default::default()
    }
}

fn encode_outputs(result: &JobResult) -> Vec<(String, Vec<u8>)> {
    result
        .outputs
        .iter()
        .map(|(name, records)| (name.clone(), encode_batch(records).expect("encodes")))
        .collect()
}

/// A seeded network-fault dimension: moderate drop/dup/reorder/delay in
/// both directions, plus (one seed in four) a timed partition of one
/// transient executor that heals well below the dead threshold.
fn random_network(
    rng: &mut StdRng,
    seed: u64,
    n_transient: usize,
    n_reserved: usize,
) -> NetworkFault {
    let dir = |rng: &mut StdRng| DirectionFaults {
        drop_prob: rng.gen_range(0.0..0.15),
        dup_prob: rng.gen_range(0.0..0.10),
        reorder_prob: rng.gen_range(0.0..0.10),
        delay_prob: rng.gen_range(0.0..0.15),
        delay_ms: rng.gen_range(1..10u64),
    };
    let to_executor = dir(rng);
    let to_master = dir(rng);
    let partitions = if rng.gen_bool(0.25) {
        // Executors spawn reserved-first, so transient ids start at
        // n_reserved. Healing at most 370 ms after job start stays far
        // below the 600 ms dead threshold.
        vec![PartitionSpec {
            exec: n_reserved + rng.gen_range(0..n_transient),
            start_ms: rng.gen_range(20..120u64),
            duration_ms: rng.gen_range(50..250u64),
        }]
    } else {
        Vec::new()
    };
    NetworkFault {
        seed: seed ^ 0x4E45_54FA,
        to_executor,
        to_master,
        partitions,
    }
}

/// Seeded reconfiguration requests: stage migrations (both directions)
/// and transient drains, fired after a random number of task commits.
/// Out-of-range stages are generated on purpose — an infeasible request
/// must abort cleanly, not wedge the job.
fn random_reconfigs(rng: &mut StdRng, n_transient: usize) -> Vec<ScheduledReconfig> {
    let mut out = Vec::new();
    for _ in 0..rng.gen_range(1..3usize) {
        let change = if rng.gen_bool(0.7) {
            ReconfigChange::MigrateStage {
                stage: rng.gen_range(0..4usize),
                to: if rng.gen_bool(0.7) {
                    Placement::Reserved
                } else {
                    Placement::Transient
                },
            }
        } else {
            ReconfigChange::DrainTransient {
                nth: rng.gen_range(0..n_transient.max(1)),
            }
        };
        out.push(ScheduledReconfig {
            after_done_events: rng.gen_range(1..8usize),
            plan: change.into(),
            trigger: ReconfigTrigger::Chaos,
        });
    }
    out
}

/// A seeded crash schedule: one of the three trigger styles, a small
/// crash budget, and (one seed in three) seeded corruption of the WAL
/// file between crash and recovery.
fn random_crash_plan(rng: &mut StdRng, seed: u64) -> CrashPlan {
    let mut plan = CrashPlan {
        seed: seed ^ 0x632a_5b01,
        max_crashes: rng.gen_range(1..4usize),
        ..Default::default()
    };
    match rng.gen_range(0..3u32) {
        0 => plan.after_handled_frames = Some(rng.gen_range(1..20u64)),
        1 => plan.every_kth_append = Some(rng.gen_range(5..40u64)),
        _ => plan.handler_prob = 0.08,
    }
    if rng.gen_bool(0.3) {
        plan.corruption = Some(WalCorruption {
            seed: seed ^ 0xc0de,
            bit_flip_prob: 0.0005,
            truncate_prob: 0.3,
        });
    }
    plan
}

fn random_fault_plan(
    rng: &mut StdRng,
    seed: u64,
    network: bool,
    reconfig: bool,
    n_transient: usize,
    n_reserved: usize,
) -> FaultPlan {
    let evictions = (0..rng.gen_range(0..3usize))
        .map(|_| (rng.gen_range(1..10usize), rng.gen_range(0..3usize)))
        .collect();
    let reserved_failures = (0..rng.gen_range(0..2usize))
        .map(|_| (rng.gen_range(2..10usize), 0))
        .collect();
    let master_failure_after = if rng.gen_bool(0.2) {
        Some(rng.gen_range(3..8usize))
    } else {
        None
    };
    // Memory-pressure dimension: one seed in three squeezes a reserved
    // executor's store budget mid-job. The store clamps the applied
    // budget up to pinned occupancy and spills the rest, so the job must
    // still finish byte-identical.
    let budget_shrinks = if rng.gen_bool(0.35) {
        vec![(
            rng.gen_range(2..6usize),
            rng.gen_range(0..n_reserved),
            rng.gen_range(64..512usize),
        )]
    } else {
        Vec::new()
    };
    FaultPlan {
        evictions,
        reserved_failures,
        master_failure_after,
        chaos: Some(ChaosPlan {
            seed,
            error_prob: 0.15,
            panic_prob: 0.10,
            oom_prob: 0.10,
            delay_prob: 0.20,
            delay_ms: 8,
            max_faults_per_task: MAX_FAULTS_PER_TASK,
        }),
        budget_shrinks,
        first_attempt_delays: Vec::new(),
        first_attempt_done_delays: Vec::new(),
        network: network.then(|| random_network(rng, seed, n_transient, n_reserved)),
        reconfigs: if reconfig {
            random_reconfigs(rng, n_transient)
        } else {
            Vec::new()
        },
        spill_faults: (reconfig && rng.gen_bool(0.3)).then(|| SpillFaultPlan {
            seed: seed ^ 0x5349_4C4C,
            write_prob: rng.gen_range(0.0..0.3),
            read_prob: rng.gen_range(0.0..0.3),
        }),
        // Armed by the caller when `--crash` is on (it also needs the
        // WAL path in the config).
        crashes: None,
    }
}

/// Checks the per-seed invariants; returns violation descriptions.
fn violations(result: &JobResult, faults: &FaultPlan) -> Vec<String> {
    let mut out = Vec::new();

    // Replay through the generic invariant checker first.
    for v in pado_core::runtime::check(&result.journal, true) {
        out.push(v.to_string());
    }

    let events = result.journal.to_events();
    let events = &events;

    let mut failures: HashMap<(usize, usize), usize> = HashMap::new();
    for e in events {
        if let JobEvent::TaskFailed { fop, index, .. } = e {
            *failures.entry((*fop, *index)).or_default() += 1;
        }
    }
    for (task, n) in &failures {
        if *n >= MAX_TASK_ATTEMPTS {
            out.push(format!(
                "task {task:?} burned {n} attempts (budget {MAX_TASK_ATTEMPTS})"
            ));
        }
    }
    // The journal survives master restarts, so the failure metric always
    // equals the event count.
    let total_failures: usize = failures.values().sum();
    if result.metrics.task_failures != total_failures {
        out.push(format!(
            "metrics say {} failures, event log says {total_failures}",
            result.metrics.task_failures
        ));
    }

    let mut committed: HashMap<(usize, usize), bool> = HashMap::new();
    for e in events {
        match e {
            JobEvent::TaskCommitted { fop, index, .. } => {
                let slot = committed.entry((*fop, *index)).or_insert(false);
                if *slot {
                    out.push(format!("double commit of task {fop}.{index}"));
                }
                *slot = true;
            }
            JobEvent::TaskReverted { fop, index } => {
                committed.insert((*fop, *index), false);
            }
            _ => {}
        }
    }

    // Any master restart — legacy snapshot or WAL crash recovery —
    // restores `first_attempted` from an older durable state, so
    // relaunches can be re-counted as originals and the ledger slips.
    if faults.master_failure_after.is_none()
        && faults.crashes.is_none()
        && result.metrics.tasks_launched
            != result.metrics.original_tasks
                + result.metrics.relaunched_tasks
                + result.metrics.speculative_launches
    {
        out.push(format!(
            "launch ledger out of balance: {:?}",
            result.metrics
        ));
    }

    // Retransmissions must stay bounded: with a healthy ack path every
    // message eventually lands, so no single frame should need anywhere
    // near this many tries even under heavy loss.
    if result.metrics.max_message_retransmissions > 64 {
        out.push(format!(
            "a message needed {} retransmissions",
            result.metrics.max_message_retransmissions
        ));
    }
    // `heartbeats_missed` is deliberately absent: a late heartbeat needs
    // no injected fault, only an oversubscribed machine starving the
    // executor thread past the interval — flagging it made the harness
    // flaky under concurrent builds.
    if faults.network.is_none()
        && (result.metrics.messages_dropped
            + result.metrics.messages_duplicated
            + result.metrics.messages_retransmitted
            + result.metrics.messages_deduplicated
            + result.metrics.executors_declared_dead)
            > 0
    {
        out.push(format!(
            "transport metrics nonzero without network faults: {:?}",
            result.metrics
        ));
    }
    out
}

fn main() {
    let mut n_seeds: u64 = 100;
    let mut network = false;
    let mut reconfig = false;
    let mut crash = false;
    let mut journal_path: Option<String> = None;
    let mut wal_dump_path: Option<String> = None;
    let mut stall_diag_path: Option<String> = None;
    let mut backend = BackendKind::Sim;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--network" {
            network = true;
        } else if arg == "--reconfig" {
            reconfig = true;
        } else if arg == "--crash" {
            crash = true;
        } else if arg == "--journal" {
            journal_path = Some(args.next().expect("--journal needs a path"));
        } else if arg == "--wal-dump" {
            wal_dump_path = Some(args.next().expect("--wal-dump needs a path"));
        } else if arg == "--stall-diag" {
            stall_diag_path = Some(args.next().expect("--stall-diag needs a path"));
        } else if arg == "--backend" {
            let spec = args.next().expect("--backend needs sim|threaded");
            backend = BackendKind::parse(&spec)
                .unwrap_or_else(|| panic!("unknown backend {spec:?} (sim|threaded)"));
        } else {
            n_seeds = arg.parse().expect("n_seeds must be an integer");
        }
    }

    let shapes: Vec<(&str, LogicalDag)> = vec![
        ("wordcount", wordcount_dag()),
        ("side_input", side_input_dag()),
    ];
    let baselines: Vec<Vec<(String, Vec<u8>)>> = shapes
        .iter()
        .map(|(name, dag)| {
            let r = LocalCluster::new(2, 2)
                .with_config(chaos_config())
                .run(dag)
                .unwrap_or_else(|e| panic!("fault-free baseline {name} failed: {e}"));
            encode_outputs(&r)
        })
        .collect();

    println!(
        "{:>5}  {:<10} {:>5} {:>4} {:>7} {:>5} {:>5} {:>5} {:>5} {:>4} {:>5} {:>5} {:>6} {:>5}  verdict",
        "seed",
        "shape",
        "evict",
        "rsvd",
        "restart",
        "fail",
        "spec",
        "black",
        "launch",
        "oom",
        "spill",
        "defer",
        "epoch",
        "crash"
    );
    let (mut ok, mut bad) = (0u64, 0u64);
    let mut total_failures = 0usize;
    let mut total_spec = 0usize;
    let mut total_oom = 0usize;
    let mut total_spills = 0usize;
    let mut total_commits = 0usize;
    let mut total_aborts = 0usize;
    let mut total_recoveries = 0usize;
    let mut total_frames_truncated = 0usize;
    let mut total_snapshot_restores = 0usize;
    let mut last_journal = None;
    let mut last_wal_image: Option<(u64, Vec<u8>)> = None;
    let mut stall_reports: Vec<String> = Vec::new();
    for seed in 0..n_seeds {
        let shape = (seed % shapes.len() as u64) as usize;
        let (name, dag) = &shapes[shape];
        let mut rng = StdRng::seed_from_u64(seed);
        let n_transient = rng.gen_range(1..4usize);
        let n_reserved = rng.gen_range(1..3usize);
        let mut faults =
            random_fault_plan(&mut rng, seed, network, reconfig, n_transient, n_reserved);
        let mut config = chaos_config();
        let wal = crash.then(|| temp_wal_path(&format!("chaos-bench-{seed}")));
        if let Some(path) = &wal {
            faults.crashes = Some(random_crash_plan(&mut rng, seed));
            config.wal_path = Some(path.to_string_lossy().into_owned());
            config.wal_sync_every = rng.gen_range(1..4usize);
            config.wal_snapshot_every = rng.gen_range(8..64usize);
        }
        let run = LocalCluster::new(n_transient, n_reserved)
            .with_backend(backend)
            .with_config(config)
            .run_with_faults(dag, faults.clone());
        if let Some(path) = &wal {
            if wal_dump_path.is_some() {
                if let Ok(bytes) = std::fs::read(path) {
                    last_wal_image = Some((seed, bytes));
                }
            }
            std::fs::remove_file(path).ok();
        }
        let result = match run {
            Ok(r) => r,
            Err(e) => {
                if let RuntimeError::Stalled { diagnostics } = &e {
                    stall_reports.push(format!(
                        "seed {seed} shape {name} stalled:\n{diagnostics}\n"
                    ));
                }
                println!("{seed:>5}  {name:<10} JOB FAILED: {e}");
                bad += 1;
                continue;
            }
        };
        let mut probs = violations(&result, &faults);
        if encode_outputs(&result) != baselines[shape] {
            probs.push("outputs diverged from fault-free baseline".into());
        }
        let verdict = if probs.is_empty() { "ok" } else { "VIOLATION" };
        println!(
            "{seed:>5}  {name:<10} {:>5} {:>4} {:>7} {:>5} {:>5} {:>5} {:>5} {:>4} {:>5} {:>5} {:>6} {:>5}  {verdict}",
            faults.evictions.len(),
            faults.reserved_failures.len(),
            faults
                .master_failure_after
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            result.metrics.task_failures,
            result.metrics.speculative_launches,
            result.metrics.blacklisted_executors,
            result.metrics.tasks_launched,
            result.metrics.oom_injected,
            result.metrics.blocks_spilled,
            result.metrics.pushes_deferred,
            result.metrics.final_epoch,
            result.metrics.wal_recoveries,
        );
        for p in &probs {
            println!("       !! {p}");
        }
        if network {
            println!(
                "       net: dropped={} dup={} retx={} dedup={} max_retx={} dead={}",
                result.metrics.messages_dropped,
                result.metrics.messages_duplicated,
                result.metrics.messages_retransmitted,
                result.metrics.messages_deduplicated,
                result.metrics.max_message_retransmissions,
                result.metrics.executors_declared_dead,
            );
        }
        if reconfig {
            println!(
                "       reconfig: committed={} aborted={} fenced={} final_epoch={}",
                result.metrics.reconfigs_committed,
                result.metrics.reconfigs_aborted,
                result.metrics.frames_fenced,
                result.metrics.final_epoch,
            );
        }
        if crash {
            println!(
                "       crash: recoveries={} frames_replayed={} truncated={} snapshot_restores={}",
                result.metrics.wal_recoveries,
                result.metrics.wal_frames_replayed,
                result.metrics.wal_frames_truncated,
                result.metrics.wal_snapshot_restores,
            );
        }
        total_failures += result.metrics.task_failures;
        total_spec += result.metrics.speculative_launches;
        total_oom += result.metrics.oom_injected;
        total_spills += result.metrics.blocks_spilled;
        total_commits += result.metrics.reconfigs_committed;
        total_aborts += result.metrics.reconfigs_aborted;
        total_recoveries += result.metrics.wal_recoveries;
        total_frames_truncated += result.metrics.wal_frames_truncated;
        total_snapshot_restores += result.metrics.wal_snapshot_restores;
        last_journal = Some(result.journal);
        if probs.is_empty() {
            ok += 1;
        } else {
            bad += 1;
        }
    }
    if let (Some(path), Some(journal)) = (&journal_path, &last_journal) {
        if let Some(dir) = std::path::Path::new(path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir).expect("create trace directory");
        }
        std::fs::write(path, journal.chrome_trace()).expect("write Chrome trace");
        println!("wrote Chrome trace of the last seed to {path}");
    }
    if let (Some(path), Some((dump_seed, bytes))) = (&wal_dump_path, &last_wal_image) {
        if let Some(dir) = std::path::Path::new(path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir).expect("create dump directory");
        }
        let dump = pado_core::runtime::wal::dump_image(bytes, &format!("chaos seed {dump_seed}"));
        std::fs::write(path, dump).expect("write WAL dump");
        println!("wrote WAL frame dump of seed {dump_seed} to {path}");
    }
    if let Some(path) = &stall_diag_path {
        if !stall_reports.is_empty() {
            if let Some(dir) = std::path::Path::new(path)
                .parent()
                .filter(|d| !d.as_os_str().is_empty())
            {
                std::fs::create_dir_all(dir).expect("create stall-diag directory");
            }
            std::fs::write(path, stall_reports.join("\n")).expect("write stall diagnostics");
            println!(
                "wrote stall diagnostics for {} wedged seed(s) to {path}",
                stall_reports.len()
            );
        }
    }
    println!(
        "\n{ok}/{n_seeds} seeds clean, {bad} violating; \
         {total_failures} injected task failures survived, {total_spec} speculative launches, \
         {total_oom} injected allocation failures, {total_spills} blocks spilled, \
         {total_commits} reconfigs committed, {total_aborts} aborted; \
         crash: {total_recoveries} recoveries, {total_frames_truncated} frames truncated, \
         {total_snapshot_restores} snapshot restores"
    );
    if bad > 0 {
        std::process::exit(1);
    }
}
