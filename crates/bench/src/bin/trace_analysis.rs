//! Regenerates Figure 1 (transient-container lifetime CDFs), Table 1
//! (lifetime percentiles), and Table 2 (collected idle memory) from the
//! synthetic datacenter trace.

use pado_bench::{ascii_cdf_chart, print_csv, print_table};
use pado_trace::{analyze, generate, lifetime_row, Cdf, SynthConfig, PAPER_MARGINS};

fn main() {
    let series = generate(&SynthConfig::default());
    let analyses: Vec<_> = PAPER_MARGINS.iter().map(|&m| analyze(&series, m)).collect();

    // Figure 1: CDF series at 0..60 minutes.
    let xs: Vec<u64> = (0..=60).collect();
    let mut rows = Vec::new();
    for &x in &xs {
        let mut row = vec![x.to_string()];
        for a in &analyses {
            let cdf = Cdf::new(a.lifetimes_min.clone());
            row.push(format!("{:.3}", cdf.at(x)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 1: CDFs of transient container lifetimes over safety margins",
        &["minutes", "high (0.1%)", "medium (1%)", "low (5%)"],
        &rows[..16],
    );
    println!("   … (full series in the CSV below)\n");
    let charts: Vec<(&str, Vec<(u64, f64)>)> = analyses
        .iter()
        .zip(["high (0.1%)", "medium (1%)", "low (5%)"])
        .map(|(a, name)| {
            let cdf = Cdf::new(a.lifetimes_min.clone());
            (name, cdf.series(&xs))
        })
        .collect();
    println!("{}", ascii_cdf_chart(&charts, 61, 16));
    print_csv(
        "figure1",
        &[
            "minutes",
            "cdf_margin_0.1pct",
            "cdf_margin_1pct",
            "cdf_margin_5pct",
        ],
        &rows,
    );

    // Table 1: lifetime percentiles.
    let t1: Vec<Vec<String>> = analyses
        .iter()
        .map(|a| {
            let r = lifetime_row(a);
            vec![
                format!("{}%", r.margin * 100.0),
                format!("{} min", r.p10),
                format!("{} min", r.p50),
                format!("{} min", r.p90),
            ]
        })
        .collect();
    print_table(
        "Table 1: lifetime percentiles per safety margin (paper: 0.1% -> 1/2/19, 1% -> 1/10/64, 5% -> 1/20/276)",
        &["margin", "p10", "p50", "p90"],
        &t1,
    );
    print_csv("table1", &["margin", "p10_min", "p50_min", "p90_min"], &t1);

    // Table 2: collected idle memory.
    let baseline = analyses[0].baseline_idle_fraction;
    let mut t2 = vec![vec![
        "baseline".to_string(),
        format!("{:.1}%", baseline * 100.0),
    ]];
    for a in &analyses {
        t2.push(vec![
            format!("{}%", a.margin * 100.0),
            format!("{:.1}%", a.collected_fraction * 100.0),
        ]);
    }
    print_table(
        "Table 2: collected idle memory vs total LC memory (paper: baseline 26.0, 0.1% -> 25.9, 1% -> 25.3, 5% -> 22.7)",
        &["margin", "collected"],
        &t2,
    );
    print_csv("table2", &["margin", "collected_fraction"], &t2);
}
