//! Data-plane benchmark: throughput and peak memory of the block-based
//! intermediate-data path against the pre-refactor cloning plane.
//!
//! Three layers:
//! - **kernels** time just the route+push path — the shared-block plane
//!   (route once, hand `Arc` references to every consumer) against an
//!   in-bench reimplementation of the old cloning plane (route per
//!   consumer, deep-clone the broadcast per consumer task, as the old
//!   master/executor pair did) — and assert the block plane moves
//!   broadcast records at least 2× faster while cloning zero of them;
//! - **grouping kernels** time the vectorized keyed-combine kernel over
//!   columnar blocks against the pre-refactor row oracle (clone every
//!   record into a `BTreeMap`, fold per key) on a shuffle-heavy input,
//!   assert byte-identical outputs and a ≥3× records/sec speedup, and
//!   report how far the column codecs compress the keyed working set
//!   below its row encoding;
//! - **end-to-end** runs shuffle-heavy and broadcast-heavy pipelines on
//!   the in-process cluster, reporting records/sec, compressed output
//!   bytes, total record clones, and peak resident set (`VmHWM`).
//!
//! Usage: `cargo run -p pado-bench --release --bin dataplane
//! [-- --smoke] [--trace <path>] [--mem-budget <bytes|auto>]
//! [--backend <sim|threaded>]`
//! `--smoke` shrinks datasets for CI. `--backend` selects the execution
//! backend for the end-to-end sections (default sim); a final section
//! always races the two backends head-to-head on the shuffle-heavy plan
//! and asserts byte-identical outputs (plus a >=1.5x threaded wall-clock
//! speedup in full mode on >=4-core hosts). `--trace <path>` writes a
//! Chrome-trace JSON of the broadcast-heavy end-to-end run's event
//! journal to `<path>` (open it in chrome://tracing or Perfetto).
//! `--mem-budget` adds a third section: the shuffle-heavy pipeline runs
//! once unlimited and once under a per-executor byte budget (`auto`
//! probes the working set and squeezes to a quarter of it), reporting
//! peak store occupancy, spill volume (compressed and raw), and
//! deferred pushes; outputs must stay byte-identical, the peak must
//! respect the budget, the tight run must spill at least one block,
//! and the spill files must be strictly smaller than the row encoding
//! of what they hold. With `--trace`, the budgeted
//! run's journal (spill/load instants included) is written to
//! `<path stem>-mem<ext>` next to the broadcast trace. Exits non-zero
//! if the block plane loses its guarantees (speedup, clone counts, or
//! memory bounds).

use std::collections::BTreeMap;
use std::time::Instant;

use pado_core::exec::{apply_op, route, route_hash};
use pado_core::runtime::{BackendKind, LocalCluster, RuntimeConfig};
use pado_dag::codec::encode_batch;
use pado_dag::value::clone_count;
use pado_dag::{
    block_from_vec, Block, CombineFn, DepType, MainSlot, ParDoFn, Pipeline, SourceFn, TaskInput,
    Value,
};

/// Peak resident set size of this process in bytes (`VmHWM`), if the
/// platform exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn fmt_rate(records: u64, secs: f64) -> String {
    format!("{:>8.1}M rec/s", records as f64 / secs / 1e6)
}

/// The pre-refactor routing: clone every record into its bucket.
fn route_cloning(records: &[Value], dep: DepType, src_index: usize, p: usize) -> Vec<Vec<Value>> {
    let p = p.max(1);
    let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); p];
    match dep {
        DepType::OneToOne | DepType::ManyToOne => {
            buckets[src_index % p].extend(records.iter().cloned());
        }
        DepType::OneToMany => {
            for b in &mut buckets {
                b.extend(records.iter().cloned());
            }
        }
        DepType::ManyToMany => {
            for r in records {
                let i = (route_hash(r) % p as u64) as usize;
                buckets[i].push(r.clone());
            }
        }
    }
    buckets
}

fn checksum(records: &[Value]) -> i64 {
    records
        .iter()
        .map(|v| v.as_i64().unwrap_or(1))
        .fold(0i64, |a, b| a.wrapping_add(b))
}

/// Broadcast kernel: one producer output pushed to `consumers` tasks.
/// Returns (blocks secs, cloning secs, records moved).
fn broadcast_kernel(n: usize, consumers: usize) -> (f64, f64, u64) {
    let data: Vec<Value> = (0..n as i64).map(Value::from).collect();
    let block: Block = block_from_vec(data.clone());
    let moved = (n * consumers) as u64;

    // Block plane: route once, every consumer reads the shared block.
    let before = clone_count();
    let t0 = Instant::now();
    let mut sum = 0i64;
    let buckets = route(&block, DepType::OneToMany, 0, consumers);
    for b in &buckets {
        sum = sum.wrapping_add(checksum(b));
    }
    let block_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        clone_count() - before,
        0,
        "block broadcast must clone zero records"
    );

    // Cloning plane: the old master routed per consumer launch and the
    // old executor deep-cloned the broadcast before applying the chain.
    let before = clone_count();
    let t0 = Instant::now();
    let mut old_sum = 0i64;
    for i in 0..consumers {
        let routed = route_cloning(&data, DepType::OneToMany, 0, consumers);
        let task_input: Vec<Value> = routed[i].clone();
        old_sum = old_sum.wrapping_add(checksum(&task_input));
    }
    let cloning_secs = t0.elapsed().as_secs_f64();
    assert!(
        clone_count() - before >= moved,
        "cloning baseline under-counts"
    );
    assert_eq!(sum, old_sum, "planes disagree on broadcast contents");
    (block_secs, cloning_secs, moved)
}

/// Shuffle kernel: one producer output hashed to `consumers` tasks, each
/// consumer pulling its bucket. Returns (blocks secs, cloning secs, records).
fn shuffle_kernel(n: usize, consumers: usize) -> (f64, f64, u64) {
    let data: Vec<Value> = (0..n as i64)
        .map(|i| Value::pair(Value::from(i % 1024), Value::from(i)))
        .collect();
    let block: Block = block_from_vec(data.clone());

    // Block plane: one routing pass (memoized by the master), consumers
    // share the bucket blocks.
    let t0 = Instant::now();
    let buckets = route(&block, DepType::ManyToMany, 0, consumers);
    let mut sum = 0i64;
    for b in &buckets {
        sum = sum.wrapping_add(b.len() as i64);
    }
    let block_secs = t0.elapsed().as_secs_f64();

    // Cloning plane: the old master re-routed the whole output once per
    // consumer task.
    let t0 = Instant::now();
    let mut old_sum = 0i64;
    for i in 0..consumers {
        let routed = route_cloning(&data, DepType::ManyToMany, 0, consumers);
        old_sum = old_sum.wrapping_add(routed[i].len() as i64);
    }
    let cloning_secs = t0.elapsed().as_secs_f64();
    assert_eq!(sum, old_sum, "planes disagree on shuffle sizes");
    (block_secs, cloning_secs, n as u64)
}

/// Shuffle-heavy keyed working set: `n` pairs over 4096 i64 keys.
fn keyed_rows(n: usize) -> Vec<Value> {
    (0..n as i64)
        .map(|i| Value::pair(Value::from(i % 4096), Value::from(1i64)))
        .collect()
}

/// Grouping kernel: the vectorized keyed combine over columnar blocks
/// against the pre-refactor row oracle — clone every record, group
/// through a `BTreeMap<Value, _>`, fold with the combiner — on a
/// shuffle-heavy input. Returns (kernel secs, oracle secs, records).
fn combine_kernel(n: usize, parts: usize) -> (f64, f64, u64) {
    let p = Pipeline::new();
    let src = p.read("Src", 1, SourceFn::from_vec(Vec::new()));
    src.combine_per_key("Count", CombineFn::sum_i64())
        .sink("Out");
    let dag = p.build().unwrap();
    let op = dag
        .op_ids()
        .find(|&id| dag.op(id).name == "Count")
        .expect("combine op");

    let rows = keyed_rows(n);
    let per = (n / parts.max(1)).max(1);
    let blocks: Vec<Block> = rows
        .chunks(per)
        .map(|c| block_from_vec(c.to_vec()))
        .collect();
    for b in &blocks {
        assert!(b.columns().is_some(), "combine input must be columnar");
    }
    let mains = [MainSlot::from_blocks(blocks)];

    let t0 = Instant::now();
    let fast = apply_op(&dag, op, TaskInput::new(&mains, None)).expect("vectorized combine");
    let kernel_secs = t0.elapsed().as_secs_f64();

    // Verbatim pre-refactor inner loop: clone the record, remove the
    // accumulator, merge, insert it back.
    let f = CombineFn::sum_i64();
    let t0 = Instant::now();
    let mut accs: BTreeMap<Value, Value> = BTreeMap::new();
    for rec in &rows {
        if let Some((k, v)) = rec.clone().into_pair() {
            let acc = accs.remove(&k).unwrap_or_else(|| f.identity());
            accs.insert(k, f.merge(acc, v));
        }
    }
    let slow: Vec<Value> = accs.into_iter().map(|(k, v)| Value::pair(k, v)).collect();
    let oracle_secs = t0.elapsed().as_secs_f64();

    assert_eq!(
        encode_batch(&fast).expect("encodes"),
        encode_batch(&slow).expect("encodes"),
        "vectorized combine diverged from the row oracle"
    );
    (kernel_secs, oracle_secs, n as u64)
}

/// End-to-end cluster run under a per-executor store budget
/// (`usize::MAX` = unlimited); returns (secs, clone delta, result).
fn run_pipeline(
    dag: &pado_dag::LogicalDag,
    snapshot_every: usize,
    mem_budget: usize,
    backend: BackendKind,
) -> (f64, u64, pado_core::runtime::JobResult) {
    let mut config = RuntimeConfig {
        slots_per_executor: 2,
        snapshot_every,
        threaded_workers: 4,
        ..Default::default()
    };
    if mem_budget != usize::MAX {
        config.executor_memory_bytes = mem_budget;
        // The input cache shares the budget; keep it a small slice so
        // pinned inputs and pushed blocks get the headroom.
        config.cache_capacity_bytes = (mem_budget / 4).max(1);
    }
    let before = clone_count();
    let t0 = Instant::now();
    let result = LocalCluster::new(2, 2)
        .with_backend(backend)
        .with_config(config)
        .run(dag)
        .expect("pipeline run");
    let secs = t0.elapsed().as_secs_f64();
    pado_core::runtime::assert_clean(&result.journal, true);
    (secs, clone_count() - before, result)
}

fn out_records(result: &pado_core::runtime::JobResult) -> u64 {
    result.outputs.values().map(|v| v.len() as u64).sum()
}

/// (encoded, raw) byte totals of the job's sink outputs when packed as
/// blocks — the compressed-bytes column of the end-to-end report.
fn out_bytes(result: &pado_core::runtime::JobResult) -> (usize, usize) {
    result.outputs.values().fold((0, 0), |(enc, raw), records| {
        let block = block_from_vec(records.clone());
        (enc + block.encoded_len(), raw + block.raw_len())
    })
}

/// Codec-encoded outputs; byte equality is the strongest form of "the
/// budget did not change the answer".
fn encode_outputs(result: &pado_core::runtime::JobResult) -> Vec<(String, Vec<u8>)> {
    result
        .outputs
        .iter()
        .map(|(name, records)| {
            (
                name.clone(),
                pado_dag::codec::encode_batch(records).expect("encodes"),
            )
        })
        .collect()
}

fn write_trace(path: &str, journal: &pado_core::runtime::EventJournal) {
    if let Some(dir) = std::path::Path::new(path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).expect("create trace directory");
    }
    std::fs::write(path, journal.chrome_trace()).expect("write Chrome trace");
}

/// `traces/dataplane.trace.json` -> `traces/dataplane-mem.trace.json`.
fn mem_trace_path(path: &str) -> String {
    let p = std::path::Path::new(path);
    let name = p
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let renamed = match name.split_once('.') {
        Some((stem, ext)) => format!("{stem}-mem.{ext}"),
        None => format!("{name}-mem"),
    };
    p.with_file_name(renamed).to_string_lossy().into_owned()
}

fn shuffle_heavy_dag(n: i64) -> pado_dag::LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        8,
        SourceFn::new(move |i, par| {
            let per = n / par as i64;
            (0..per)
                .map(|j| Value::pair(Value::from((i as i64 * per + j) % 4096), Value::from(1i64)))
                .collect()
        }),
    )
    .combine_per_key("Count", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn broadcast_heavy_dag(n: i64, consumers: usize) -> pado_dag::LogicalDag {
    let p = Pipeline::new();
    let bcast = p.read(
        "Bcast",
        1,
        SourceFn::new(move |_, _| (0..n).map(Value::from).collect()),
    );
    let data = p.read(
        "Data",
        consumers,
        SourceFn::new(|i, _| vec![Value::from(i as i64)]),
    );
    data.par_do_with_side(
        "Scan",
        &bcast,
        ParDoFn::new(|input: TaskInput<'_>, emit| {
            let sum: i64 = input
                .side
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .fold(0, i64::wrapping_add);
            for v in input.main() {
                emit(Value::from(v.as_i64().unwrap().wrapping_add(sum)));
            }
        }),
    )
    .sink("Out");
    p.build().unwrap()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut trace_path: Option<String> = None;
    let mut mem_budget_arg: Option<String> = None;
    let mut backend = BackendKind::Sim;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            trace_path = Some(args.next().expect("--trace needs a path"));
        } else if arg == "--mem-budget" {
            mem_budget_arg = Some(args.next().expect("--mem-budget needs bytes or 'auto'"));
        } else if arg == "--backend" {
            let spec = args.next().expect("--backend needs sim|threaded");
            backend = BackendKind::parse(&spec)
                .unwrap_or_else(|| panic!("unknown backend {spec:?} (sim|threaded)"));
        }
    }
    let (n_kernel, consumers) = if smoke { (20_000, 8) } else { (200_000, 16) };
    let n_e2e: i64 = if smoke { 20_000 } else { 200_000 };

    println!(
        "data-plane bench ({})",
        if smoke { "smoke" } else { "full" }
    );
    println!("\n== kernels: route+push, {n_kernel} records -> {consumers} consumers ==");

    let (b, c, moved) = broadcast_kernel(n_kernel, consumers);
    let speedup = c / b;
    println!(
        "broadcast  blocks {}   cloning {}   speedup {speedup:>6.1}x",
        fmt_rate(moved, b),
        fmt_rate(moved, c),
    );
    assert!(
        speedup >= 2.0,
        "block plane must beat the cloning plane >=2x on broadcast (got {speedup:.2}x)"
    );

    let (b, c, n_rec) = shuffle_kernel(n_kernel, consumers);
    println!(
        "shuffle    blocks {}   cloning {}   speedup {:>6.1}x",
        fmt_rate(n_rec, b),
        fmt_rate(n_rec, c),
        c / b,
    );

    println!("\n== grouping kernels: vectorized combine vs row oracle, {n_kernel} records ==");
    let (k, c, n_rec) = combine_kernel(n_kernel, 4);
    let speedup = c / k;
    println!(
        "combine    kernel {}   oracle  {}   speedup {speedup:>6.1}x",
        fmt_rate(n_rec, k),
        fmt_rate(n_rec, c),
    );
    assert!(
        speedup >= 3.0,
        "vectorized keyed combine must beat the row oracle >=3x on a \
         shuffle-heavy input (got {speedup:.2}x)"
    );
    let working_set = block_from_vec(keyed_rows(n_kernel));
    println!(
        "blocks     {} records  {} B raw -> {} B encoded ({:.2}x smaller)",
        working_set.len(),
        working_set.raw_len(),
        working_set.encoded_len(),
        working_set.raw_len() as f64 / working_set.encoded_len() as f64,
    );
    assert!(
        working_set.encoded_len() < working_set.raw_len(),
        "the column codecs must compress the keyed working set below its row encoding"
    );

    println!("\n== end-to-end: in-process cluster, snapshots every 2 completions ==");
    let (secs, clones, result) = run_pipeline(&shuffle_heavy_dag(n_e2e), 2, usize::MAX, backend);
    let (enc, raw) = out_bytes(&result);
    println!(
        "shuffle-heavy    {n_e2e} rec  {}  {} out ({enc} B compressed / {raw} B raw)  \
         {clones} record clones",
        fmt_rate(n_e2e as u64, secs),
        out_records(&result),
    );
    let (secs, clones, result) = run_pipeline(
        &broadcast_heavy_dag(n_e2e, consumers),
        2,
        usize::MAX,
        backend,
    );
    if let Some(path) = &trace_path {
        write_trace(path, &result.journal);
        println!("wrote Chrome trace of the broadcast-heavy run to {path}");
    }
    let pushed = n_e2e as u64 * consumers as u64;
    let (enc, raw) = out_bytes(&result);
    println!(
        "broadcast-heavy  {pushed} rec pushed  {}  {} out ({enc} B compressed / {raw} B raw)  \
         {clones} record clones",
        fmt_rate(pushed, secs),
        out_records(&result),
    );
    assert!(
        clones < n_e2e as u64,
        "broadcast-heavy job cloned {clones} records (dataset {n_e2e}): sharing is broken"
    );

    if let Some(spec) = &mem_budget_arg {
        println!("\n== memory budget: byte-accounted stores, spill-to-disk ==");
        let dag = shuffle_heavy_dag(n_e2e);

        // Unlimited baseline: no accounting, no spills, no deferrals.
        let (_, _, unlimited) = run_pipeline(&dag, 2, usize::MAX, backend);
        let m = &unlimited.metrics;
        assert_eq!(
            m.blocks_spilled + m.pushes_deferred + m.oom_injected,
            0,
            "unlimited run must not spill, defer, or OOM: {m:?}"
        );
        assert_eq!(m.peak_store_bytes, 0, "unlimited stores must not account");

        let budget = if spec == "auto" {
            // Probe under a roomy limited budget to learn the working
            // set, then squeeze to a quarter of its peak.
            let (_, _, probe) = run_pipeline(&dag, 2, 64 << 20, backend);
            let peak = probe.metrics.peak_store_bytes;
            println!("probe: working-set peak {peak} B (64 MiB roomy budget)");
            (peak / 4).max(1024)
        } else {
            spec.parse()
                .expect("--mem-budget takes a byte count or 'auto'")
        };

        let (secs, _, tight) = run_pipeline(&dag, 2, budget, backend);
        if let Some(path) = &trace_path {
            let mem_path = mem_trace_path(path);
            write_trace(&mem_path, &tight.journal);
            println!("wrote Chrome trace of the budgeted run to {mem_path}");
        }
        let m = &tight.metrics;
        println!(
            "budget {budget} B  {}  peak store {} B  spilled {} blocks / {} B \
             ({} B raw)  loads {}  deferred pushes {}",
            fmt_rate(n_e2e as u64, secs),
            m.peak_store_bytes,
            m.blocks_spilled,
            m.spill_bytes,
            m.spill_raw_bytes,
            m.blocks_loaded,
            m.pushes_deferred,
        );
        assert_eq!(
            encode_outputs(&tight),
            encode_outputs(&unlimited),
            "budgeted run diverged from the unlimited baseline"
        );
        assert!(
            m.peak_store_bytes <= budget,
            "peak store occupancy {} B broke the {budget} B budget",
            m.peak_store_bytes
        );
        assert!(
            m.blocks_spilled > 0 && m.blocks_loaded > 0,
            "a quarter-working-set budget must force at least one spill/load pair: {m:?}"
        );
        assert!(
            m.spill_bytes < m.spill_raw_bytes,
            "spill files must be strictly smaller than the row encoding of what \
             they hold ({} B vs {} B raw)",
            m.spill_bytes,
            m.spill_raw_bytes
        );
    }

    // Execution backends head-to-head: the same shuffle-heavy plan on
    // the deterministic sim backend (inline master, one frame per
    // wakeup, routing and commit encoding serialized on the master
    // thread) and the threaded backend (master on its own thread,
    // shared worker pool, eager parallel routing, batched frame
    // draining). Outputs must be byte-identical; in full mode the
    // threaded backend must also be materially faster.
    {
        println!("\n== execution backends: sim vs threaded (4 pool workers) ==");
        let n_cmp: i64 = if smoke { 60_000 } else { 600_000 };
        let dag = shuffle_heavy_dag(n_cmp);
        // Best-of-2 per backend: the comparison gates CI, so keep
        // scheduler noise out of the ratio.
        let mut sim_secs = f64::INFINITY;
        let mut thr_secs = f64::INFINITY;
        let mut pair = None;
        for _ in 0..2 {
            let (s, _, sim_res) = run_pipeline(&dag, 64, usize::MAX, BackendKind::Sim);
            let (t, _, thr_res) = run_pipeline(&dag, 64, usize::MAX, BackendKind::Threaded);
            sim_secs = sim_secs.min(s);
            thr_secs = thr_secs.min(t);
            pair = Some((sim_res, thr_res));
        }
        let (sim_res, thr_res) = pair.expect("at least one comparison round");
        assert_eq!(
            encode_outputs(&sim_res),
            encode_outputs(&thr_res),
            "threaded backend changed the shuffle-heavy outputs"
        );
        let speedup = sim_secs / thr_secs;
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        println!(
            "shuffle-heavy    {n_cmp} rec  sim {} ({sim_secs:.3}s)  threaded {} \
             ({thr_secs:.3}s)  speedup {speedup:>5.2}x  [{cores} cores]",
            fmt_rate(n_cmp as u64, sim_secs),
            fmt_rate(n_cmp as u64, thr_secs),
        );
        // The wall-clock gate needs hardware that can actually run the 4
        // pool workers concurrently: on fewer cores both backends are
        // bound by the same total CPU work (threads timeslice one core)
        // and the honest ratio is ~1x, so only byte-identity is gated.
        if !smoke && cores >= 4 {
            assert!(
                speedup >= 1.5,
                "threaded backend must beat sim >=1.5x on the shuffle-heavy \
                 workload with 4 pool workers on {cores} cores (got {speedup:.2}x)"
            );
        } else if !smoke {
            println!(
                "({cores} core(s) < 4: wall-clock speedup gate skipped, \
                 byte-identity still enforced)"
            );
        }
    }

    if let Some(rss) = peak_rss_bytes() {
        println!(
            "\npeak resident set: {:.1} MiB",
            rss as f64 / (1024.0 * 1024.0)
        );
    }
    println!("\nall data-plane guarantees held");
}
