//! Prints what the Pado compiler does to each evaluation workload:
//! placement decisions (Algorithm 1), the Pado Stages (Algorithm 2),
//! recomputation-cost scores, and the fused physical plan — a textual
//! rendition of the paper's Figure 3.
//!
//! Usage: `cargo run -p pado-bench --bin explain [als|mlr|mr|timeline]`
//!
//! `timeline` instead prints the event-journal timeline of a small
//! deterministic demo job (fixed chaos seed, one scripted eviction) —
//! the exact bytes pinned by the golden test in
//! `crates/bench/tests/golden_timeline.rs`.

use pado_core::compiler::{compile, partition, place_operators, recomputation_scores, Placement};
use pado_dag::LogicalDag;
use pado_workloads::{als, mlr, mr};

fn explain(name: &str, dag: &LogicalDag) {
    println!("=== {name} ===");
    let placement = place_operators(dag).expect("placement");
    let scores = recomputation_scores(dag, &placement).expect("scores");
    println!("\noperators (Algorithm 1 placement + recomputation scores):");
    for op in dag.op_ids() {
        let deps: Vec<String> = dag
            .in_edges(op)
            .iter()
            .map(|e| format!("{} {}", dag.op(e.src).name, e.dep))
            .collect();
        println!(
            "  [{:<9}] {:<26} score {:>8.0}  <- {}",
            placement[op].label(),
            dag.op(op).name,
            scores[op],
            if deps.is_empty() {
                "(source)".to_string()
            } else {
                deps.join(", ")
            }
        );
    }
    let stages = partition(dag, &placement).expect("stages");
    println!("\nPado Stages (Algorithm 2):");
    for s in &stages.stages {
        let names: Vec<&str> = s.ops.iter().map(|&op| dag.op(op).name.as_str()).collect();
        println!(
            "  stage {:>2} (anchor {:<26}) parents {:?}: {}",
            s.id,
            dag.op(s.anchor).name,
            s.parents,
            names.join(", ")
        );
    }
    let plan = compile(dag).expect("plan");
    println!("\nphysical plan ({} tasks total):", plan.total_tasks());
    for fop in &plan.fops {
        let chain: Vec<&str> = fop
            .chain
            .iter()
            .map(|&op| dag.op(op).name.as_str())
            .collect();
        println!(
            "  fop {:>2} stage {:>2} x{:<4} {:<9} {}",
            fop.id,
            fop.stage,
            fop.parallelism,
            match fop.placement {
                Placement::Transient => "transient",
                Placement::Reserved => "reserved",
            },
            chain.join(" -> ")
        );
    }
    println!();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which == "timeline" {
        // Bare output so `explain timeline > .../golden/timeline.txt`
        // regenerates the golden file verbatim.
        print!("{}", pado_bench::demo_timeline());
        return;
    }
    if which == "mr" || which == "all" {
        explain("Map-Reduce (Figure 3a)", &mr::paper().0);
    }
    if which == "mlr" || which == "all" {
        explain(
            "Multinomial Logistic Regression (Figure 3b)",
            &mlr::paper().0,
        );
    }
    if which == "als" || which == "all" {
        explain("Alternating Least Squares (Figure 3c)", &als::paper().0);
    }
}
