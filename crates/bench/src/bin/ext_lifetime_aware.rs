//! Extension experiment (§6 "Operator Placement Optimization"): when the
//! resource manager offers transient resources in two lifetime classes
//! (Harvest-style), lifetime-aware placement steers high-recomputation-
//! cost operators to the long-lived class. Compares blind vs. aware
//! Pado on the three workloads over a half-short / half-long mix.

use pado_bench::{print_csv, print_table, run_repeated};
use pado_engines::{Mode, SimConfig};
use pado_simcluster::{LifetimeDist, SEC};
use pado_workloads::{als, mlr, mr};

fn main() {
    let workloads: Vec<(&str, _, u64)> = vec![
        ("ALS", als::paper(), 120),
        ("MLR", mlr::paper(), 360),
        ("MR", mr::paper(), 90),
    ];
    let mut rows = Vec::new();
    for (name, (dag, model), cap) in &workloads {
        let base = SimConfig {
            n_transient: 20,
            n_reserved: 5,
            lifetimes: LifetimeDist::Exponential {
                mean_us: (90 * SEC) as f64,
            },
            n_transient_long: 20,
            long_lifetimes: LifetimeDist::Exponential {
                mean_us: (30 * 60 * SEC) as f64,
            },
            ..SimConfig::default()
        };
        for (label, aware) in [("blind", false), ("lifetime-aware", true)] {
            let config = SimConfig {
                lifetime_aware: aware,
                ..base.clone()
            };
            let agg = run_repeated(Mode::Pado, dag, model, &config, *cap);
            rows.push(vec![
                name.to_string(),
                label.to_string(),
                agg.jct_label(),
                format!("{:.1}%", agg.relaunch_mean * 100.0),
            ]);
        }
    }
    print_table(
        "Extension: lifetime-aware placement over mixed transient pools (20 short-lived ~90s + 20 long-lived ~30m)",
        &["workload", "placement", "JCT(m)", "relaunched"],
        &rows,
    );
    print_csv(
        "ext_lifetime_aware",
        &["workload", "placement", "jct_min", "relaunch_ratio"],
        &rows,
    );
}
