//! Regenerates Figure 9: Pado's job completion times at three cluster
//! sizes with a fixed 8:1 transient-to-reserved ratio (27, 45, and 63
//! containers) under the high eviction rate.

use pado_bench::{lifetime_dists, print_csv, print_table, run_repeated, EvictionRate};
use pado_engines::{Mode, SimConfig};
use pado_workloads::{als, mlr, mr};

fn main() {
    let dists = lifetime_dists();
    let high = dists
        .iter()
        .find(|(r, _)| *r == EvictionRate::High)
        .map(|(_, d)| d.clone())
        .expect("high rate present");

    let sizes = [(24usize, 3usize), (40, 5), (56, 7)];
    let workloads: Vec<(&str, _, u64)> = vec![
        ("ALS", als::paper(), 120),
        ("MLR", mlr::paper(), 360),
        ("MR", mr::paper(), 90),
    ];
    let mut rows = Vec::new();
    for (name, (dag, model), cap) in &workloads {
        for (t, r) in sizes {
            let config = SimConfig {
                n_transient: t,
                n_reserved: r,
                lifetimes: high.clone(),
                ..SimConfig::default()
            };
            let agg = run_repeated(Mode::Pado, dag, model, &config, *cap);
            rows.push(vec![
                name.to_string(),
                format!("{} ({}T+{}R)", t + r, t, r),
                agg.jct_label(),
                format!("{:.1}", agg.jct_std_min),
            ]);
        }
    }
    print_table(
        "Figure 9: Pado JCT at a fixed 8:1 transient:reserved ratio, high eviction rate (paper: all workloads scale with cluster size; ALS scales worst, being communication-intensive)",
        &["workload", "containers", "JCT(m)", "std"],
        &rows,
    );
    print_csv(
        "figure9",
        &["workload", "containers", "jct_min", "jct_std"],
        &rows,
    );
}
