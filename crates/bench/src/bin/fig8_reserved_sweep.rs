//! Regenerates Figure 8: job completion times with 3–7 reserved
//! containers (plus 40 transient) under the high eviction rate, comparing
//! Pado against Spark-checkpoint on all three workloads.

use pado_bench::{lifetime_dists, print_csv, print_table, run_repeated, EvictionRate};
use pado_engines::{Mode, SimConfig};
use pado_workloads::{als, mlr, mr};

fn main() {
    let dists = lifetime_dists();
    let high = dists
        .iter()
        .find(|(r, _)| *r == EvictionRate::High)
        .map(|(_, d)| d.clone())
        .expect("high rate present");

    let workloads: Vec<(&str, _, u64)> = vec![
        ("ALS", als::paper(), 120),
        ("MLR", mlr::paper(), 360),
        ("MR", mr::paper(), 90),
    ];
    let mut rows = Vec::new();
    for (name, (dag, model), cap) in &workloads {
        for reserved in 3..=7usize {
            for mode in [Mode::SparkCkpt, Mode::Pado] {
                let config = SimConfig {
                    n_transient: 40,
                    n_reserved: reserved,
                    lifetimes: high.clone(),
                    ..SimConfig::default()
                };
                let agg = run_repeated(mode, dag, model, &config, *cap);
                rows.push(vec![
                    name.to_string(),
                    reserved.to_string(),
                    mode.name().to_string(),
                    agg.jct_label(),
                    format!("{:.1}", agg.jct_std_min),
                ]);
            }
        }
    }
    print_table(
        "Figure 8: JCT vs number of reserved containers at the high eviction rate (paper: Spark-checkpoint degrades steeply for ALS/MLR; Pado's MR slows ~2.6x from 7 to 3 reserved; Pado wins everywhere, up to 3.8x for MLR)",
        &["workload", "reserved", "engine", "JCT(m)", "std"],
        &rows,
    );
    print_csv(
        "figure8",
        &["workload", "reserved", "engine", "jct_min", "jct_std"],
        &rows,
    );
}
