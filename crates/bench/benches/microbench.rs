//! Criterion micro-benchmarks of the engine's hot paths: compilation,
//! record routing, partial aggregation, the input cache, the fair-share
//! network model, and B-spline trace refinement.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pado_core::compiler::compile;
use pado_core::exec::route;
use pado_core::runtime::LruCache;
use pado_dag::{block_from_vec, Block, CombineFn, DepType, Value};
use pado_simcluster::Network;

fn bench_compile(c: &mut Criterion) {
    let (als, _) = pado_workloads::als::paper();
    c.bench_function("compile_als_paper_dag", |b| {
        b.iter(|| compile(black_box(&als)).unwrap())
    });
    let (mlr, _) = pado_workloads::mlr::paper();
    c.bench_function("compile_mlr_paper_dag", |b| {
        b.iter(|| compile(black_box(&mlr)).unwrap())
    });
}

fn bench_route(c: &mut Criterion) {
    let records: Block = block_from_vec(
        (0..10_000)
            .map(|i| Value::pair(Value::from(i % 500), Value::from(i)))
            .collect(),
    );
    c.bench_function("route_shuffle_10k_records_64_parts", |b| {
        b.iter(|| route(black_box(&records), DepType::ManyToMany, 0, 64))
    });
    c.bench_function("route_broadcast_10k_records_8_parts", |b| {
        b.iter(|| route(black_box(&records), DepType::OneToMany, 0, 8))
    });
}

fn bench_partial_aggregation(c: &mut Criterion) {
    let records: Vec<Value> = (0..10_000)
        .map(|i| Value::pair(Value::from(i % 200), Value::from(1i64)))
        .collect();
    let f = CombineFn::sum_i64();
    c.bench_function("preaggregate_10k_records_200_keys", |b| {
        b.iter(|| pado_core::runtime::executor::preaggregate(black_box(records.clone()), &f, true))
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("lru_cache_put_get_churn", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(64 * 1024);
            for k in 0..256usize {
                let data = block_from_vec(vec![Value::from(k as i64); 64]);
                cache.put(k, data);
                black_box(cache.get(k / 2));
            }
            cache.len()
        })
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network_500_concurrent_transfers", |b| {
        b.iter(|| {
            let mut n = Network::new();
            let nodes: Vec<_> = (0..50).map(|_| n.add_node(125.0, 125.0)).collect();
            let mut dues = Vec::new();
            for i in 0..500 {
                let (_, d) = n.start(0, nodes[i % 50], nodes[(i * 7 + 1) % 50], 1e6);
                for due in d {
                    dues.retain(|p: &pado_simcluster::network::Due| p.id != due.id);
                    dues.push(due);
                }
            }
            while n.active() > 0 {
                dues.sort_by_key(|d| d.at);
                let d = dues.remove(0);
                if let Ok(re) = n.complete(d.at, d.id, d.gen) {
                    for r in re {
                        dues.retain(|p| p.id != r.id);
                        dues.push(r);
                    }
                }
            }
            n.bytes_completed
        })
    });
}

fn bench_bspline(c: &mut Criterion) {
    let samples: Vec<f64> = (0..8352).map(|i| (i as f64 * 0.01).sin()).collect();
    c.bench_function("bspline_refine_29_days_5min_to_1min", |b| {
        b.iter(|| pado_trace::refine(black_box(&samples), 5))
    });
}

fn bench_sim_end_to_end(c: &mut Criterion) {
    let (dag, cost) = pado_workloads::mr::paper();
    c.bench_function("simulate_mr_paper_no_evictions", |b| {
        b.iter(|| {
            pado_engines::simulate(
                pado_engines::Mode::Pado,
                black_box(&dag),
                &cost,
                pado_engines::SimConfig::default(),
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile, bench_route, bench_partial_aggregation, bench_cache,
              bench_network, bench_bspline, bench_sim_end_to_end
}
criterion_main!(benches);
