//! Golden test for the event-journal timeline: the deterministic demo
//! job (fixed chaos seed, one scripted eviction, strictly serial
//! execution) must render exactly the checked-in bytes.
//!
//! If an intentional change to the journal, the scheduler, or the
//! timeline format shifts the output, regenerate with:
//!
//! ```text
//! cargo run -p pado-bench --bin explain timeline \
//!     > crates/bench/tests/golden/timeline.txt
//! ```

#[test]
fn demo_timeline_matches_golden() {
    let got = pado_bench::demo_timeline();
    let want = include_str!("golden/timeline.txt");
    assert_eq!(
        got, want,
        "demo timeline drifted from the golden file; if intentional, \
         regenerate with `cargo run -p pado-bench --bin explain timeline \
         > crates/bench/tests/golden/timeline.txt`"
    );
}

#[test]
fn demo_journal_replays_cleanly_and_derives_consistent_metrics() {
    let journal = pado_bench::demo_journal();
    pado_core::runtime::assert_clean(&journal, true);
    let m = journal.derive_metrics();
    assert_eq!(m.evictions, 1, "the scripted eviction is in the journal");
    assert!(m.task_failures > 0, "the chaos seed injects UDF failures");
    assert_eq!(
        m.tasks_launched,
        m.original_tasks + m.relaunched_tasks + m.speculative_launches,
        "launch ledger balances: {m:?}"
    );
}
