//! Seeded reconfiguration chaos: every seed runs a job with 1–2
//! scheduled mid-job reconfigurations (stage migrations and transient
//! drains) layered on top of moderate container/UDF chaos, and must
//! still produce outputs byte-identical to the fault-free, unreconfigured
//! baseline. Some seeds add injected spill-file disk faults and the
//! eviction-storm policy hook, so the two-phase transaction is exercised
//! against every abort trigger: evictions mid-prepare, prepare timeouts,
//! master restarts, and nonexistent target stages.
//!
//! Invariants enforced per seed:
//! - outputs byte-identical to the fault-free baseline (codec-encoded),
//! - the journal replays cleanly through `assert_clean` (laws 1–9,
//!   including epoch fencing: no task commits under a stale epoch and
//!   every `ReconfigPrepared` resolves),
//! - journal-derived metrics equal the reported metrics,
//! - every requested reconfiguration resolves as committed or aborted,
//!   and the final epoch equals the commit count.

use pado_core::compiler::Placement;
use pado_core::runtime::{
    ChaosPlan, FaultPlan, JobEvent, JobResult, LocalCluster, ReconfigChange, ReconfigTrigger,
    RuntimeConfig, ScheduledReconfig, SpillFaultPlan,
};
use pado_dag::codec::encode_batch;
use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, TaskInput, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 110;
const MAX_TASK_ATTEMPTS: usize = 4;
/// Strictly below the retry budget so chaos alone can never exhaust a
/// task's attempts: every seeded job must complete.
const MAX_FAULTS_PER_TASK: usize = 2;

fn ints(n: i64) -> Vec<Value> {
    (0..n).map(Value::from).collect()
}

fn wordcount_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        4,
        SourceFn::from_vec(vec![
            Value::from("pado harnesses transient resources"),
            Value::from("transient containers come and go"),
            Value::from("reserved containers hold the line"),
            Value::from("pado retries pado recovers"),
        ]),
    )
    .par_do(
        "Split",
        ParDoFn::per_element(|line, emit| {
            for w in line.as_str().unwrap_or("").split_whitespace() {
                emit(Value::pair(Value::from(w), Value::from(1i64)));
            }
        }),
    )
    .combine_per_key("Count", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn side_input_dag() -> LogicalDag {
    let p = Pipeline::new();
    let bcast = p.read("Bcast", 3, SourceFn::from_vec(ints(9)));
    let data = p.read("Data", 2, SourceFn::from_vec(ints(6)));
    data.par_do_with_side(
        "AddSide",
        &bcast,
        ParDoFn::new(|input: TaskInput<'_>, emit| {
            let side_sum: i64 = input
                .side
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .sum();
            for v in input.main() {
                emit(Value::from(v.as_i64().unwrap() + side_sum));
            }
        }),
    )
    .aggregate("Total", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn reconfig_config(storm_threshold: usize) -> RuntimeConfig {
    RuntimeConfig {
        slots_per_executor: 2,
        event_timeout_ms: 10_000,
        snapshot_every: 2,
        max_task_attempts: MAX_TASK_ATTEMPTS,
        executor_fault_threshold: 2,
        speculation_floor_ms: 50,
        tick_ms: 5,
        // Short enough that a wedged prepare aborts well inside the
        // event timeout; long enough that quiesce normally succeeds.
        reconfig_prepare_timeout_ms: 500,
        reconfig_storm_threshold: storm_threshold,
        ..Default::default()
    }
}

/// Encode every output collection; byte equality here is the strongest
/// form of "reconfiguration did not change the answer".
fn encode_outputs(result: &JobResult) -> Vec<(String, Vec<u8>)> {
    result
        .outputs
        .iter()
        .map(|(name, records)| (name.clone(), encode_batch(records).expect("encodes")))
        .collect()
}

/// 1–2 reconfigurations against the progress clock. Stage indices run
/// past the real stage count on purpose: a migration naming a
/// nonexistent stage must abort cleanly, not wedge or corrupt.
fn random_reconfigs(rng: &mut StdRng, n_transient: usize) -> Vec<ScheduledReconfig> {
    (0..rng.gen_range(1..3usize))
        .map(|_| {
            let change = if rng.gen_bool(0.7) {
                ReconfigChange::MigrateStage {
                    stage: rng.gen_range(0..4usize),
                    to: if rng.gen_bool(0.7) {
                        Placement::Reserved
                    } else {
                        Placement::Transient
                    },
                }
            } else {
                ReconfigChange::DrainTransient {
                    nth: rng.gen_range(0..n_transient.max(1)),
                }
            };
            ScheduledReconfig {
                after_done_events: rng.gen_range(1..8usize),
                plan: change.into(),
                trigger: ReconfigTrigger::Chaos,
            }
        })
        .collect()
}

fn random_fault_plan(rng: &mut StdRng, seed: u64, n_transient: usize) -> FaultPlan {
    let evictions = (0..rng.gen_range(0..3usize))
        .map(|_| (rng.gen_range(1..10usize), rng.gen_range(0..3usize)))
        .collect();
    let reserved_failures = (0..rng.gen_range(0..2usize))
        .map(|_| (rng.gen_range(2..10usize), 0))
        .collect();
    let master_failure_after = if rng.gen_bool(0.2) {
        Some(rng.gen_range(3..8usize))
    } else {
        None
    };
    let spill_faults = rng.gen_bool(0.3).then(|| SpillFaultPlan {
        seed: seed ^ 0x5349_4C4C,
        write_prob: rng.gen_range(0.0..0.3),
        read_prob: rng.gen_range(0.0..0.3),
    });
    FaultPlan {
        evictions,
        reserved_failures,
        master_failure_after,
        chaos: Some(ChaosPlan {
            seed,
            error_prob: 0.10,
            panic_prob: 0.05,
            oom_prob: 0.0,
            delay_prob: 0.20,
            delay_ms: 8,
            max_faults_per_task: MAX_FAULTS_PER_TASK,
        }),
        budget_shrinks: Vec::new(),
        first_attempt_delays: Vec::new(),
        first_attempt_done_delays: Vec::new(),
        network: None,
        reconfigs: random_reconfigs(rng, n_transient),
        spill_faults,
        crashes: None,
    }
}

fn check_reconfig_invariants(seed: u64, result: &JobResult) {
    // Laws 1–9: commit-once, retry budgets, epoch fencing, every
    // prepared transaction resolves, aborted reconfigs leave the job
    // completable (the run finishing at all already proves the last).
    pado_core::runtime::assert_clean(&result.journal, true);

    // The metrics surfaced on the result must be exactly what the
    // journal derives (modulo the four wire-level counters the journal
    // cannot see, which we copy over before comparing).
    let mut derived = result.journal.derive_metrics();
    derived.messages_dropped = result.metrics.messages_dropped;
    derived.messages_duplicated = result.metrics.messages_duplicated;
    derived.messages_deduplicated = result.metrics.messages_deduplicated;
    derived.max_message_retransmissions = result.metrics.max_message_retransmissions;
    assert_eq!(
        derived, result.metrics,
        "seed {seed}: journal-derived metrics drifted from reported metrics"
    );

    // Transactions balance: every request resolves, and the epoch moved
    // once per commit — no silent applies, no lost transactions.
    let m = &result.metrics;
    let requested = result
        .journal
        .to_events()
        .iter()
        .filter(|e| matches!(e, JobEvent::ReconfigRequested { .. }))
        .count();
    assert_eq!(
        requested,
        m.reconfigs_committed + m.reconfigs_aborted,
        "seed {seed}: unresolved reconfiguration transactions: {m:?}"
    );
    assert_eq!(
        m.final_epoch, m.reconfigs_committed as u64,
        "seed {seed}: epoch drifted from commit count: {m:?}"
    );
}

#[test]
fn hundred_seeds_of_reconfig_chaos_preserve_outputs() {
    let shapes: Vec<(&str, LogicalDag)> = vec![
        ("wordcount", wordcount_dag()),
        ("side_input", side_input_dag()),
    ];
    let baselines: Vec<Vec<(String, Vec<u8>)>> = shapes
        .iter()
        .map(|(name, dag)| {
            let r = LocalCluster::new(2, 2)
                .with_config(reconfig_config(0))
                .run(dag)
                .unwrap_or_else(|e| panic!("fault-free baseline {name} failed: {e}"));
            encode_outputs(&r)
        })
        .collect();

    for seed in 0..SEEDS {
        let shape = (seed % shapes.len() as u64) as usize;
        let (name, dag) = &shapes[shape];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5245_434F_4E46);
        let n_transient = rng.gen_range(2..4usize);
        let n_reserved = rng.gen_range(1..3usize);
        // A quarter of the seeds arm the eviction-storm policy hook, so
        // chaos evictions can also trigger the degrade-to-reserved path.
        let storm_threshold = if rng.gen_bool(0.25) { 2 } else { 0 };
        let faults = random_fault_plan(&mut rng, seed, n_transient);
        let result = LocalCluster::new(n_transient, n_reserved)
            .with_config(reconfig_config(storm_threshold))
            .run_with_faults(dag, faults.clone())
            .unwrap_or_else(|e| panic!("seed {seed} ({name}, {faults:?}) failed: {e}"));
        assert_eq!(
            encode_outputs(&result),
            baselines[shape],
            "seed {seed} ({name}): outputs diverged from fault-free baseline"
        );
        check_reconfig_invariants(seed, &result);
    }
}

/// A three-stage chain whose last combine is two shuffle boundaries away
/// from the source: when the reconfig trigger fires on the first done
/// event (a Read task), the middle stage cannot have committed yet, so
/// repartitioning the last stage is still feasible at commit time.
fn two_combine_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        4,
        SourceFn::from_vec(
            (0..12i64)
                .map(|i| Value::pair(Value::from(format!("k{}", i % 5)), Value::from(i)))
                .collect(),
        ),
    )
    .combine_per_key("A", CombineFn::sum_i64())
    .par_do("Shift", ParDoFn::per_element(|kv, emit| emit(kv.clone())))
    .combine_per_key("B", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

/// Repartitioning changes bucketing (and therefore output order), so the
/// byte-identical matrix above deliberately excludes it. Here we pin it
/// deterministically: repartition the still-pending final combine before
/// its producers commit, and check value-equality under sorting instead.
#[test]
fn repartition_of_pending_stage_commits_and_preserves_values() {
    let dag = two_combine_dag();
    let baseline = LocalCluster::new(2, 2)
        .with_config(reconfig_config(0))
        .run(&dag)
        .expect("baseline run failed");
    let mut base_out: Vec<String> = baseline.outputs["Out"]
        .iter()
        .map(|v| format!("{v:?}"))
        .collect();
    base_out.sort();

    // Fire after the first terminal task report (a Read task): combine B
    // (fop 3 — its in-edge is a shuffle, so rebucketing is safe) is
    // pending and its producer stage has not committed, so the
    // transaction must quiesce, commit, and rebuild B at the new
    // parallelism.
    let result = LocalCluster::new(2, 2)
        .with_config(reconfig_config(0))
        .with_reconfig(
            1,
            ReconfigChange::Repartition {
                fop: 3,
                parallelism: 3,
            }
            .into(),
        )
        .run(&dag)
        .expect("repartitioned run failed");
    let mut out: Vec<String> = result.outputs["Out"]
        .iter()
        .map(|v| format!("{v:?}"))
        .collect();
    out.sort();

    assert_eq!(out, base_out, "repartitioning changed the answer");
    pado_core::runtime::assert_clean(&result.journal, true);
    let m = &result.metrics;
    assert_eq!(
        m.reconfigs_committed, 1,
        "the repartition should have committed: {m:?}"
    );
    assert_eq!(m.final_epoch, 1);
    let requested = result
        .journal
        .to_events()
        .iter()
        .filter(|e| matches!(e, JobEvent::ReconfigRequested { .. }))
        .count();
    assert_eq!(requested, m.reconfigs_committed + m.reconfigs_aborted);
}
