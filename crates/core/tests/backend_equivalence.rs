//! Cross-backend differential suite: every plan in the matrix runs on
//! the deterministic sim backend and on the true-parallel threaded
//! backend, and the two runs must agree wherever the execution model
//! says they must — byte-identical sink outputs (codec-encoded), a
//! journal that replays cleanly through the full invariant checker on
//! both backends, zero drift across the deterministic metrics counters,
//! and matching counts for the logically determined event kinds.
//!
//! The soak test at the bottom (ignored by default, run in CI) hammers
//! the threaded backend with repeated shuffle-heavy runs under injected
//! task failures: thread interleavings change every run, the answer and
//! the invariants may not.

use std::collections::BTreeMap;

use pado_core::runtime::{
    assert_clean, BackendKind, ChaosPlan, FaultPlan, JobResult, LocalCluster, RuntimeConfig,
};
use pado_dag::codec::encode_batch;
use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, TaskInput, Value};

fn ints(n: i64) -> Vec<Value> {
    (0..n).map(Value::from).collect()
}

/// One-to-one: a narrow map pipeline, no shuffle at all.
fn one_to_one_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read("Read", 4, SourceFn::from_vec(ints(64)))
        .par_do(
            "Triple",
            ParDoFn::per_element(|v, emit| {
                emit(Value::from(v.as_i64().unwrap_or(0) * 3 + 1));
            }),
        )
        .sink("Out");
    p.build().unwrap()
}

/// Hash shuffle: pair records fan out many-to-many into a group-by-key.
fn hash_shuffle_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read("Read", 6, SourceFn::from_vec(ints(120)))
        .par_do(
            "Key",
            ParDoFn::per_element(|v, emit| {
                let x = v.as_i64().unwrap_or(0);
                emit(Value::pair(Value::from(x % 7), Value::from(x)));
            }),
        )
        .group_by_key("Group")
        .par_do(
            "CountValues",
            ParDoFn::per_element(|grouped, emit| {
                let n = grouped
                    .val()
                    .and_then(|v| v.as_list())
                    .map(|l| l.len() as i64)
                    .unwrap_or(0);
                emit(Value::pair(grouped.key().unwrap().clone(), Value::from(n)));
            }),
        )
        .sink("Out");
    p.build().unwrap()
}

/// Broadcast: a multi-partition side input shipped one-to-many.
fn broadcast_dag() -> LogicalDag {
    let p = Pipeline::new();
    let bcast = p.read("Bcast", 3, SourceFn::from_vec(ints(9)));
    let data = p.read("Data", 4, SourceFn::from_vec(ints(16)));
    data.par_do_with_side(
        "AddSideSum",
        &bcast,
        ParDoFn::new(|input: TaskInput<'_>, emit| {
            let side_sum: i64 = input
                .side
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .sum();
            for v in input.main() {
                emit(Value::from(v.as_i64().unwrap_or(0) + side_sum));
            }
        }),
    )
    .sink("Out");
    p.build().unwrap()
}

/// Keyed combine: the partial-aggregation path (transient-side preagg).
fn keyed_combine_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read("Read", 5, SourceFn::from_vec(ints(200)))
        .par_do(
            "Key",
            ParDoFn::per_element(|v, emit| {
                let x = v.as_i64().unwrap_or(0);
                emit(Value::pair(Value::from(x % 11), Value::from(x)));
            }),
        )
        .combine_per_key("Sum", CombineFn::sum_i64())
        .sink("Out");
    p.build().unwrap()
}

/// Multi-stage: two shuffles back to back plus a global aggregate.
fn multi_stage_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read("Read", 4, SourceFn::from_vec(ints(96)))
        .par_do(
            "KeyA",
            ParDoFn::per_element(|v, emit| {
                let x = v.as_i64().unwrap_or(0);
                emit(Value::pair(Value::from(x % 5), Value::from(x)));
            }),
        )
        .combine_per_key("SumA", CombineFn::sum_i64())
        .par_do(
            "ReKey",
            ParDoFn::per_element(|kv, emit| {
                let k = kv.key().and_then(|k| k.as_i64()).unwrap_or(0);
                let v = kv.val().and_then(|v| v.as_i64()).unwrap_or(0);
                emit(Value::pair(Value::from(k % 2), Value::from(v)));
            }),
        )
        .combine_per_key("SumB", CombineFn::sum_i64())
        .par_do(
            "Unkey",
            ParDoFn::per_element(|kv, emit| {
                emit(Value::from(kv.val().and_then(|v| v.as_i64()).unwrap_or(0)));
            }),
        )
        .aggregate("Total", CombineFn::sum_i64())
        .sink("Out");
    p.build().unwrap()
}

fn matrix() -> Vec<(&'static str, LogicalDag)> {
    vec![
        ("one_to_one", one_to_one_dag()),
        ("hash_shuffle", hash_shuffle_dag()),
        ("broadcast", broadcast_dag()),
        ("keyed_combine", keyed_combine_dag()),
        ("multi_stage", multi_stage_dag()),
    ]
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        threaded_workers: 4,
        ..RuntimeConfig::default()
    }
}

fn run_on(backend: BackendKind, dag: &LogicalDag, faults: FaultPlan) -> JobResult {
    LocalCluster::new(3, 2)
        .with_backend(backend)
        .with_config(config())
        .run_with_faults(dag, faults)
        .expect("job completes")
}

/// Codec-encoded sink outputs; byte equality is the strongest form of
/// "the backend did not change the answer".
fn encode_outputs(result: &JobResult) -> Vec<(String, Vec<u8>)> {
    result
        .outputs
        .iter()
        .map(|(name, records)| (name.clone(), encode_batch(records).expect("encodes")))
        .collect()
}

/// Event kinds whose per-run counts are fully determined by the plan and
/// fault schedule; everything else (spills, cache traffic, retransmits,
/// heartbeats, speculation) legitimately varies with real scheduling.
const DETERMINISTIC_KINDS: &[&str] = &["TaskCommitted", "StageCompleted", "TaskFailed"];

fn deterministic_kind_counts(result: &JobResult) -> BTreeMap<&'static str, usize> {
    let counts = result.journal.kind_counts();
    DETERMINISTIC_KINDS
        .iter()
        .map(|k| (*k, counts.get(k).copied().unwrap_or(0)))
        .collect()
}

#[test]
fn matrix_plans_agree_across_backends() {
    for (name, dag) in matrix() {
        let sim = run_on(BackendKind::Sim, &dag, FaultPlan::default());
        let threaded = run_on(BackendKind::Threaded, &dag, FaultPlan::default());

        // Both journals replay cleanly through laws 1-10.
        assert_clean(&sim.journal, true);
        assert_clean(&threaded.journal, true);

        // Byte-identical job outputs.
        assert_eq!(
            encode_outputs(&sim),
            encode_outputs(&threaded),
            "plan {name}: backend changed the output bytes"
        );

        // No drift across the deterministic metrics counters.
        let drift = sim.metrics.backend_drift(&threaded.metrics);
        assert!(
            drift.is_empty(),
            "plan {name}: deterministic metrics drifted (counter, sim, threaded): {drift:?}"
        );

        // Logically determined event kinds appear the same number of
        // times, whatever order the interleaving produced them in.
        assert_eq!(
            deterministic_kind_counts(&sim),
            deterministic_kind_counts(&threaded),
            "plan {name}: deterministic journal kinds diverged"
        );
    }
}

#[test]
fn threaded_backend_survives_evictions() {
    // The recovery paths (revert, relaunch, stage reopen) must hold under
    // real parallelism too — and still not change a single output byte.
    let dag = keyed_combine_dag();
    let baseline = run_on(BackendKind::Sim, &dag, FaultPlan::default());
    let faults = FaultPlan {
        evictions: vec![(2, 0), (5, 1)],
        ..Default::default()
    };
    let result = run_on(BackendKind::Threaded, &dag, faults);
    assert_clean(&result.journal, true);
    assert_eq!(result.metrics.evictions, 2);
    assert_eq!(encode_outputs(&baseline), encode_outputs(&result));
}

/// Soak: repeated shuffle-heavy runs on the threaded backend with task
/// failures injected through the `catch_unwind` path. Every run must
/// terminate (no deadlock — the run itself would hang or hit the
/// wall-clock abort), lose no `TaskDone` (outputs stay byte-identical to
/// the fault-free sim baseline), and commit exactly once per task (the
/// invariant checker's commit laws reject double commits).
///
/// Ignored by default — CI runs it with `--ignored` under a timeout.
#[test]
#[ignore = "soak test: run explicitly or in CI"]
fn threaded_soak_under_task_failures() {
    let dag = hash_shuffle_dag();
    let baseline = encode_outputs(&run_on(BackendKind::Sim, &dag, FaultPlan::default()));
    for round in 0..10u64 {
        let faults = FaultPlan {
            chaos: Some(ChaosPlan {
                seed: 0x50AC ^ round,
                error_prob: 0.15,
                panic_prob: 0.10,
                oom_prob: 0.0,
                delay_prob: 0.10,
                delay_ms: 2,
                max_faults_per_task: 2,
            }),
            ..Default::default()
        };
        let result = run_on(BackendKind::Threaded, &dag, faults);
        assert_clean(&result.journal, true);
        assert_eq!(
            baseline,
            encode_outputs(&result),
            "soak round {round}: outputs diverged from the fault-free baseline"
        );
    }
}
