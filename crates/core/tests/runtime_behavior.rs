//! Behavioral tests of the runtime: scheduling shapes, dependency kinds,
//! degenerate clusters, and fault-handling corner cases.

use pado_core::compiler::{compile, Placement};
use pado_core::runtime::{FaultPlan, LocalCluster, RuntimeConfig};
use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, TaskInput, Value};

fn ints(n: i64) -> Vec<Value> {
    (0..n).map(Value::from).collect()
}

#[test]
fn group_by_key_end_to_end() {
    let p = Pipeline::new();
    p.read(
        "Read",
        3,
        SourceFn::from_vec(
            (0..12)
                .map(|i| Value::pair(Value::from(i % 4), Value::from(i)))
                .collect(),
        ),
    )
    .group_by_key("Group")
    .sink("Out");
    let dag = p.build().unwrap();
    let result = LocalCluster::new(3, 2).run(&dag).unwrap();
    let out = &result.outputs["Out"];
    assert_eq!(out.len(), 4, "four distinct keys");
    let total: usize = out
        .iter()
        .map(|r| r.val().unwrap().as_list().unwrap().len())
        .sum();
    assert_eq!(total, 12, "every record grouped somewhere");
}

#[test]
fn tree_aggregation_matches_flat_aggregation() {
    let build = |tree_par: usize| {
        let p = Pipeline::new();
        let read = p.read("Read", 8, SourceFn::from_vec(ints(100)));
        let first = read.aggregate_with("Tree", CombineFn::sum_i64(), tree_par);
        first.aggregate("Total", CombineFn::sum_i64()).sink("Out");
        p.build().unwrap()
    };
    let flat = LocalCluster::new(3, 2).run(&build(1)).unwrap();
    let tree = LocalCluster::new(3, 2).run(&build(4)).unwrap();
    assert_eq!(flat.outputs["Out"], tree.outputs["Out"]);
    assert_eq!(flat.outputs["Out"][0], Value::from((0..100).sum::<i64>()));
}

#[test]
fn created_only_pipeline_runs_on_reserved() {
    let p = Pipeline::new();
    let created = p.create("Make", ints(10));
    created
        .par_do(
            "Double",
            ParDoFn::per_element(|v, e| e(Value::from(v.as_i64().unwrap() * 2))),
        )
        .sink("Out");
    let dag = p.build().unwrap();
    // All reserved placement: works even with zero transient executors.
    let plan = compile(&dag).unwrap();
    assert!(plan.fops.iter().all(|f| f.placement == Placement::Reserved));
    let result = LocalCluster::new(0, 2).run(&dag).unwrap();
    assert_eq!(result.outputs["Out"].len(), 10);
}

#[test]
fn transient_terminal_output_is_collected() {
    // A DAG that ends on transient containers (no reserved anchor at the
    // end): outputs must still reach the job result.
    let p = Pipeline::new();
    p.read("Read", 4, SourceFn::from_vec(ints(20))).par_do(
        "Inc",
        ParDoFn::per_element(|v, e| e(Value::from(v.as_i64().unwrap() + 1))),
    );
    let dag = p.build().unwrap();
    let result = LocalCluster::new(2, 1).run(&dag).unwrap();
    let mut got: Vec<i64> = result.outputs["Inc"]
        .iter()
        .map(|v| v.as_i64().unwrap())
        .collect();
    got.sort_unstable();
    assert_eq!(got, (1..=20).collect::<Vec<_>>());
}

#[test]
fn no_transient_executors_wedges_and_aborts() {
    let p = Pipeline::new();
    p.read("Read", 2, SourceFn::from_vec(ints(4)))
        .combine_per_key("Agg", CombineFn::sum_i64());
    let dag = p.build().unwrap();
    let config = RuntimeConfig {
        event_timeout_ms: 200,
        // Validation requires the prepare window below the wedge timeout.
        reconfig_prepare_timeout_ms: 150,
        ..Default::default()
    };
    let err = LocalCluster::new(0, 1)
        .with_config(config)
        .run(&dag)
        .unwrap_err();
    assert!(err.to_string().contains("aborted"), "{err}");
}

#[test]
fn repeated_evictions_of_every_transient_container() {
    let p = Pipeline::new();
    p.read("Read", 6, SourceFn::from_vec(ints(60)))
        .par_do(
            "Slow",
            ParDoFn::new(|input: TaskInput<'_>, emit| {
                // A little work per task so evictions interleave.
                let mut acc = 0i64;
                for v in input.main() {
                    acc += v.as_i64().unwrap_or(0);
                }
                emit(Value::pair(Value::from(acc % 3), Value::from(acc)));
            }),
        )
        .combine_per_key("Sum", CombineFn::sum_i64())
        .sink("Out");
    let dag = p.build().unwrap();
    // Evict someone after every single completion for a while.
    let faults = FaultPlan {
        evictions: (1..=10).map(|k| (k, k % 2)).collect(),
        ..Default::default()
    };
    let result = LocalCluster::new(2, 1)
        .run_with_faults(&dag, faults)
        .unwrap();
    assert_eq!(result.metrics.evictions, 10);
    let total: i64 = result.outputs["Out"]
        .iter()
        .map(|r| r.val().unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(total, (0..60).sum::<i64>());
}

#[test]
fn eviction_after_commit_never_recomputes_parent_stage() {
    // Two-stage job; evict transient executors only after the first
    // stage fully committed: no map task should relaunch.
    let p = Pipeline::new();
    p.read("Read", 4, SourceFn::from_vec(ints(16)))
        .par_do(
            "Key",
            ParDoFn::per_element(|v, e| {
                e(Value::pair(Value::from(v.as_i64().unwrap() % 2), v.clone()))
            }),
        )
        .group_by_key("Group")
        .par_do("Post", ParDoFn::per_element(|v, e| e(v.clone())))
        .sink("Out");
    let dag = p.build().unwrap();
    let plan = compile(&dag).unwrap();
    let stage0_tasks: usize = plan
        .fops
        .iter()
        .filter(|f| f.stage == 0 && f.placement == Placement::Transient)
        .map(|f| f.parallelism)
        .sum();
    // Stage 0's transient tasks are the first 4 completions; evict later.
    let faults = FaultPlan {
        evictions: vec![(stage0_tasks + 2, 0)],
        ..Default::default()
    };
    let result = LocalCluster::new(2, 2)
        .run_with_faults(&dag, faults)
        .unwrap();
    assert_eq!(result.metrics.evictions, 1);
    assert_eq!(
        result.metrics.relaunched_tasks, 0,
        "committed stage outputs live on reserved executors; nothing to redo"
    );
}

#[test]
fn side_input_from_multi_partition_producer() {
    // Broadcast from a producer with parallelism > 1: consumers must see
    // the concatenation of all partitions.
    let p = Pipeline::new();
    let bcast = p.read("Bcast", 3, SourceFn::from_vec(ints(9)));
    let data = p.read("Data", 2, SourceFn::from_vec(ints(4)));
    data.par_do_with_side(
        "Check",
        &bcast,
        ParDoFn::new(|input: TaskInput<'_>, emit| {
            let side_sum: i64 = input
                .side
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .sum();
            for v in input.main() {
                emit(Value::from(v.as_i64().unwrap() + side_sum));
            }
        }),
    )
    .aggregate("Total", CombineFn::sum_i64())
    .sink("Out");
    let dag = p.build().unwrap();
    let result = LocalCluster::new(3, 2).run(&dag).unwrap();
    // side_sum = 36 added to each of 4 records summing 6: 4*36 + 6.
    assert_eq!(result.outputs["Out"][0], Value::from(4 * 36 + 6));
}

#[test]
fn fusion_disabled_produces_same_results() {
    use pado_core::compiler::PlanConfig;
    let p = Pipeline::new();
    p.read("Read", 4, SourceFn::from_vec(ints(40)))
        .par_do(
            "A",
            ParDoFn::per_element(|v, e| e(Value::from(v.as_i64().unwrap() * 3))),
        )
        .par_do(
            "B",
            ParDoFn::per_element(|v, e| {
                e(Value::pair(Value::from(v.as_i64().unwrap() % 5), v.clone()))
            }),
        )
        .combine_per_key("Sum", CombineFn::sum_i64())
        .sink("Out");
    let dag = p.build().unwrap();
    let fused = LocalCluster::new(2, 1).run(&dag).unwrap();
    let unfused = LocalCluster::new(2, 1)
        .with_plan_config(PlanConfig {
            fusion: false,
            ..PlanConfig::default()
        })
        .run(&dag)
        .unwrap();
    let sort = |r: &Vec<Value>| {
        let mut v = r.clone();
        v.sort();
        v
    };
    assert_eq!(sort(&fused.outputs["Out"]), sort(&unfused.outputs["Out"]));
}

#[test]
fn many_to_one_with_parallel_consumers_partitions_by_source() {
    // aggregate_with(par 3) over 9 sources: each consumer merges the
    // sources congruent to its index.
    let p = Pipeline::new();
    let read = p.read(
        "Read",
        9,
        SourceFn::new(|i, _| vec![Value::from(1i64 << i)]),
    );
    read.aggregate_with("Tree", CombineFn::sum_i64(), 3)
        .sink("Out");
    let dag = p.build().unwrap();
    let result = LocalCluster::new(3, 2).run(&dag).unwrap();
    let mut got: Vec<i64> = result.outputs["Out"]
        .iter()
        .map(|v| v.as_i64().unwrap())
        .collect();
    got.sort_unstable();
    let mut want: Vec<i64> = (0..3)
        .map(|d| (0..9).filter(|i| i % 3 == d).map(|i| 1i64 << i).sum())
        .collect();
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn metrics_account_bytes_pushed_for_transient_stages() {
    let p = Pipeline::new();
    p.read("Read", 4, SourceFn::from_vec(ints(100)))
        .par_do(
            "Key",
            ParDoFn::per_element(|v, e| {
                e(Value::pair(Value::from(v.as_i64().unwrap() % 7), v.clone()))
            }),
        )
        .combine_per_key("Sum", CombineFn::sum_i64())
        .sink("Out");
    let dag = p.build().unwrap();
    let result = LocalCluster::new(2, 2).run(&dag).unwrap();
    assert!(
        result.metrics.bytes_pushed > 0,
        "map outputs pushed to reserved"
    );
    assert_eq!(result.metrics.tasks_launched, result.metrics.original_tasks);
}

#[test]
fn event_log_orders_stages_and_records_faults() {
    use pado_core::runtime::master::JobEvent;
    let p = Pipeline::new();
    p.read("Read", 4, SourceFn::from_vec(ints(20)))
        .par_do(
            "Key",
            ParDoFn::per_element(|v, e| {
                e(Value::pair(Value::from(v.as_i64().unwrap() % 3), v.clone()))
            }),
        )
        .combine_per_key("Sum", CombineFn::sum_i64())
        .sink("Out");
    let dag = p.build().unwrap();
    let faults = FaultPlan {
        evictions: vec![(2, 0)],
        ..Default::default()
    };
    let result = LocalCluster::new(2, 2)
        .run_with_faults(&dag, faults)
        .unwrap();
    pado_core::runtime::assert_clean(&result.journal, true);
    let events = result.journal.to_events();
    let events = &events;

    // The eviction and the replacement both appear, in order.
    let evicted_at = events
        .iter()
        .position(|e| matches!(e, JobEvent::ContainerEvicted(_)))
        .expect("eviction logged");
    let added_at = events
        .iter()
        .position(|e| matches!(e, JobEvent::ContainerAdded(_)))
        .expect("replacement logged");
    assert!(evicted_at < added_at);

    // Every stage completes exactly once (no reopen without reserved
    // failures), and stage 0 completes before the last stage.
    let completions: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            JobEvent::StageCompleted(s) => Some(*s),
            _ => None,
        })
        .collect();
    let n_stages = pado_core::compiler::compile(&dag)
        .unwrap()
        .stage_dag
        .stages
        .len();
    assert_eq!(completions.len(), n_stages);
    assert!(!events
        .iter()
        .any(|e| matches!(e, JobEvent::StageReopened { .. })));

    // Commits never precede their own launch.
    for (i, e) in events.iter().enumerate() {
        if let JobEvent::TaskCommitted { fop, index, .. } = e {
            assert!(
                events[..i].iter().any(|l| matches!(
                    l,
                    JobEvent::TaskLaunched { fop: lf, index: li, .. } if lf == fop && li == index
                )),
                "commit of ({fop},{index}) before any launch"
            );
        }
    }
}

#[test]
fn event_log_notes_reserved_failure_reopening_stages() {
    use pado_core::runtime::master::JobEvent;
    let p = Pipeline::new();
    p.read("Read", 4, SourceFn::from_vec(ints(16)))
        .par_do(
            "Key",
            ParDoFn::per_element(|v, e| {
                e(Value::pair(Value::from(v.as_i64().unwrap() % 2), v.clone()))
            }),
        )
        .group_by_key("Group")
        .par_do("Post", ParDoFn::per_element(|v, e| e(v.clone())))
        .sink("Out");
    let dag = p.build().unwrap();
    let faults = FaultPlan {
        reserved_failures: vec![(6, 0)],
        ..Default::default()
    };
    let result = LocalCluster::new(2, 2)
        .run_with_faults(&dag, faults)
        .unwrap();
    assert!(result
        .journal
        .to_events()
        .iter()
        .any(|e| matches!(e, JobEvent::ReservedFailed(_))));
    pado_core::runtime::assert_clean(&result.journal, true);
}

#[test]
fn fixed_seed_journal_is_deterministic() {
    use pado_core::runtime::ChaosPlan;

    // A serial chain (parallelism 1 everywhere) so only one task is in
    // flight at a time: with a fixed chaos seed the canonical journal
    // must come out byte-identical run over run.
    let build = || {
        let p = Pipeline::new();
        p.read("Read", 1, SourceFn::from_vec(ints(12)))
            .par_do(
                "Key",
                ParDoFn::per_element(|v, e| {
                    e(Value::pair(Value::from(v.as_i64().unwrap() % 2), v.clone()))
                }),
            )
            .combine_per_key("Sum", CombineFn::sum_i64())
            .sink("Out");
        p.build().unwrap()
    };
    let config = RuntimeConfig {
        slots_per_executor: 1,
        speculation: false,
        // No blacklisting: a replacement container would run concurrently
        // with the blacklisted one and their commit interleaving is
        // thread-timing, not seed.
        executor_fault_threshold: 100,
        heartbeat_interval_ms: 1_000,
        dead_executor_timeout_ms: 60_000,
        ..Default::default()
    };
    let faults = FaultPlan {
        evictions: vec![(1, 0)],
        chaos: Some(ChaosPlan {
            seed: 7,
            error_prob: 0.5,
            panic_prob: 0.0,
            oom_prob: 0.0,
            delay_prob: 0.0,
            delay_ms: 0,
            max_faults_per_task: 1,
        }),
        ..Default::default()
    };
    let run = || {
        let dag = build();
        LocalCluster::new(1, 1)
            .with_config(config.clone())
            .run_with_faults(&dag, faults.clone())
            .unwrap()
    };
    let a = run();
    let b = run();
    pado_core::runtime::assert_clean(&a.journal, true);
    assert_eq!(
        a.journal.to_events(),
        b.journal.to_events(),
        "canonical event sequence must be identical for a fixed seed"
    );
    assert_eq!(
        a.journal.render_timeline(false),
        b.journal.render_timeline(false),
        "time-elided timeline must be byte-stable for a fixed seed"
    );
}

#[test]
fn custom_scheduling_policy_is_used() {
    use pado_core::runtime::{LeastLoaded, SchedulingPolicy};

    // A policy that counts its decisions.
    struct Counting {
        inner: LeastLoaded,
        picks: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }
    impl SchedulingPolicy for Counting {
        fn pick(
            &mut self,
            task: pado_core::runtime::TaskToPlace,
            candidates: &[pado_core::runtime::Candidate],
        ) -> Option<usize> {
            self.picks
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.pick(task, candidates)
        }
        fn name(&self) -> &'static str {
            "counting-least-loaded"
        }
    }

    let picks = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let picks_in = std::sync::Arc::clone(&picks);
    let p = Pipeline::new();
    p.read("Read", 6, SourceFn::from_vec(ints(30)))
        .par_do(
            "Key",
            ParDoFn::per_element(|v, e| {
                e(Value::pair(Value::from(v.as_i64().unwrap() % 3), v.clone()))
            }),
        )
        .combine_per_key("Sum", CombineFn::sum_i64())
        .sink("Out");
    let dag = p.build().unwrap();
    let result = LocalCluster::new(3, 2)
        .with_policy(move || {
            Box::new(Counting {
                inner: LeastLoaded,
                picks: std::sync::Arc::clone(&picks_in),
            })
        })
        .run(&dag)
        .unwrap();
    assert!(picks.load(std::sync::atomic::Ordering::Relaxed) > 0);
    let total: i64 = result.outputs["Out"]
        .iter()
        .map(|r| r.val().unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(total, (0..30).sum::<i64>());
}

#[test]
fn fixed_seed_reconfig_timeline_is_golden() {
    use pado_core::runtime::ReconfigChange;

    // Same serial-chain recipe as `fixed_seed_journal_is_deterministic`
    // (parallelism 1, one slot, no speculation, no blacklisting) plus a
    // mid-job stage migration: the two-phase transaction must land at
    // the same journal position run over run, and the rendered timeline
    // must spell the transaction out.
    let build = || {
        let p = Pipeline::new();
        p.read("Read", 1, SourceFn::from_vec(ints(12)))
            .par_do(
                "Key",
                ParDoFn::per_element(|v, e| {
                    e(Value::pair(Value::from(v.as_i64().unwrap() % 2), v.clone()))
                }),
            )
            .combine_per_key("Sum", CombineFn::sum_i64())
            .sink("Out");
        p.build().unwrap()
    };
    let config = RuntimeConfig {
        slots_per_executor: 1,
        speculation: false,
        executor_fault_threshold: 100,
        heartbeat_interval_ms: 1_000,
        dead_executor_timeout_ms: 60_000,
        // Generous: quiesce of the single in-flight task must never race
        // the prepare deadline, or the committed/aborted outcome (and
        // with it the timeline) would depend on thread timing.
        reconfig_prepare_timeout_ms: 5_000,
        ..Default::default()
    };
    let run = || {
        let dag = build();
        LocalCluster::new(1, 1)
            .with_config(config.clone())
            .with_reconfig(
                1,
                ReconfigChange::MigrateStage {
                    stage: 1,
                    to: Placement::Reserved,
                }
                .into(),
            )
            .run(&dag)
            .unwrap()
    };
    let a = run();
    let b = run();
    pado_core::runtime::assert_clean(&a.journal, true);
    assert_eq!(a.metrics.reconfigs_committed, 1);
    assert_eq!(a.metrics.final_epoch, 1);
    let timeline = a.journal.render_timeline(false);
    assert_eq!(
        timeline,
        b.journal.render_timeline(false),
        "time-elided reconfig timeline must be byte-stable for a fixed seed"
    );
    for needle in [
        "reconfig-req",
        "reconfig-prep",
        "epoch-advance epoch 1",
        "reconfig-done",
        "migrate stage 1 to reserved",
    ] {
        assert!(
            timeline.contains(needle),
            "timeline must narrate the transaction (missing {needle:?}):\n{timeline}"
        );
    }
}

#[test]
fn fixed_seed_crash_recovery_timeline_is_golden() {
    use pado_core::runtime::{temp_wal_path, CrashPlan};

    // Same serial-chain recipe as `fixed_seed_journal_is_deterministic`
    // (parallelism 1, one slot, no speculation, no blacklisting) plus a
    // deterministic master crash: the kill lands after a fixed number of
    // handled frames, so the WAL prefix, the recovery, and the journal
    // it produces must be byte-stable run over run.
    let build = || {
        let p = Pipeline::new();
        p.read("Read", 1, SourceFn::from_vec(ints(12)))
            .par_do(
                "Key",
                ParDoFn::per_element(|v, e| {
                    e(Value::pair(Value::from(v.as_i64().unwrap() % 2), v.clone()))
                }),
            )
            .combine_per_key("Sum", CombineFn::sum_i64())
            .sink("Out");
        p.build().unwrap()
    };
    let run = |tag: &str| {
        let wal = temp_wal_path(tag);
        let config = RuntimeConfig {
            slots_per_executor: 1,
            speculation: false,
            executor_fault_threshold: 100,
            heartbeat_interval_ms: 1_000,
            dead_executor_timeout_ms: 60_000,
            wal_path: Some(wal.to_string_lossy().into_owned()),
            wal_sync_every: 1,
            wal_snapshot_every: 8,
            ..Default::default()
        };
        let faults = FaultPlan {
            crashes: Some(CrashPlan {
                seed: 7,
                after_handled_frames: Some(3),
                max_crashes: 1,
                ..Default::default()
            }),
            ..Default::default()
        };
        let dag = build();
        let result = LocalCluster::new(1, 1)
            .with_config(config)
            .run_with_faults(&dag, faults)
            .unwrap();
        std::fs::remove_file(&wal).ok();
        result
    };
    let a = run("golden-crash-a");
    let b = run("golden-crash-b");
    pado_core::runtime::assert_clean(&a.journal, true);
    assert_eq!(a.metrics.wal_recoveries, 1);
    // The replayed-frame count is wall-clock (it includes whatever
    // executor-side events were in flight when the kill landed), so it
    // is elided from the golden comparison exactly like timestamps; the
    // semantic sequence — what crashed, what reverted, what relaunched,
    // with which fenced attempt ids — must be byte-stable.
    let canon = |r: &pado_core::runtime::JobResult| -> Vec<pado_core::runtime::JobEvent> {
        r.journal
            .to_events()
            .into_iter()
            .map(|e| match e {
                pado_core::runtime::JobEvent::WalRecovered {
                    snapshot_restored, ..
                } => pado_core::runtime::JobEvent::WalRecovered {
                    frames_replayed: 0,
                    frames_truncated: 0,
                    snapshot_restored,
                },
                e => e,
            })
            .collect()
    };
    assert_eq!(
        canon(&a),
        canon(&b),
        "canonical crash-recovery event sequence must be identical for a fixed seed"
    );
    let strip = |t: &str| -> String {
        t.lines()
            .filter(|l| !l.contains("wal-recovered"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let timeline = a.journal.render_timeline(false);
    assert_eq!(
        strip(&timeline),
        strip(&b.journal.render_timeline(false)),
        "time-elided crash-recovery timeline must be byte-stable for a fixed seed"
    );
    for needle in ["master-recovered", "wal-recovered"] {
        assert!(
            timeline.contains(needle),
            "timeline must narrate the recovery (missing {needle:?}):\n{timeline}"
        );
    }
    let totals = |r: &pado_core::runtime::JobResult| -> i64 {
        r.outputs["Out"]
            .iter()
            .map(|rec| rec.val().unwrap().as_i64().unwrap())
            .sum()
    };
    assert_eq!(totals(&a), (0..12).sum::<i64>());
}
