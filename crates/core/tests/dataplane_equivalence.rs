//! Equivalence suite for the block-based data plane: a naive cloning
//! reference plane executes the same physical plans single-threaded —
//! per-consumer routing, owned `Vec<Value>` partitions, no sharing, no
//! pre-aggregation — and every cluster run must match it byte-for-byte
//! (codec-encoded), including runs under seeded chaos. This pins the
//! refactor's contract: sharing blocks instead of cloning records never
//! changes a single output byte.

use std::collections::BTreeMap;

use pado_core::compiler::{compile, InputSlot, PhysicalPlan};
use pado_core::exec::{apply_chain, route, route_hash};
use pado_core::runtime::master::required_src_indices;
use pado_core::runtime::{ChaosPlan, FaultPlan, LocalCluster, RuntimeConfig};
use pado_dag::codec::encode_batch;
use pado_dag::{
    block_from_vec, Block, CombineFn, DepType, LogicalDag, MainSlot, ParDoFn, Pipeline, SourceFn,
    TaskInput, Value,
};

/// The pre-refactor routing semantics: clone every record into its
/// bucket, once per consumer that asks.
fn route_reference(
    records: &[Value],
    dep: DepType,
    src_index: usize,
    dst_parallelism: usize,
) -> Vec<Vec<Value>> {
    let p = dst_parallelism.max(1);
    let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); p];
    match dep {
        DepType::OneToOne | DepType::ManyToOne => {
            buckets[src_index % p].extend(records.iter().cloned());
        }
        DepType::OneToMany => {
            for b in &mut buckets {
                b.extend(records.iter().cloned());
            }
        }
        DepType::ManyToMany => {
            for r in records {
                let i = (route_hash(r) % p as u64) as usize;
                buckets[i].push(r.clone());
            }
        }
    }
    buckets
}

/// Executes a physical plan single-threaded with cloning assembly: every
/// task's inputs are materialized as fresh owned vectors, routed per
/// consumer, exactly as the pre-refactor master did.
fn run_reference(dag: &LogicalDag, plan: &PhysicalPlan) -> BTreeMap<String, Vec<Value>> {
    let n = plan.fops.len();
    let mut outputs: Vec<Vec<Vec<Value>>> = vec![Vec::new(); n];
    let mut done = vec![false; n];
    while done.iter().any(|d| !d) {
        let mut progressed = false;
        for f in 0..n {
            if done[f] || !plan.in_edges(f).iter().all(|e| done[e.src]) {
                continue;
            }
            let fop = &plan.fops[f];
            let dst_par = fop.parallelism;
            outputs[f] = (0..dst_par)
                .map(|index| {
                    let mut mains: Vec<MainSlot> = Vec::new();
                    let mut sides: BTreeMap<usize, Block> = BTreeMap::new();
                    for e in plan.in_edges(f) {
                        let src_par = plan.fops[e.src].parallelism;
                        match e.slot {
                            InputSlot::Main(_) => {
                                let mut part: Vec<Value> = Vec::new();
                                for si in required_src_indices(&e, index, src_par, dst_par) {
                                    let records = &outputs[e.src][si];
                                    match e.dep {
                                        DepType::ManyToMany => part.extend(
                                            route_reference(records, e.dep, si, dst_par)[index]
                                                .iter()
                                                .cloned(),
                                        ),
                                        _ => part.extend(records.iter().cloned()),
                                    }
                                }
                                mains.push(MainSlot::from_vec(part));
                            }
                            InputSlot::Side => {
                                let mut all = Vec::new();
                                for part in outputs[e.src].iter().take(src_par) {
                                    all.extend(part.iter().cloned());
                                }
                                sides.insert(e.member, block_from_vec(all));
                            }
                        }
                    }
                    apply_chain(dag, fop, index, &mains, &sides)
                        .unwrap_or_else(|e| panic!("reference task {f}.{index} failed: {e}"))
                })
                .collect();
            done[f] = true;
            progressed = true;
        }
        assert!(progressed, "physical plan has an input cycle");
    }

    let mut result: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    for (f, parts) in outputs.iter().enumerate() {
        if !plan.out_edges(f).is_empty() {
            continue;
        }
        let name = dag.op(plan.fops[f].tail()).name.clone();
        let entry = result.entry(name).or_default();
        for part in parts {
            entry.extend(part.iter().cloned());
        }
    }
    result
}

fn encode(outputs: &BTreeMap<String, Vec<Value>>) -> Vec<(String, Vec<u8>)> {
    outputs
        .iter()
        .map(|(name, records)| (name.clone(), encode_batch(records).expect("encodes")))
        .collect()
}

fn ints(n: i64) -> Vec<Value> {
    (0..n).map(Value::from).collect()
}

/// Shuffle-heavy: ManyToMany into a keyed combine, then a gather.
fn wordcount_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        4,
        SourceFn::new(|i, _| {
            (0..40)
                .map(|j| Value::from(format!("w{}", (i as i64 * 17 + j) % 13)))
                .collect()
        }),
    )
    .par_do(
        "Pair",
        ParDoFn::per_element(|w, emit| emit(Value::pair(w.clone(), Value::from(1i64)))),
    )
    .combine_per_key("Count", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

/// Broadcast-heavy: a side input fanned out to every consumer task.
fn broadcast_dag() -> LogicalDag {
    let p = Pipeline::new();
    let bcast = p.read("Bcast", 3, SourceFn::from_vec(ints(30)));
    let data = p.read("Data", 4, SourceFn::from_vec(ints(12)));
    data.par_do_with_side(
        "AddSide",
        &bcast,
        ParDoFn::new(|input: TaskInput<'_>, emit| {
            let side_sum: i64 = input
                .side
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .sum();
            for v in input.main() {
                emit(Value::from(v.as_i64().unwrap() + side_sum));
            }
        }),
    )
    .aggregate("Total", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

/// Gather-heavy: group-by-key over a shuffle, list-valued outputs.
fn groupby_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        3,
        SourceFn::new(|i, _| {
            (0..20)
                .map(|j| Value::pair(Value::from((i as i64 + j) % 7), Value::from(j)))
                .collect()
        }),
    )
    .group_by_key("Group")
    .sink("Out");
    p.build().unwrap()
}

/// Columnar float keys with the full bit-level zoo — `NaN`, `-0.0`,
/// `+0.0` — through a keyed combine. The vectorized grouping kernel
/// sorts these by a monotone bit map; outputs must still be
/// byte-identical to the row path's `total_cmp`-ordered `BTreeMap`.
fn floatkeys_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        3,
        SourceFn::new(|i, _| {
            (0..24)
                .map(|j| {
                    let key = match j % 6 {
                        0 => 0.0f64,
                        1 => -0.0,
                        2 => f64::NAN,
                        3 => 1.5,
                        4 => -2.25,
                        _ => i as f64 + 0.5,
                    };
                    Value::pair(Value::from(key), Value::from(j as i64))
                })
                .collect()
        }),
    )
    .combine_per_key("SumPerKey", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn shapes() -> Vec<(&'static str, LogicalDag)> {
    vec![
        ("wordcount", wordcount_dag()),
        ("broadcast", broadcast_dag()),
        ("groupby", groupby_dag()),
        ("floatkeys", floatkeys_dag()),
    ]
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        slots_per_executor: 2,
        event_timeout_ms: 10_000,
        snapshot_every: 2,
        max_task_attempts: 3,
        executor_fault_threshold: 2,
        speculation_floor_ms: 50,
        tick_ms: 5,
        ..Default::default()
    }
}

#[test]
fn new_route_matches_cloning_reference_on_all_edge_types() {
    let records: Vec<Value> = (0..200)
        .map(|i| Value::pair(Value::from(i % 23), Value::from(i)))
        .collect();
    let block = block_from_vec(records.clone());
    for dep in [
        DepType::OneToOne,
        DepType::OneToMany,
        DepType::ManyToOne,
        DepType::ManyToMany,
    ] {
        for (src, par) in [(0usize, 1usize), (2, 4), (5, 3), (7, 16)] {
            let new: Vec<Vec<Value>> = route(&block, dep, src, par)
                .iter()
                .map(|b| b.to_vec())
                .collect();
            let old = route_reference(&records, dep, src, par);
            assert_eq!(new, old, "route diverged: {dep:?} src={src} par={par}");
        }
    }
}

/// The vectorized kernels against their row oracle, directly: for every
/// grouping/combining operator over columnar inputs — i64, f64 (with
/// `NaN` and signed zeros), and string keys, spread across several
/// blocks — `apply_op` (kernel path) must produce exactly the records
/// of `apply_op_rows` (BTreeMap path).
#[test]
fn vectorized_kernels_match_row_oracle() {
    use pado_core::exec::{apply_op, apply_op_rows};

    let p = Pipeline::new();
    let src = p.read("Src", 1, SourceFn::from_vec(Vec::new()));
    src.group_by_key("G").sink("O1");
    src.combine_per_key("CK", CombineFn::sum_f64()).sink("O2");
    src.aggregate("CG", CombineFn::sum_f64()).sink("O3");
    let dag = p.build().unwrap();
    let op_named = |name: &str| {
        dag.op_ids()
            .find(|&id| dag.op(id).name == name)
            .expect("op exists")
    };

    let i64_keys: Vec<Value> = (0..300)
        .map(|i| Value::pair(Value::from(i % 17), Value::from(i as f64 / 3.0)))
        .collect();
    let f64_keys: Vec<Value> = (0..300)
        .map(|i| {
            let key = match i % 5 {
                0 => f64::NAN,
                1 => 0.0,
                2 => -0.0,
                _ => (i % 13) as f64 * 0.5,
            };
            Value::pair(Value::from(key), Value::from(i as f64))
        })
        .collect();
    let str_keys: Vec<Value> = (0..300)
        .map(|i| Value::pair(Value::from(format!("k{}", i % 11)), Value::from(i as f64)))
        .collect();

    for (what, rows) in [("i64", i64_keys), ("f64", f64_keys), ("str", str_keys)] {
        // Split across blocks so the kernels exercise multi-part gathers.
        let mains = [MainSlot::from_blocks(vec![
            block_from_vec(rows[..100].to_vec()),
            block_from_vec(rows[100..250].to_vec()),
            block_from_vec(rows[250..].to_vec()),
        ])];
        for b in mains[0].parts() {
            assert!(b.columns().is_some(), "{what}: input must be columnar");
        }
        for op in ["G", "CK", "CG"] {
            let input = pado_dag::TaskInput::new(&mains, None);
            let fast = apply_op(&dag, op_named(op), input).unwrap();
            let slow = apply_op_rows(&dag, op_named(op), input).unwrap();
            assert_eq!(
                encode_batch(&fast).unwrap(),
                encode_batch(&slow).unwrap(),
                "{what}/{op}: kernel diverged from row oracle"
            );
        }
    }
}

/// Mistyped records through grouping operators fail with a readable
/// error instead of being silently dropped (the pre-fix behavior).
#[test]
fn non_pair_records_error_instead_of_vanishing() {
    use pado_core::exec::apply_op;

    let p = Pipeline::new();
    let src = p.read("Src", 1, SourceFn::from_vec(Vec::new()));
    src.group_by_key("G").sink("O1");
    src.combine_per_key("CK", CombineFn::sum_i64()).sink("O2");
    let dag = p.build().unwrap();
    let op_named = |name: &str| {
        dag.op_ids()
            .find(|&id| dag.op(id).name == name)
            .expect("op exists")
    };

    let mains = [MainSlot::from_vec(vec![
        Value::pair(Value::from(1i64), Value::from(2i64)),
        Value::from(42i64), // not a pair
    ])];
    for (op, what) in [("G", "GroupByKey"), ("CK", "keyed Combine")] {
        let input = pado_dag::TaskInput::new(&mains, None);
        let err = apply_op(&dag, op_named(op), input).expect_err("must fail");
        assert!(
            err.reason().contains(what) && err.reason().contains("42"),
            "{op}: unreadable error: {err}"
        );
    }
}

#[test]
fn cluster_outputs_match_cloning_reference_plane() {
    for (name, dag) in shapes() {
        let plan = compile(&dag).unwrap();
        let expected = encode(&run_reference(&dag, &plan));
        let result = LocalCluster::new(2, 2)
            .with_config(config())
            .run(&dag)
            .unwrap_or_else(|e| panic!("{name}: cluster run failed: {e}"));
        assert_eq!(
            encode(&result.outputs),
            expected,
            "{name}: block data plane diverged from cloning reference"
        );
        pado_core::runtime::assert_clean(&result.journal, true);
    }
}

/// Chaos runs — evictions, reserved failures, master restarts, injected
/// UDF faults — must still land byte-for-byte on the reference answer.
#[test]
fn chaos_outputs_match_cloning_reference_plane() {
    for (name, dag) in shapes() {
        let plan = compile(&dag).unwrap();
        let expected = encode(&run_reference(&dag, &plan));
        for seed in 0..8u64 {
            let faults = FaultPlan {
                evictions: vec![(2 + (seed as usize % 3), seed as usize % 2)],
                reserved_failures: if seed % 3 == 0 { vec![(4, 0)] } else { vec![] },
                master_failure_after: (seed % 4 == 1).then_some(3),
                chaos: Some(ChaosPlan {
                    seed,
                    error_prob: 0.15,
                    panic_prob: 0.10,
                    oom_prob: 0.0,
                    delay_prob: 0.15,
                    delay_ms: 5,
                    max_faults_per_task: 2,
                }),
                budget_shrinks: Vec::new(),
                first_attempt_delays: Vec::new(),
                first_attempt_done_delays: Vec::new(),
                network: None,
                reconfigs: Vec::new(),
                spill_faults: None,
                crashes: None,
            };
            let result = LocalCluster::new(2, 2)
                .with_config(config())
                .run_with_faults(&dag, faults)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: chaos run failed: {e}"));
            assert_eq!(
                encode(&result.outputs),
                expected,
                "{name} seed {seed}: chaos run diverged from reference"
            );
            pado_core::runtime::assert_clean(&result.journal, true);
        }
    }
}
