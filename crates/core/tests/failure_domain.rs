//! Task-failure domain tests: UDF fault isolation, bounded retries,
//! executor blacklisting, speculative execution, and master-restart
//! recovery (§3.2.5–§3.2.6 plus the runtime's failure model).

use pado_core::compiler::compile;
use pado_core::runtime::master::JobEvent;
use pado_core::runtime::{ChaosPlan, FaultPlan, LocalCluster, RuntimeConfig};
use pado_core::RuntimeError;
use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, UdfError, Value};

fn ints(n: i64) -> Vec<Value> {
    (0..n).map(Value::from).collect()
}

fn wordcount_dag(partitions: usize) -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        partitions,
        SourceFn::from_vec(vec![
            Value::from("a b a"),
            Value::from("c a"),
            Value::from("b"),
            Value::from("a c c"),
        ]),
    )
    .par_do(
        "Map",
        ParDoFn::per_element(|line, emit| {
            for w in line.as_str().unwrap_or("").split_whitespace() {
                emit(Value::pair(Value::from(w), Value::from(1i64)));
            }
        }),
    )
    .combine_per_key("Reduce", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn fast_config() -> RuntimeConfig {
    RuntimeConfig {
        tick_ms: 5,
        event_timeout_ms: 10_000,
        ..Default::default()
    }
}

/// A deterministically-failing UDF consumes exactly `max_task_attempts`
/// attempts and fails the job with `RuntimeError::TaskFailed` — no hang,
/// no crashed worker thread, full event log attached.
#[test]
fn deterministic_udf_error_exhausts_retry_budget() {
    let p = Pipeline::new();
    p.read("Read", 2, SourceFn::from_vec(ints(4)))
        .par_do(
            "Boom",
            ParDoFn::try_per_element(|_, _| Err(UdfError::new("boom"))),
        )
        .sink("Out");
    let dag = p.build().unwrap();
    let config = RuntimeConfig {
        max_task_attempts: 3,
        // High threshold: this test isolates the retry budget.
        executor_fault_threshold: 100,
        ..fast_config()
    };
    let err = LocalCluster::new(2, 1)
        .with_config(config)
        .run(&dag)
        .unwrap_err();
    let RuntimeError::TaskFailed {
        fop,
        index,
        attempts,
        reason,
        events,
    } = err
    else {
        panic!("expected TaskFailed, got {err:?}");
    };
    assert_eq!(attempts, 3, "budget is total attempts, first included");
    assert!(reason.contains("boom"), "UDF error surfaced: {reason}");
    let failures = events
        .iter()
        .filter(
            |e| matches!(e, JobEvent::TaskFailed { fop: f, index: i, .. } if *f == fop && *i == index),
        )
        .count();
    assert_eq!(failures, 3, "one TaskFailed event per consumed attempt");
}

/// A deterministically-panicking UDF takes the same path: the panic is
/// caught, the worker slot survives to run retries, and the job fails
/// terminally with the panic payload as the reason.
#[test]
fn deterministic_udf_panic_is_isolated_and_bounded() {
    let p = Pipeline::new();
    p.read("Read", 2, SourceFn::from_vec(ints(4)))
        .par_do(
            "Panic",
            ParDoFn::per_element(|_, _| panic!("task exploded")),
        )
        .sink("Out");
    let dag = p.build().unwrap();
    let config = RuntimeConfig {
        max_task_attempts: 2,
        executor_fault_threshold: 100,
        ..fast_config()
    };
    let err = LocalCluster::new(1, 1)
        .with_config(config)
        .run(&dag)
        .unwrap_err();
    let RuntimeError::TaskFailed {
        attempts, reason, ..
    } = err
    else {
        panic!("expected TaskFailed, got {err:?}");
    };
    assert_eq!(attempts, 2);
    assert!(reason.contains("task exploded"), "payload kept: {reason}");
}

/// Repeated user-code failures on one executor blacklist it: a
/// replacement takes over, the job still completes correctly, and the
/// failure-domain metrics record what happened.
#[test]
fn faulty_executor_is_blacklisted_and_replaced() {
    let dag = wordcount_dag(4);
    let config = RuntimeConfig {
        max_task_attempts: 4,
        executor_fault_threshold: 2,
        ..fast_config()
    };
    let faults = FaultPlan {
        chaos: Some(ChaosPlan {
            seed: 7,
            error_prob: 1.0,
            panic_prob: 0.0,
            oom_prob: 0.0,
            delay_prob: 0.0,
            delay_ms: 0,
            max_faults_per_task: 2,
        }),
        ..Default::default()
    };
    let result = LocalCluster::new(1, 1)
        .with_config(config)
        .run_with_faults(&dag, faults)
        .unwrap();
    assert!(
        result.metrics.blacklisted_executors >= 1,
        "two failures on the sole transient executor must blacklist it"
    );
    assert!(result.metrics.task_failures >= 2);
    pado_core::runtime::assert_clean(&result.journal, true);
    let events = result.journal.to_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, JobEvent::ExecutorBlacklisted(_))));
    // Every blacklisting provisions a replacement container.
    let blacklists = events
        .iter()
        .filter(|e| matches!(e, JobEvent::ExecutorBlacklisted(_)))
        .count();
    let additions = events
        .iter()
        .filter(|e| matches!(e, JobEvent::ContainerAdded(_)))
        .count();
    assert!(additions >= blacklists);
    // The job is still correct.
    let count_a = result.outputs["Out"]
        .iter()
        .find(|r| r.key().and_then(|k| k.as_str()) == Some("a"))
        .and_then(|r| r.val().and_then(|v| v.as_i64()));
    assert_eq!(count_a, Some(4));
}

/// A straggling first attempt gets a speculative duplicate on another
/// executor; the duplicate commits first (speculation win) and the job
/// result is unaffected.
#[test]
fn straggler_gets_speculative_duplicate_that_wins() {
    let p = Pipeline::new();
    let read = p.read("Read", 6, SourceFn::from_vec(ints(30)));
    read.par_do(
        "Key",
        ParDoFn::per_element(|v, e| {
            e(Value::pair(Value::from(v.as_i64().unwrap() % 3), v.clone()))
        }),
    )
    .combine_per_key("Sum", CombineFn::sum_i64())
    .sink("Out");
    let read_op = read.op_id();
    let dag = p.build().unwrap();
    let plan = compile(&dag).unwrap();
    let source_fop = plan
        .fops
        .iter()
        .find(|f| f.chain.contains(&read_op))
        .expect("source fop")
        .id;
    let config = RuntimeConfig {
        speculation: true,
        speculation_multiplier: 2.0,
        speculation_floor_ms: 40,
        speculation_min_samples: 3,
        ..fast_config()
    };
    // Stall one source task's first attempt far past the median of its
    // five fast siblings.
    let faults = FaultPlan {
        first_attempt_delays: vec![(source_fop, 0, 500)],
        ..Default::default()
    };
    let result = LocalCluster::new(2, 2)
        .with_config(config)
        .run_with_faults(&dag, faults)
        .unwrap();
    assert!(
        result.metrics.speculative_launches >= 1,
        "straggler must be speculated: {:?}",
        result.metrics
    );
    assert!(
        result.metrics.speculative_wins >= 1,
        "the duplicate beats a 500 ms stall: {:?}",
        result.metrics
    );
    assert!(result
        .journal
        .to_events()
        .iter()
        .any(|e| matches!(e, JobEvent::SpeculativeLaunched { .. })));
    pado_core::runtime::assert_clean(&result.journal, true);
    assert_eq!(
        result.metrics.tasks_launched,
        result.metrics.original_tasks
            + result.metrics.relaunched_tasks
            + result.metrics.speculative_launches,
        "speculative launches are neither originals nor relaunches"
    );
    let total: i64 = result.outputs["Out"]
        .iter()
        .map(|r| r.val().unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(total, (0..30).sum::<i64>());
}

/// Commit-once: a second `TaskCommitted` for the same task is legal only
/// after an intervening `TaskReverted` (its output was lost).
fn assert_no_double_commit(events: &[JobEvent]) {
    use std::collections::HashMap;
    let mut committed: HashMap<(usize, usize), bool> = HashMap::new();
    for e in events {
        match e {
            JobEvent::TaskCommitted { fop, index, .. } => {
                let slot = committed.entry((*fop, *index)).or_insert(false);
                assert!(!*slot, "double commit of task {fop}.{index}");
                *slot = true;
            }
            JobEvent::TaskReverted { fop, index } => {
                committed.insert((*fop, *index), false);
            }
            _ => {}
        }
    }
}

/// A task whose computation finishes but whose `TaskDone` report stalls
/// (`DelayDone`) while its executor is evicted: the stale report arrives
/// from a dead container and must be discarded, the task relaunches, and
/// the output is unchanged. This pins the evict-vs-commit race end to
/// end at the transport boundary.
#[test]
fn delayed_done_report_from_evicted_executor_is_discarded() {
    let dag = wordcount_dag(4);
    let plan = compile(&dag).unwrap();
    let source_fop = plan
        .fops
        .iter()
        .find(|f| plan.in_edges(f.id).is_empty())
        .expect("source fop")
        .id;
    let config = RuntimeConfig {
        speculation: false,
        ..fast_config()
    };
    let baseline = LocalCluster::new(1, 1)
        .with_config(config.clone())
        .run(&dag)
        .unwrap();
    // Task 0 computes, then sits on its Done report for 300 ms; after one
    // other completion the sole transient container (running it) is
    // evicted, so the report outlives its executor.
    let faults = FaultPlan {
        first_attempt_done_delays: vec![(source_fop, 0, 300)],
        evictions: vec![(1, 0)],
        ..Default::default()
    };
    let result = LocalCluster::new(1, 1)
        .with_config(config)
        .run_with_faults(&dag, faults)
        .unwrap();
    assert_eq!(
        result.outputs["Out"], baseline.outputs["Out"],
        "stale Done report leaked into the result"
    );
    assert_eq!(result.metrics.evictions, 1);
    assert!(
        result.metrics.relaunched_tasks >= 1,
        "the stalled task must relaunch after its executor died: {:?}",
        result.metrics
    );
    assert_eq!(
        result.metrics.task_failures, 0,
        "a delayed report is not a user-code failure"
    );
    assert_no_double_commit(&result.journal.to_events());
    pado_core::runtime::assert_clean(&result.journal, true);
}

/// Master restart (satellite of §3.2.6): the replacement master resumes
/// from the snapshot, never relaunches a commit that survived recovery,
/// and the outputs match the fault-free run.
#[test]
fn master_restart_recovers_without_relaunching_committed_tasks() {
    let p = Pipeline::new();
    p.read("Read", 4, SourceFn::from_vec(ints(16)))
        .par_do(
            "Key",
            ParDoFn::per_element(|v, e| {
                e(Value::pair(Value::from(v.as_i64().unwrap() % 2), v.clone()))
            }),
        )
        .group_by_key("Group")
        .par_do("Post", ParDoFn::per_element(|v, e| e(v.clone())))
        .sink("Out");
    let dag = p.build().unwrap();
    let config = RuntimeConfig {
        snapshot_every: 1,
        ..fast_config()
    };
    let baseline = LocalCluster::new(2, 2)
        .with_config(config.clone())
        .run(&dag)
        .unwrap();
    let faults = FaultPlan {
        master_failure_after: Some(6),
        ..Default::default()
    };
    let result = LocalCluster::new(2, 2)
        .with_config(config)
        .run_with_faults(&dag, faults)
        .unwrap();

    pado_core::runtime::assert_clean(&result.journal, true);
    let events = result.journal.to_events();
    let events = &events;
    let rec_idx = events
        .iter()
        .position(|e| matches!(e, JobEvent::MasterRecovered))
        .expect("recovery logged");

    // Tasks committed before the crash and not rolled back by recovery
    // must never launch again.
    let committed_before: Vec<(usize, usize)> = events[..rec_idx]
        .iter()
        .filter_map(|e| match e {
            JobEvent::TaskCommitted { fop, index, .. } => Some((*fop, *index)),
            _ => None,
        })
        .collect();
    let reverted_after: Vec<(usize, usize)> = events[rec_idx..]
        .iter()
        .filter_map(|e| match e {
            JobEvent::TaskReverted { fop, index } => Some((*fop, *index)),
            _ => None,
        })
        .collect();
    for e in &events[rec_idx..] {
        if let JobEvent::TaskLaunched { fop, index, .. } = e {
            let t = (*fop, *index);
            assert!(
                !committed_before.contains(&t) || reverted_after.contains(&t),
                "surviving commit {t:?} relaunched after recovery"
            );
        }
    }
    assert_no_double_commit(events);

    // Recovery is invisible in the result.
    let sort = |r: &Vec<Value>| {
        let mut v = r.clone();
        v.sort();
        v
    };
    assert_eq!(sort(&result.outputs["Out"]), sort(&baseline.outputs["Out"]));
}

/// The wedge path surfaces `RuntimeError::Wedged` with the partial event
/// log and metrics (and its message keeps the historical "aborted" text).
#[test]
fn wedged_job_reports_partial_events_and_metrics() {
    let p = Pipeline::new();
    // Transient work with zero transient executors: never schedulable.
    p.read("Read", 2, SourceFn::from_vec(ints(4)))
        .combine_per_key("Agg", CombineFn::sum_i64());
    let dag = p.build().unwrap();
    let config = RuntimeConfig {
        event_timeout_ms: 150,
        tick_ms: 5,
        // Keep the prepare window below the (deliberately tiny) wedge
        // timeout, as validation requires.
        reconfig_prepare_timeout_ms: 100,
        ..Default::default()
    };
    let err = LocalCluster::new(0, 1)
        .with_config(config)
        .run(&dag)
        .unwrap_err();
    let RuntimeError::Wedged {
        waited_ms,
        metrics,
        events: _,
    } = err.clone()
    else {
        panic!("expected Wedged, got {err:?}");
    };
    assert!(waited_ms >= 150);
    assert_eq!(metrics.tasks_launched, 0, "nothing ever launched");
    assert!(err.to_string().contains("aborted"), "{err}");
}
