//! Allocation proofs for the block data plane, via the global `Value`
//! clone counter: routing and pushing N records costs zero record clones
//! on one-to-one, gather, and broadcast edges, zero on a hash shuffle of
//! a columnar block (the vectorized kernel copies primitives), exactly N
//! on a hash shuffle of a heterogeneous row block, and an end-to-end
//! broadcast job stays O(records) instead of O(records × consumers).
//!
//! The counter is process-global and the test harness runs tests on
//! threads, so every counting test serializes on one mutex and measures
//! deltas only while holding it.

use std::sync::Mutex;

use pado_core::exec::route;
use pado_core::runtime::{LocalCluster, RuntimeConfig};
use pado_dag::value::clone_count;
use pado_dag::{block_from_vec, DepType, ParDoFn, Pipeline, SourceFn, TaskInput, Value};

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn route_clones_zero_records_on_sharing_edges_and_n_on_shuffle() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let n = 10_000usize;
    // Plain I64 records: one counter tick per record clone, no recursion.
    let block = block_from_vec((0..n as i64).map(Value::from).collect());

    let before = clone_count();
    let one_to_one = route(&block, DepType::OneToOne, 3, 8);
    let broadcast = route(&block, DepType::OneToMany, 0, 8);
    let gather = route(&block, DepType::ManyToOne, 5, 4);
    assert_eq!(
        clone_count() - before,
        0,
        "narrow and broadcast edges must share blocks, not clone records"
    );
    assert_eq!(one_to_one[3].len(), n);
    assert_eq!(broadcast.iter().map(|b| b.len()).sum::<usize>(), 8 * n);
    assert_eq!(gather[1].len(), n);

    // Columnar shuffle: the vectorized kernel buckets by copying column
    // primitives, never cloning a Value.
    let before = clone_count();
    let shuffled = route(&block, DepType::ManyToMany, 0, 8);
    assert_eq!(
        clone_count() - before,
        0,
        "a columnar hash shuffle must not clone records"
    );
    assert_eq!(shuffled.iter().map(|b| b.len()).sum::<usize>(), n);
}

#[test]
fn heterogeneous_shuffle_falls_back_to_one_clone_per_record() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let n = 1_000usize;
    // A Unit sentinel defeats column analysis, forcing the row path.
    let mut records: Vec<Value> = (0..n as i64 - 1).map(Value::from).collect();
    records.push(Value::Unit);
    let block = block_from_vec(records);
    assert!(block.columns().is_none(), "block must be heterogeneous");

    let before = clone_count();
    let shuffled = route(&block, DepType::ManyToMany, 0, 8);
    assert_eq!(
        clone_count() - before,
        n as u64,
        "the row shuffle clones each record exactly once"
    );
    assert_eq!(shuffled.iter().map(|b| b.len()).sum::<usize>(), n);
}

/// End-to-end: broadcasting N records to P consumer tasks — through the
/// master's location table, side-input packaging, executor cache, and
/// per-completion progress snapshots — must cost far fewer than N record
/// clones in total. The pre-refactor plane deep-cloned the broadcast per
/// consumer task (≥ N×P clones).
#[test]
fn broadcast_job_clones_far_fewer_records_than_the_dataset() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let n = 10_000i64;
    let consumers = 8usize;

    let p = Pipeline::new();
    let bcast = p.read(
        "Bcast",
        1,
        SourceFn::new(move |_, _| (0..n).map(Value::from).collect()),
    );
    let data = p.read(
        "Data",
        consumers,
        SourceFn::new(|i, _| vec![Value::from(i as i64)]),
    );
    data.par_do_with_side(
        "Scan",
        &bcast,
        ParDoFn::new(|input: TaskInput<'_>, emit| {
            let sum: i64 = input
                .side
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .sum();
            for v in input.main() {
                emit(Value::from(v.as_i64().unwrap() + sum));
            }
        }),
    )
    .sink("Out");
    let dag = p.build().unwrap();

    let config = RuntimeConfig {
        slots_per_executor: 2,
        snapshot_every: 1, // Snapshot after every completion: must be O(refs).
        ..Default::default()
    };
    let before = clone_count();
    let result = LocalCluster::new(2, 2)
        .with_config(config)
        .run(&dag)
        .expect("broadcast job");
    let delta = clone_count() - before;

    assert_eq!(result.outputs["Out"].len(), consumers);
    let budget = (n as u64) / 10;
    assert!(
        delta < budget,
        "broadcast job cloned {delta} records; budget {budget} \
         (the cloning plane needed at least {})",
        n as u64 * consumers as u64
    );
}
