//! Seeded chaos harness: randomized fault plans (evictions, reserved
//! failures, master restarts) combined with probabilistic UDF faults and
//! delays, each seed checked against a fault-free baseline.
//!
//! Invariants enforced per seed:
//! - outputs byte-identical to the fault-free run (codec-encoded),
//! - per-task failures stay under the retry budget,
//! - no double-commits (a second `TaskCommitted` needs an intervening
//!   `TaskReverted`),
//! - `task_failures` in metrics equals the event log,
//! - launch counts bounded by faults actually injected/simulated.

use std::collections::HashMap;

use pado_core::runtime::{ChaosPlan, FaultPlan, JobEvent, JobResult, LocalCluster, RuntimeConfig};
use pado_dag::codec::encode_batch;
use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, TaskInput, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 110;
const MAX_TASK_ATTEMPTS: usize = 3;
/// Strictly below the retry budget so chaos alone can never exhaust a
/// task's attempts: every seeded job must complete.
const MAX_FAULTS_PER_TASK: usize = 2;

fn ints(n: i64) -> Vec<Value> {
    (0..n).map(Value::from).collect()
}

fn wordcount_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        4,
        SourceFn::from_vec(vec![
            Value::from("pado harnesses transient resources"),
            Value::from("transient containers come and go"),
            Value::from("reserved containers hold the line"),
            Value::from("pado retries pado recovers"),
        ]),
    )
    .par_do(
        "Split",
        ParDoFn::per_element(|line, emit| {
            for w in line.as_str().unwrap_or("").split_whitespace() {
                emit(Value::pair(Value::from(w), Value::from(1i64)));
            }
        }),
    )
    .combine_per_key("Count", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn side_input_dag() -> LogicalDag {
    let p = Pipeline::new();
    let bcast = p.read("Bcast", 3, SourceFn::from_vec(ints(9)));
    let data = p.read("Data", 2, SourceFn::from_vec(ints(6)));
    data.par_do_with_side(
        "AddSide",
        &bcast,
        ParDoFn::new(|input: TaskInput<'_>, emit| {
            let side_sum: i64 = input
                .side
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .sum();
            for v in input.main() {
                emit(Value::from(v.as_i64().unwrap() + side_sum));
            }
        }),
    )
    .aggregate("Total", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn chaos_config() -> RuntimeConfig {
    RuntimeConfig {
        slots_per_executor: 2,
        event_timeout_ms: 10_000,
        snapshot_every: 2,
        max_task_attempts: MAX_TASK_ATTEMPTS,
        executor_fault_threshold: 2,
        speculation_floor_ms: 50,
        tick_ms: 5,
        ..Default::default()
    }
}

/// Encode every output collection; byte equality here is the strongest
/// form of "faults did not change the answer".
fn encode_outputs(result: &JobResult) -> Vec<(String, Vec<u8>)> {
    result
        .outputs
        .iter()
        .map(|(name, records)| (name.clone(), encode_batch(records).expect("encodes")))
        .collect()
}

fn random_fault_plan(rng: &mut StdRng, seed: u64) -> FaultPlan {
    let evictions = (0..rng.gen_range(0..3usize))
        .map(|_| (rng.gen_range(1..10usize), rng.gen_range(0..3usize)))
        .collect();
    let reserved_failures = (0..rng.gen_range(0..2usize))
        .map(|_| (rng.gen_range(2..10usize), 0))
        .collect();
    let master_failure_after = if rng.gen_bool(0.2) {
        Some(rng.gen_range(3..8usize))
    } else {
        None
    };
    FaultPlan {
        evictions,
        reserved_failures,
        master_failure_after,
        chaos: Some(ChaosPlan {
            seed,
            error_prob: 0.15,
            panic_prob: 0.10,
            oom_prob: 0.0,
            delay_prob: 0.20,
            delay_ms: 8,
            max_faults_per_task: MAX_FAULTS_PER_TASK,
        }),
        budget_shrinks: Vec::new(),
        first_attempt_delays: Vec::new(),
        first_attempt_done_delays: Vec::new(),
        network: None,
        reconfigs: Vec::new(),
        spill_faults: None,
        crashes: None,
    }
}

fn check_invariants(seed: u64, result: &JobResult, faults: &FaultPlan) {
    // Every seeded run must replay cleanly through the generic
    // invariant checker before the harness-specific checks below.
    pado_core::runtime::assert_clean(&result.journal, true);

    // The metrics surfaced on the result must be exactly what the
    // journal derives (modulo the four wire-level counters the journal
    // cannot see, which we copy over before comparing).
    let mut derived = result.journal.derive_metrics();
    derived.messages_dropped = result.metrics.messages_dropped;
    derived.messages_duplicated = result.metrics.messages_duplicated;
    derived.messages_deduplicated = result.metrics.messages_deduplicated;
    derived.max_message_retransmissions = result.metrics.max_message_retransmissions;
    assert_eq!(
        derived, result.metrics,
        "seed {seed}: journal-derived metrics drifted from reported metrics"
    );

    let events = result.journal.to_events();
    let events = &events;

    // Retry budget: chaos injection is capped below the budget, so no
    // task may ever reach `max_task_attempts` user-code failures.
    let mut failures: HashMap<(usize, usize), usize> = HashMap::new();
    for e in events {
        if let JobEvent::TaskFailed { fop, index, .. } = e {
            *failures.entry((*fop, *index)).or_default() += 1;
        }
    }
    for (task, n) in &failures {
        assert!(
            *n < MAX_TASK_ATTEMPTS,
            "seed {seed}: task {task:?} burned {n} attempts (budget {MAX_TASK_ATTEMPTS})"
        );
    }
    // The journal survives master restarts (unlike the old snapshot
    // counters), so the failure metric always equals the event count.
    let total_failures: usize = failures.values().sum();
    assert_eq!(
        result.metrics.task_failures, total_failures,
        "seed {seed}: metric and event log disagree on failures"
    );

    // Commit-once: a re-commit requires an intervening revert.
    let mut committed: HashMap<(usize, usize), bool> = HashMap::new();
    for e in events {
        match e {
            JobEvent::TaskCommitted { fop, index, .. } => {
                let slot = committed.entry((*fop, *index)).or_insert(false);
                assert!(!*slot, "seed {seed}: double commit of task {fop}.{index}");
                *slot = true;
            }
            JobEvent::TaskReverted { fop, index } => {
                committed.insert((*fop, *index), false);
            }
            _ => {}
        }
    }

    // Launch counts are bounded by actual fault activity. Container
    // losses and master recoveries can silently drop a running attempt
    // (Running -> Pending without a revert event), so they bound the
    // slack globally.
    let container_losses = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                JobEvent::ContainerEvicted(_) | JobEvent::ReservedFailed(_)
            )
        })
        .count();
    let recoveries = events
        .iter()
        .filter(|e| matches!(e, JobEvent::MasterRecovered))
        .count();
    let mut launches: HashMap<(usize, usize), usize> = HashMap::new();
    let mut reverts: HashMap<(usize, usize), usize> = HashMap::new();
    let mut speculations: HashMap<(usize, usize), usize> = HashMap::new();
    for e in events {
        match e {
            JobEvent::TaskLaunched { fop, index, .. } => {
                *launches.entry((*fop, *index)).or_default() += 1;
            }
            JobEvent::TaskReverted { fop, index } => {
                *reverts.entry((*fop, *index)).or_default() += 1;
            }
            JobEvent::SpeculativeLaunched { fop, index, .. } => {
                *speculations.entry((*fop, *index)).or_default() += 1;
            }
            _ => {}
        }
    }
    for (task, n) in &launches {
        let bound = 1
            + failures.get(task).copied().unwrap_or(0)
            + reverts.get(task).copied().unwrap_or(0)
            + speculations.get(task).copied().unwrap_or(0)
            + container_losses
            + recoveries;
        assert!(
            *n <= bound,
            "seed {seed}: task {task:?} launched {n} times, bound {bound}"
        );
    }

    // Without a master restart the ledger balances exactly. (A restart
    // restores `first_attempted` from an older snapshot, so relaunches
    // can be re-counted as originals.)
    if faults.master_failure_after.is_none() {
        assert_eq!(
            result.metrics.tasks_launched,
            result.metrics.original_tasks
                + result.metrics.relaunched_tasks
                + result.metrics.speculative_launches,
            "seed {seed}: launch ledger out of balance: {:?}",
            result.metrics
        );
    }
}

#[test]
fn hundred_seeds_of_chaos_preserve_outputs() {
    let shapes: Vec<(&str, LogicalDag)> = vec![
        ("wordcount", wordcount_dag()),
        ("side_input", side_input_dag()),
    ];
    let baselines: Vec<Vec<(String, Vec<u8>)>> = shapes
        .iter()
        .map(|(name, dag)| {
            let r = LocalCluster::new(2, 2)
                .with_config(chaos_config())
                .run(dag)
                .unwrap_or_else(|e| panic!("fault-free baseline {name} failed: {e}"));
            encode_outputs(&r)
        })
        .collect();

    for seed in 0..SEEDS {
        let shape = (seed % shapes.len() as u64) as usize;
        let (name, dag) = &shapes[shape];
        let mut rng = StdRng::seed_from_u64(seed);
        let n_transient = rng.gen_range(1..4usize);
        let n_reserved = rng.gen_range(1..3usize);
        let faults = random_fault_plan(&mut rng, seed);
        let result = LocalCluster::new(n_transient, n_reserved)
            .with_config(chaos_config())
            .run_with_faults(dag, faults.clone())
            .unwrap_or_else(|e| panic!("seed {seed} ({name}, {faults:?}) failed: {e}"));
        assert_eq!(
            encode_outputs(&result),
            baselines[shape],
            "seed {seed} ({name}): outputs diverged from fault-free baseline"
        );
        check_invariants(seed, &result, &faults);
    }
}
