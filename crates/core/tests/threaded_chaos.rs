//! Chaos on real threads: every fault family the sim backend is chaos-
//! tested under also runs on the true-parallel [`ThreadedBackend`], and
//! on the *same seed* the two backends must agree — byte-identical sink
//! outputs, clean journals through the full invariant checker (laws
//! 1–11, including the abort-quiescence law), and zero drift across the
//! deterministic metrics counters.
//!
//! This works because every fault draw routes through the causally-keyed
//! [`FaultInjector`](pado_core::runtime::FaultInjector): decisions key
//! off backend-invariant identifiers (task identity + launch ordinal,
//! transmission ordinal, spill ordinal, handled-frame count), never off
//! loop iteration order or thread interleaving.
//!
//! Seed counts are reduced versus the sim-only matrices (the threaded
//! backend runs real threads per seed); the sim matrices keep the wide
//! coverage, this suite pins cross-backend agreement per family.
//!
//! The final test deliberately wedges the worker pool and asserts the
//! hang watchdog converts the would-be deadlock into a structured
//! [`RuntimeError::Stalled`] with populated diagnostics — and that the
//! master thread is joined, not leaked.

use std::fs;
use std::time::Duration;

use pado_core::compiler::Placement;
use pado_core::runtime::{
    assert_clean, temp_wal_path, BackendKind, ChaosPlan, CrashPlan, DirectionFaults, FaultPlan,
    JobResult, LocalCluster, NetworkFault, ReconfigChange, ReconfigTrigger, RuntimeConfig,
    ScheduledReconfig, ThreadedBackend,
};
use pado_core::RuntimeError;
use pado_dag::codec::encode_batch;
use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeds per family — reduced versus the 110-seed sim matrices.
const SEEDS: u64 = 10;
const MAX_TASK_ATTEMPTS: usize = 3;
/// Strictly below the retry budget so chaos alone can never exhaust a
/// task's attempts: every seeded job must complete on both backends.
const MAX_FAULTS_PER_TASK: usize = 2;

fn wordcount_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        4,
        SourceFn::from_vec(vec![
            Value::from("pado harnesses transient resources"),
            Value::from("transient containers come and go"),
            Value::from("reserved containers hold the line"),
            Value::from("pado retries pado recovers"),
        ]),
    )
    .par_do(
        "Split",
        ParDoFn::per_element(|line, emit| {
            for w in line.as_str().unwrap_or("").split_whitespace() {
                emit(Value::pair(Value::from(w), Value::from(1i64)));
            }
        }),
    )
    .combine_per_key("Count", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        slots_per_executor: 2,
        event_timeout_ms: 10_000,
        snapshot_every: 2,
        max_task_attempts: MAX_TASK_ATTEMPTS,
        executor_fault_threshold: 2,
        speculation_floor_ms: 50,
        tick_ms: 5,
        threaded_workers: 4,
        ..Default::default()
    }
}

fn encode_outputs(result: &JobResult) -> Vec<(String, Vec<u8>)> {
    result
        .outputs
        .iter()
        .map(|(name, records)| (name.clone(), encode_batch(records).expect("encodes")))
        .collect()
}

fn run_on(
    backend: BackendKind,
    dag: &LogicalDag,
    config: RuntimeConfig,
    faults: FaultPlan,
) -> JobResult {
    LocalCluster::new(2, 2)
        .with_backend(backend)
        .with_config(config)
        .run_with_faults(dag, faults)
        .expect("seeded job completes")
}

/// The cross-backend contract, per seed: clean journals on both sides,
/// byte-identical outputs, zero deterministic-counter drift.
fn assert_backends_agree(family: &str, seed: u64, sim: &JobResult, threaded: &JobResult) {
    assert_clean(&sim.journal, true);
    assert_clean(&threaded.journal, true);
    assert_eq!(
        encode_outputs(sim),
        encode_outputs(threaded),
        "{family} seed {seed}: backend changed the output bytes"
    );
    let drift = sim.metrics.backend_drift(&threaded.metrics);
    assert!(
        drift.is_empty(),
        "{family} seed {seed}: deterministic counters drifted \
         (counter, sim, threaded): {drift:?}"
    );
}

fn chaos_plan(seed: u64) -> ChaosPlan {
    ChaosPlan {
        seed,
        error_prob: 0.15,
        panic_prob: 0.10,
        oom_prob: 0.0,
        delay_prob: 0.15,
        delay_ms: 4,
        max_faults_per_task: MAX_FAULTS_PER_TASK,
    }
}

/// Family 1: the core failure domain — probabilistic UDF chaos
/// (errors, panics, stalls) on even seeds, container evictions and
/// reserved failures on odd seeds. The two are tested *separately*, not
/// layered: chaos draws key off a task's launch ordinal, and a
/// count-based eviction changes launch counts at a point whose position
/// relative to in-flight launches is timing-dependent on real threads —
/// layering them would re-key the chaos schedule mid-run and let
/// `task_failures` drift by one (same root cause as the wire family's
/// chaos exclusion below).
#[test]
fn eviction_and_failure_family_agrees_across_backends() {
    let dag = wordcount_dag();
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = if seed % 2 == 0 {
            FaultPlan {
                chaos: Some(chaos_plan(seed)),
                ..Default::default()
            }
        } else {
            let evictions = (0..rng.gen_range(1..3usize))
                .map(|_| (rng.gen_range(1..10usize), rng.gen_range(0..2usize)))
                .collect::<Vec<_>>();
            let reserved_failures = if rng.gen_bool(0.3) {
                vec![(rng.gen_range(2..10usize), 0)]
            } else {
                Vec::new()
            };
            FaultPlan {
                evictions,
                reserved_failures,
                ..Default::default()
            }
        };
        let sim = run_on(BackendKind::Sim, &dag, config(), faults.clone());
        let threaded = run_on(BackendKind::Threaded, &dag, config(), faults);
        assert_backends_agree("eviction", seed, &sim, &threaded);
    }
}

/// Family 2: lossy wire — drops, duplicates, reorders, and delays on
/// both directions of the control plane. The at-least-once transport
/// must mask all of it identically on both backends.
#[test]
fn network_family_agrees_across_backends() {
    let dag = wordcount_dag();
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E45_54FA);
        let dir = |rng: &mut StdRng| DirectionFaults {
            drop_prob: rng.gen_range(0.0..0.12),
            dup_prob: rng.gen_range(0.0..0.08),
            reorder_prob: rng.gen_range(0.0..0.08),
            delay_prob: rng.gen_range(0.0..0.12),
            delay_ms: rng.gen_range(1..8u64),
        };
        let faults = FaultPlan {
            network: Some(NetworkFault {
                seed: seed ^ 0x4E45_54FA,
                to_executor: dir(&mut rng),
                to_master: dir(&mut rng),
                // No timed partitions: their windows are clock-relative,
                // which is exactly the kind of non-causal trigger this
                // suite exists to exclude.
                partitions: Vec::new(),
            }),
            // No UDF chaos overlay here: which frame lands on a given
            // transmission ordinal is timing-dependent, so a retransmit
            // storm can shift a task's launch count by one across
            // backends — and with it the chaos draw schedule. The wire
            // family tests the wire alone: the transport must mask every
            // injected wire fault with zero task failures on both sides.
            ..Default::default()
        };
        let sim = run_on(BackendKind::Sim, &dag, config(), faults.clone());
        let threaded = run_on(BackendKind::Threaded, &dag, config(), faults);
        assert_backends_agree("network", seed, &sim, &threaded);
    }
}

/// Family 3: memory pressure — a finite store budget, chaos budget
/// shrinks mid-run, and injected allocation failures. Spill/defer
/// schedules may differ across backends (they follow real occupancy
/// order); the answer and the deterministic counters may not.
#[test]
fn memory_pressure_family_agrees_across_backends() {
    let dag = wordcount_dag();
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5349_4C4C);
        let budget = 4096usize;
        let mem_config = RuntimeConfig {
            executor_memory_bytes: budget,
            cache_capacity_bytes: budget / 4,
            ..config()
        };
        let budget_shrinks = if rng.gen_bool(0.5) {
            vec![(rng.gen_range(2..6usize), 0, budget * 3 / 4)]
        } else {
            Vec::new()
        };
        let faults = FaultPlan {
            budget_shrinks,
            chaos: Some(ChaosPlan {
                oom_prob: 0.12,
                ..chaos_plan(seed)
            }),
            ..Default::default()
        };
        let sim = run_on(BackendKind::Sim, &dag, mem_config.clone(), faults.clone());
        let threaded = run_on(BackendKind::Threaded, &dag, mem_config, faults);
        assert_backends_agree("memory", seed, &sim, &threaded);
    }
}

/// Family 4: live reconfiguration — epoch-fenced placement changes
/// triggered by the (backend-invariant) progress clock, layered over
/// UDF chaos. Epochs, commit/abort resolutions, and outputs must agree.
#[test]
fn reconfig_family_agrees_across_backends() {
    let dag = wordcount_dag();
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7EC0_4F16);
        let change = if rng.gen_bool(0.5) {
            ReconfigChange::MigrateStage {
                stage: 0,
                to: if rng.gen_bool(0.5) {
                    Placement::Reserved
                } else {
                    Placement::Transient
                },
            }
        } else {
            ReconfigChange::DrainTransient { nth: 0 }
        };
        let faults = FaultPlan {
            reconfigs: vec![ScheduledReconfig {
                after_done_events: rng.gen_range(1..6usize),
                plan: change.into(),
                trigger: ReconfigTrigger::Chaos,
            }],
            chaos: rng.gen_bool(0.5).then(|| chaos_plan(seed)),
            ..Default::default()
        };
        let sim = run_on(BackendKind::Sim, &dag, config(), faults.clone());
        let threaded = run_on(BackendKind::Threaded, &dag, config(), faults);
        assert_backends_agree("reconfig", seed, &sim, &threaded);
    }
}

/// Family 5: master crashes + WAL recovery. The trigger is the
/// handled-frame progress clock (`after_handled_frames`) — the one
/// crash trigger whose firing count is backend-invariant (the
/// `every_kth_append` clock counts racing WAL appends and is documented
/// as non-portable). Each backend run recovers through its own WAL file.
#[test]
fn crash_recovery_family_agrees_across_backends() {
    let dag = wordcount_dag();
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x632a_5b01);
        let plan = CrashPlan {
            seed: seed ^ 0x632a_5b01,
            after_handled_frames: Some(rng.gen_range(3..12u64)),
            max_crashes: rng.gen_range(1..3usize),
            ..Default::default()
        };
        let run = |kind: BackendKind, tag: &str| {
            let wal = temp_wal_path(&format!("threaded-chaos-{tag}-{seed}"));
            let wal_config = RuntimeConfig {
                wal_path: Some(wal.to_string_lossy().into_owned()),
                wal_sync_every: 1,
                ..config()
            };
            let faults = FaultPlan {
                crashes: Some(plan),
                ..Default::default()
            };
            let result = run_on(kind, &dag, wal_config, faults);
            fs::remove_file(&wal).ok();
            result
        };
        let sim = run(BackendKind::Sim, "sim");
        let threaded = run(BackendKind::Threaded, "thr");
        assert_backends_agree("crash", seed, &sim, &threaded);
        assert!(
            sim.metrics.wal_recoveries > 0,
            "crash seed {seed}: the trigger never fired — the family is vacuous"
        );
    }
}

/// The fail-well contract: a deliberately wedged worker pool must not
/// hang the suite or leak the master thread. The hang watchdog observes
/// the no-progress window, cancels the run, and `drive` surfaces a
/// structured [`RuntimeError::Stalled`] whose diagnostics describe the
/// wedge (busy workers, jobs in flight, last journal events).
#[test]
fn wedged_pool_produces_stalled_with_populated_diagnostics() {
    let config = RuntimeConfig {
        tick_ms: 5,
        // The stall window (4 × 50 ms) must undercut both timeouts so
        // the watchdog wins the race against Wedged and the wall clock.
        event_timeout_ms: 20_000,
        threaded_wallclock_timeout_ms: 30_000,
        stall_watchdog: true,
        stall_sample_interval_ms: 50,
        stall_samples: 4,
        cancel_grace_ms: 2_000,
        threaded_workers: 2,
        ..RuntimeConfig::default()
    };
    let backend = ThreadedBackend::from_config(&config);
    let pool = backend.worker_pool();
    let cancel = pool.cancel_token();
    // Wedge every worker with a job that only yields to cancellation —
    // the cooperative analogue of a deadlocked task body.
    for _ in 0..2 {
        let c = cancel.clone();
        pool.submit(Box::new(move || {
            while !c.is_cancelled() {
                std::thread::sleep(Duration::from_millis(5));
            }
        }));
    }

    let dag = wordcount_dag();
    let err = LocalCluster::new(2, 2)
        .with_backend(BackendKind::Threaded)
        .with_config(config)
        .run_on_backend(&dag, FaultPlan::default(), &backend)
        .expect_err("a wedged pool cannot complete the job");

    match err {
        RuntimeError::Stalled { diagnostics: d } => {
            assert!(!d.reason.is_empty(), "diagnostics carry a reason");
            assert!(d.waited_ms > 0, "diagnostics carry the stall window");
            assert!(d.pool_in_flight > 0, "the wedged jobs are visible: {d}");
            assert_eq!(d.workers.len(), 2, "one state per worker: {d}");
            assert!(
                d.workers.iter().any(|w| w.busy),
                "the wedged workers sample as busy: {d}"
            );
            assert!(
                d.master_joined,
                "the master thread must be joined, not leaked: {d}"
            );
        }
        other => panic!("expected RuntimeError::Stalled, got {other:?}"),
    }
}

/// After a watchdog abort the journal must still satisfy law 11: the
/// abort marker is followed by a pool quiescence and no worker ever
/// detaches. (The frozen journal inside `JobResult` is unreachable on
/// the error path, so this drives the same wedge and inspects the live
/// journal through the backend's pool — the same handle the invariant
/// checker sees in the sim suites.)
#[test]
fn watchdog_abort_quiesces_the_pool_and_cancels_cooperatively() {
    let config = RuntimeConfig {
        tick_ms: 5,
        event_timeout_ms: 20_000,
        threaded_wallclock_timeout_ms: 30_000,
        stall_watchdog: true,
        stall_sample_interval_ms: 50,
        stall_samples: 4,
        cancel_grace_ms: 2_000,
        threaded_workers: 2,
        ..RuntimeConfig::default()
    };
    let backend = ThreadedBackend::from_config(&config);
    let pool = backend.worker_pool();
    let cancel = pool.cancel_token();
    for _ in 0..2 {
        let c = cancel.clone();
        pool.submit(Box::new(move || {
            while !c.is_cancelled() {
                std::thread::sleep(Duration::from_millis(5));
            }
        }));
    }
    let dag = wordcount_dag();
    let err = LocalCluster::new(2, 2)
        .with_backend(BackendKind::Threaded)
        .with_config(config)
        .run_on_backend(&dag, FaultPlan::default(), &backend)
        .expect_err("a wedged pool cannot complete the job");
    assert!(matches!(err, RuntimeError::Stalled { .. }), "got {err:?}");
    // Cancellation propagated: the token is sticky and the blockers
    // observed it (the pool drained to zero within the grace window).
    assert!(cancel.is_cancelled(), "the watchdog cancelled the token");
    assert!(
        pool.wait_quiesce(Duration::from_secs(5)),
        "the wedged jobs exited once cancelled; in flight: {}",
        pool.in_flight()
    );
}
