//! Property tests of the byte-accounted executor store: for arbitrary
//! seeded sequences of admit / pin / unpin / release / cache-put /
//! budget-shrink operations,
//!
//! - combined occupancy (blocks + cache) never exceeds the store's
//!   (possibly clamped) budget,
//! - every block read back — including blocks that round-tripped
//!   through the disk spill tier — is byte-identical to what was
//!   admitted,
//! - pinned blocks are never spilled,
//! - refusals are always clean `StoreError`s, never panics or silent
//!   corruption.

use std::collections::HashMap;

use pado_core::runtime::journal::Journal;
use pado_core::runtime::{BlockRef, ExecutorStore, StoreError};
use pado_dag::codec::encode_batch;
use pado_dag::{block_from_vec, Block, Value};
use proptest::prelude::*;

/// A dataset of `n` distinct I64 records (delta-friendly, so encoded
/// sizes stay small but distinct per `n`).
fn dataset(salt: usize, n: usize) -> Block {
    block_from_vec(
        (0..n)
            .map(|i| Value::from((salt * 1_000 + i) as i64))
            .collect(),
    )
}

#[derive(Debug, Clone)]
enum Op {
    /// Admit block `key` with `n` records (push / preserved output).
    Admit { key: usize, n: usize },
    /// Producer-local admit: straight to disk when memory is full.
    AdmitOrSpill { key: usize, n: usize },
    /// Pin block `key` with `n` records (admission control).
    Pin { key: usize, n: usize },
    /// Drop one pin of block `key`.
    Unpin { key: usize },
    /// Release block `key` if unpinned (invalidation).
    Release { key: usize },
    /// Read block `key` back (reloads from disk if spilled).
    Get { key: usize },
    /// Best-effort cache insert under the same budget.
    CachePut { key: usize, n: usize },
    /// Shrink (or grow) the budget.
    SetBudget { bytes: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = 0..8usize;
    let n = 1..12usize;
    prop_oneof![
        (key.clone(), n.clone()).prop_map(|(key, n)| Op::Admit { key, n }),
        (key.clone(), n.clone()).prop_map(|(key, n)| Op::AdmitOrSpill { key, n }),
        (key.clone(), n.clone()).prop_map(|(key, n)| Op::Pin { key, n }),
        key.clone().prop_map(|key| Op::Unpin { key }),
        key.clone().prop_map(|key| Op::Release { key }),
        key.clone().prop_map(|key| Op::Get { key }),
        (key, n).prop_map(|(key, n)| Op::CachePut { key, n }),
        (16..160usize).prop_map(|bytes| Op::SetBudget { bytes }),
    ]
}

fn blk(key: usize) -> BlockRef {
    BlockRef::Output { fop: key, index: 0 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary operation sequences keep combined occupancy within the
    /// budget at every step, round-trip every surviving block
    /// byte-identically through the spill tier, and never spill a
    /// pinned block.
    #[test]
    fn occupancy_never_exceeds_budget(
        budget in 32..128usize,
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut store = ExecutorStore::new(1, budget, budget / 2, Journal::new());
        // What each admitted block must read back as, while it lives.
        let mut model: HashMap<usize, Block> = HashMap::new();
        let mut pins: HashMap<usize, usize> = HashMap::new();

        for op in &ops {
            match op {
                Op::Admit { key, n } => {
                    let data = dataset(*key, *n);
                    match store.admit(blk(*key), &data) {
                        Ok(()) => {
                            model.entry(*key).or_insert(data);
                        }
                        Err(StoreError::NoHeadroom { .. } | StoreError::TooLarge { .. }) => {}
                        Err(e) => prop_assert!(false, "admit failed hard: {e}"),
                    }
                }
                Op::AdmitOrSpill { key, n } => {
                    let data = dataset(*key, *n);
                    match store.admit_or_spill(blk(*key), &data) {
                        Ok(()) => {
                            model.entry(*key).or_insert(data);
                        }
                        Err(StoreError::TooLarge { .. }) => {}
                        Err(e) => prop_assert!(false, "admit_or_spill failed hard: {e}"),
                    }
                }
                Op::Pin { key, n } => {
                    let data = dataset(*key, *n);
                    match store.pin(blk(*key), &data) {
                        Ok(()) => {
                            model.entry(*key).or_insert(data);
                            *pins.entry(*key).or_insert(0) += 1;
                        }
                        Err(StoreError::NoHeadroom { .. } | StoreError::TooLarge { .. }) => {}
                        Err(e) => prop_assert!(false, "pin failed hard: {e}"),
                    }
                }
                Op::Unpin { key } => {
                    store.unpin(blk(*key));
                    if let Some(c) = pins.get_mut(key) {
                        *c = c.saturating_sub(1);
                        if *c == 0 {
                            pins.remove(key);
                        }
                    }
                }
                Op::Release { key } => {
                    if store.remove_unpinned(blk(*key)) {
                        prop_assert!(
                            pins.get(key).copied().unwrap_or(0) == 0,
                            "released block {key} while pinned"
                        );
                        model.remove(key);
                    }
                }
                Op::Get { key } => match store.get(blk(*key)) {
                    Ok(Some(back)) => {
                        if let Some(expected) = model.get(key) {
                            prop_assert_eq!(
                                encode_batch(&back).expect("encodes"),
                                encode_batch(expected).expect("encodes"),
                                "block {} corrupted through the store",
                                key
                            );
                        }
                    }
                    Ok(None) => {}
                    // Pinned siblings can block the reload's headroom.
                    Err(StoreError::NoHeadroom { .. }) => {}
                    Err(e) => prop_assert!(false, "get({key}) failed hard: {e}"),
                },
                Op::CachePut { key, n } => {
                    store.cache_put(*key, dataset(100 + key, *n));
                }
                Op::SetBudget { bytes } => {
                    let applied = store.set_budget(*bytes);
                    prop_assert!(
                        applied >= *bytes || applied >= store.occupancy(),
                        "applied budget {applied} below request {bytes} and occupancy"
                    );
                }
            }
            // The core law, checked after every single operation.
            prop_assert!(
                store.occupancy() <= store.budget(),
                "occupancy {} exceeded budget {} after {op:?}",
                store.occupancy(),
                store.budget()
            );
        }

        // Every surviving block reads back exactly as admitted, whether
        // it stayed resident or round-tripped through a spill file.
        // Reads need reload headroom, so drop all pins first.
        for (key, count) in pins.drain() {
            for _ in 0..count {
                store.unpin(blk(key));
            }
        }
        for (key, expected) in &model {
            if !store.contains(blk(*key)) {
                continue;
            }
            match store.get(blk(*key)) {
                Ok(Some(back)) => prop_assert_eq!(
                    encode_batch(&back).expect("encodes"),
                    encode_batch(expected).expect("encodes"),
                    "block {} corrupted through the store",
                    key
                ),
                Ok(None) => prop_assert!(false, "store claims block {key} but returns nothing"),
                // A shrunk budget can be smaller than a spilled block;
                // its reload then refuses cleanly rather than overflow.
                Err(StoreError::NoHeadroom { .. }) => {}
                Err(e) => prop_assert!(false, "get({key}) failed hard: {e}"),
            }
        }
    }
}
