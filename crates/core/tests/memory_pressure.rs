//! Memory-pressure chaos suite: tight executor store budgets crossed
//! with evictions, reserved failures, injected allocation failures (the
//! OOM fault family), chaos budget shrinks, and lossy networks.
//!
//! Invariants enforced per seed:
//! - outputs byte-identical to an *unbounded* baseline run — spilling,
//!   reloading, deferred pushes, and OOM retries must be invisible in
//!   the answer,
//! - the journal replays cleanly (occupancy ≤ budget on every store
//!   event, pinned blocks never spilled, spilled blocks reloaded before
//!   reuse, OOM'd attempts never commit),
//! - reported metrics equal journal-derived metrics,
//! - peak store occupancy stays within the configured budget,
//! - unbounded runs emit zero spill / defer / OOM events.
//!
//! Master restarts are excluded: this suite isolates the memory domain
//! (the network-chaos suite already crosses restarts with everything
//! else).
//!
//! Budgets are chosen as fractions of the measured working set with a
//! floor at the largest concurrently-pinned byte load a fault-free run
//! ever held on one executor — below that floor a task's inputs cannot
//! be pinned at all and the job would (correctly, but uninterestingly)
//! fail with `MemoryExceeded`.

use std::collections::HashMap;

use pado_core::runtime::message::ExecId;
use pado_core::runtime::{
    BlockRef, ChaosPlan, DirectionFaults, EventJournal, FaultPlan, JobEvent, JobResult,
    LocalCluster, NetworkFault, RuntimeConfig,
};
use pado_dag::codec::encode_batch;
use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, TaskInput, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 110;
const MAX_TASK_ATTEMPTS: usize = 3;
/// Strictly below the retry budget so chaos (UDF errors + OOM combined)
/// can never exhaust a task's attempts: every seeded job must complete.
const MAX_FAULTS_PER_TASK: usize = 2;

fn ints(n: i64) -> Vec<Value> {
    (0..n).map(Value::from).collect()
}

/// A shuffle-heavy shape: wide read, keyed combine (ManyToMany routing,
/// so consumers pin routed buckets, not whole outputs).
fn shuffle_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read("Read", 4, SourceFn::from_vec(ints(64)))
        .par_do(
            "Key",
            ParDoFn::per_element(|v, emit| {
                let x = v.as_i64().unwrap();
                emit(Value::pair(Value::from(x % 7), Value::from(x)));
            }),
        )
        .combine_per_key("Sum", CombineFn::sum_i64())
        .sink("Out");
    p.build().unwrap()
}

/// A broadcast shape: a side input pinned by every consumer task plus a
/// main path, stressing the cache tier inside the shared budget.
fn side_input_dag() -> LogicalDag {
    let p = Pipeline::new();
    let bcast = p.read("Bcast", 3, SourceFn::from_vec(ints(9)));
    let data = p.read("Data", 2, SourceFn::from_vec(ints(6)));
    data.par_do_with_side(
        "AddSide",
        &bcast,
        ParDoFn::new(|input: TaskInput<'_>, emit| {
            let side_sum: i64 = input
                .side
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .sum();
            for v in input.main() {
                emit(Value::from(v.as_i64().unwrap() + side_sum));
            }
        }),
    )
    .aggregate("Total", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

/// Two independent branches that share one reserved executor: branch A's
/// combine can be stalled mid-attempt (holding its input pins) while
/// branch B's producers are still pushing — the window where push
/// backpressure (`PushDeferred` / `PushResumed`) fires.
fn two_branch_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read("FastRead", 2, SourceFn::from_vec(ints(64)))
        .par_do(
            "KeyA",
            ParDoFn::per_element(|v, emit| {
                let x = v.as_i64().unwrap();
                emit(Value::pair(Value::from(x % 31), Value::from(x)));
            }),
        )
        .combine_per_key("SlowSum", CombineFn::sum_i64())
        .sink("OutA");
    p.read("SlowRead", 2, SourceFn::from_vec(ints(64)))
        .par_do(
            "KeyB",
            ParDoFn::per_element(|v, emit| {
                let x = v.as_i64().unwrap();
                emit(Value::pair(Value::from(x % 31), Value::from(x * 7)));
            }),
        )
        .combine_per_key("SumB", CombineFn::sum_i64())
        .sink("OutB");
    p.build().unwrap()
}

/// Fop id + parallelism of the (first) fop whose fused chain contains
/// the named logical operator.
fn fop_named(dag: &LogicalDag, name: &str) -> (usize, usize) {
    let plan = pado_core::compiler::compile(dag).expect("plan compiles");
    plan.fops
        .iter()
        .find(|f| f.chain.iter().any(|&op| dag.op(op).name == name))
        .map(|f| (f.id, f.parallelism))
        .unwrap_or_else(|| panic!("no fop contains operator {name}"))
}

fn config(budget: usize) -> RuntimeConfig {
    RuntimeConfig {
        slots_per_executor: 2,
        event_timeout_ms: 10_000,
        snapshot_every: 2,
        max_task_attempts: MAX_TASK_ATTEMPTS,
        executor_fault_threshold: 2,
        speculation_floor_ms: 50,
        tick_ms: 5,
        executor_memory_bytes: budget,
        // The cache tier lives inside the same budget; keep its
        // sub-bound under the store budget so validate() accepts tight
        // configurations.
        cache_capacity_bytes: (budget / 4).clamp(1, 64 << 20),
        ..Default::default()
    }
}

fn encode_outputs(result: &JobResult) -> Vec<(String, Vec<u8>)> {
    result
        .outputs
        .iter()
        .map(|(name, records)| (name.clone(), encode_batch(records).expect("encodes")))
        .collect()
}

/// The largest byte load any one executor ever held in *pinned* blocks
/// during a run: the hard floor below which some task's inputs can no
/// longer be pinned and admission control must refuse the job.
fn pinned_floor(journal: &EventJournal) -> usize {
    let mut sizes: HashMap<(ExecId, BlockRef), usize> = HashMap::new();
    let mut pins: HashMap<(ExecId, BlockRef), usize> = HashMap::new();
    let mut held: HashMap<ExecId, usize> = HashMap::new();
    let mut floor = 0;
    for e in journal.events() {
        match e {
            JobEvent::BlockAdmitted {
                exec, block, bytes, ..
            }
            | JobEvent::BlockLoaded {
                exec, block, bytes, ..
            } => {
                sizes.insert((*exec, *block), *bytes);
            }
            JobEvent::BlockPinned { exec, block } => {
                let n = pins.entry((*exec, *block)).or_insert(0);
                *n += 1;
                if *n == 1 {
                    let h = held.entry(*exec).or_insert(0);
                    *h += sizes.get(&(*exec, *block)).copied().unwrap_or(0);
                    floor = floor.max(*h);
                }
            }
            JobEvent::BlockUnpinned { exec, block } => {
                if let Some(n) = pins.get_mut(&(*exec, *block)) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        pins.remove(&(*exec, *block));
                        if let Some(h) = held.get_mut(exec) {
                            *h -= sizes.get(&(*exec, *block)).copied().unwrap_or(0);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    floor
}

/// Seeded network dimension, same shape as the network-chaos suite but
/// milder (memory pressure, not the wire, is the protagonist here).
fn random_network(rng: &mut StdRng, seed: u64) -> NetworkFault {
    let dir = |rng: &mut StdRng| DirectionFaults {
        drop_prob: rng.gen_range(0.0..0.10),
        dup_prob: rng.gen_range(0.0..0.08),
        reorder_prob: rng.gen_range(0.0..0.08),
        delay_prob: rng.gen_range(0.0..0.10),
        delay_ms: rng.gen_range(1..8u64),
    };
    NetworkFault {
        seed: seed ^ 0x4D45_4DFA,
        to_executor: dir(rng),
        to_master: dir(rng),
        partitions: Vec::new(),
    }
}

fn random_fault_plan(rng: &mut StdRng, seed: u64, floor: usize, budget: usize) -> FaultPlan {
    let evictions = (0..rng.gen_range(0..3usize))
        .map(|_| (rng.gen_range(1..10usize), rng.gen_range(0..3usize)))
        .collect();
    let reserved_failures = if rng.gen_bool(0.3) {
        vec![(rng.gen_range(2..10usize), 0)]
    } else {
        Vec::new()
    };
    // Chaos shrinks squeeze a reserved executor mid-run but never below
    // the pinned floor, so the job still completes (the store clamps the
    // applied budget up to its unspillable occupancy regardless).
    let budget_shrinks = if rng.gen_bool(0.35) {
        vec![(
            rng.gen_range(2..6usize),
            0,
            floor.max(budget.saturating_mul(3) / 4),
        )]
    } else {
        Vec::new()
    };
    FaultPlan {
        evictions,
        reserved_failures,
        master_failure_after: None,
        chaos: Some(ChaosPlan {
            seed,
            error_prob: 0.10,
            panic_prob: 0.05,
            oom_prob: 0.12,
            delay_prob: 0.10,
            delay_ms: 5,
            max_faults_per_task: MAX_FAULTS_PER_TASK,
        }),
        budget_shrinks,
        first_attempt_delays: Vec::new(),
        first_attempt_done_delays: Vec::new(),
        network: rng.gen_bool(0.4).then(|| random_network(rng, seed)),
        reconfigs: Vec::new(),
        spill_faults: None,
        crashes: None,
    }
}

fn count<F: Fn(&JobEvent) -> bool>(journal: &EventJournal, pred: F) -> usize {
    journal.events().filter(|e| pred(e)).count()
}

fn check_seed(seed: u64, result: &JobResult, budget: usize) {
    pado_core::runtime::assert_clean(&result.journal, true);

    // Reported metrics must be exactly what the journal derives (modulo
    // the four wire-level counters the journal cannot see).
    let mut derived = result.journal.derive_metrics();
    derived.messages_dropped = result.metrics.messages_dropped;
    derived.messages_duplicated = result.metrics.messages_duplicated;
    derived.messages_deduplicated = result.metrics.messages_deduplicated;
    derived.max_message_retransmissions = result.metrics.max_message_retransmissions;
    assert_eq!(
        derived, result.metrics,
        "seed {seed}: journal-derived metrics drifted from reported metrics"
    );

    // Self-reported occupancy never exceeded the configured budget (the
    // invariant checker verifies this per event and per shrunk budget;
    // the metric is the cheap summary).
    assert!(
        result.metrics.peak_store_bytes <= budget,
        "seed {seed}: peak store occupancy {} exceeds the {} B budget",
        result.metrics.peak_store_bytes,
        budget
    );

    // Every spill pairs with a reload or a release: blocks do not rot on
    // disk past job end unless their executor died (checker handles the
    // per-event laws; here we sanity-check the counters agree with the
    // event stream).
    assert_eq!(
        result.metrics.blocks_spilled,
        count(&result.journal, |e| matches!(
            e,
            JobEvent::BlockSpilled { .. }
        )),
        "seed {seed}: spill counter drifted"
    );
    assert_eq!(
        result.metrics.oom_injected,
        count(&result.journal, |e| matches!(
            e,
            JobEvent::OomInjected { .. }
        )),
        "seed {seed}: OOM counter drifted"
    );
}

/// Deterministic push-backpressure exercise: with the reserved store
/// sized to the pinned floor plus a sliver, a stalled combine holds its
/// pins while the other branch's producers commit — their pushes cannot
/// be admitted even after spilling everything unpinned, so the master
/// must defer them, retry with backoff, and resume once the pins drop.
/// The answer must still be byte-identical to an unbounded run.
#[test]
fn tight_reserved_store_defers_and_resumes_pushes() {
    let dag = two_branch_dag();
    let (slow_fop, slow_par) = fop_named(&dag, "SlowSum");
    let (keyb_fop, keyb_par) = fop_named(&dag, "KeyB");

    let baseline = LocalCluster::new(1, 1)
        .with_config(config(usize::MAX))
        .run(&dag)
        .expect("unbounded baseline");
    let probe = LocalCluster::new(1, 1)
        .with_config(config(1 << 20))
        .run(&dag)
        .expect("probe run");
    let floor = pinned_floor(&probe.journal);
    assert!(floor > 0, "probe run pinned nothing");
    let biggest = probe
        .journal
        .events()
        .filter_map(|e| match e {
            JobEvent::BlockAdmitted { bytes, .. } => Some(*bytes),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    // Half the unconstrained concurrent pin load: admission control must
    // serialize the combines' pins, and while the stalled ones are held
    // a whole pushed output can no longer fit — but any single block
    // still can, so nothing dies with `MemoryExceeded`.
    let budget = (floor / 2).max(biggest + 64);

    // Stall every SlowSum attempt long enough that KeyB's commits (held
    // back a short moment so branch A's combine is running by then)
    // land squarely inside the pinned window.
    let faults = FaultPlan {
        first_attempt_delays: (0..slow_par)
            .map(|i| (slow_fop, i, 250u64))
            .chain((0..keyb_par).map(|i| (keyb_fop, i, 60u64)))
            .collect(),
        ..Default::default()
    };
    let result = LocalCluster::new(1, 1)
        .with_config(config(budget))
        .run_with_faults(&dag, faults)
        .unwrap_or_else(|e| panic!("backpressure run (budget {budget} B) failed: {e}"));

    assert_eq!(
        encode_outputs(&result),
        encode_outputs(&baseline),
        "backpressure run diverged from unbounded baseline"
    );
    check_seed(u64::MAX, &result, budget);
    assert!(
        result.metrics.pushes_deferred > 0,
        "a {budget} B reserved store never deferred a push: {:?}",
        result.metrics
    );
    assert!(
        result.metrics.pushes_resumed > 0,
        "deferred pushes were never resumed: {:?}",
        result.metrics
    );
    assert!(
        result.metrics.pushes_deferred >= result.metrics.pushes_resumed,
        "more resumes than deferrals: {:?}",
        result.metrics
    );
    println!(
        "backpressure: budget {budget} B (floor {floor} B), {} deferred, {} resumed, \
         {} spills, {} reloads",
        result.metrics.pushes_deferred,
        result.metrics.pushes_resumed,
        result.metrics.blocks_spilled,
        result.metrics.blocks_loaded
    );
}

#[test]
fn memory_pressure_matrix_preserves_outputs() {
    let shapes: Vec<(&str, LogicalDag)> =
        vec![("shuffle", shuffle_dag()), ("side_input", side_input_dag())];

    // Unbounded baselines: the answer every budgeted run must reproduce,
    // and proof that an unlimited store is metrically invisible.
    let mut baselines = Vec::new();
    let mut floors = Vec::new();
    let mut peaks = Vec::new();
    for (name, dag) in &shapes {
        let unbounded = LocalCluster::new(2, 2)
            .with_config(config(usize::MAX))
            .run(dag)
            .unwrap_or_else(|e| panic!("unbounded baseline {name} failed: {e}"));
        assert_eq!(
            unbounded.metrics.blocks_spilled
                + unbounded.metrics.pushes_deferred
                + unbounded.metrics.oom_injected,
            0,
            "{name}: unbounded run must emit no memory-pressure events"
        );
        assert_eq!(
            unbounded.metrics.peak_store_bytes, 0,
            "{name}: unlimited stores must not journal occupancy"
        );

        // A roomy-but-limited probe measures the working set (peak
        // occupancy) and the pinned floor without any pressure.
        let probe = LocalCluster::new(2, 2)
            .with_config(config(1 << 20))
            .run(dag)
            .unwrap_or_else(|e| panic!("probe run {name} failed: {e}"));
        assert_eq!(
            encode_outputs(&probe),
            encode_outputs(&unbounded),
            "{name}: probe run diverged from unbounded baseline"
        );
        let floor = pinned_floor(&probe.journal);
        let peak = probe.metrics.peak_store_bytes;
        assert!(floor > 0, "{name}: probe run pinned nothing");
        assert!(peak >= floor, "{name}: peak below pinned floor");
        baselines.push(encode_outputs(&unbounded));
        floors.push(floor);
        peaks.push(peak);
    }

    let mut total_spills = 0usize;
    let mut total_loads = 0usize;
    let mut total_deferred = 0usize;
    let mut total_oom = 0usize;
    for seed in 0..SEEDS {
        let shape = (seed % shapes.len() as u64) as usize;
        let (name, dag) = &shapes[shape];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4D45_4D00);
        // Budget: a working-set fraction (1/2, 1/3, 1/4 by seed), never
        // below the pinned floor plus slack for one in-flight reload.
        let frac = 2 + (seed % 3) as usize;
        let budget = (peaks[shape] / frac).max(floors[shape] + 64);
        let n_transient = rng.gen_range(1..4usize);
        let n_reserved = rng.gen_range(1..3usize);
        let faults = random_fault_plan(&mut rng, seed, floors[shape], budget);
        let result = LocalCluster::new(n_transient, n_reserved)
            .with_config(config(budget))
            .run_with_faults(dag, faults.clone())
            .unwrap_or_else(|e| {
                panic!("seed {seed} ({name}, budget {budget} B, {faults:?}) failed: {e}")
            });
        assert_eq!(
            encode_outputs(&result),
            baselines[shape],
            "seed {seed} ({name}, budget {budget} B): outputs diverged from baseline"
        );
        check_seed(seed, &result, budget);
        total_spills += result.metrics.blocks_spilled;
        total_loads += result.metrics.blocks_loaded;
        total_deferred += result.metrics.pushes_deferred;
        total_oom += result.metrics.oom_injected;
    }

    // The matrix as a whole must actually exercise the pressure paths:
    // spills happened, spilled blocks were reloaded, and the OOM fault
    // family fired. (Deferred pushes depend on scheduling races; report
    // but do not require them.)
    assert!(total_spills > 0, "matrix never spilled a block");
    assert!(total_loads > 0, "matrix never reloaded a spilled block");
    assert!(total_oom > 0, "matrix never injected an allocation failure");
    println!(
        "memory-pressure matrix: {total_spills} spills, {total_loads} reloads, \
         {total_deferred} deferred pushes, {total_oom} OOM injections across {SEEDS} seeds"
    );
}
