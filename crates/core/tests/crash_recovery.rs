//! Seeded crash-recovery matrix: the master is killed at handler
//! boundaries / WAL-append counts across 110 seeds, sometimes with
//! seeded bit-flip + truncation corruption of the WAL file itself, and
//! every recovered run is checked against a crash-free baseline.
//!
//! Invariants enforced per seed:
//! - outputs byte-identical to the crash-free run (codec-encoded),
//! - the journal replays cleanly through every invariant law, including
//!   law 10 (a recovered run is a consistent continuation: fenced
//!   pre-crash attempts never report terminally, and every
//!   `WalRecovered` pairs with a `MasterRecovered`),
//! - no double-commits across the crash (a second `TaskCommitted`
//!   needs an intervening `TaskReverted`),
//! - the reported metrics equal what the journal derives, so the
//!   recovery statistics (`wal_recoveries`, frames replayed/truncated,
//!   snapshot restores) are exactly the journal's story,
//! - recoveries never exceed the planned crash budget.

use std::collections::HashMap;
use std::fs;

use pado_core::runtime::{
    temp_wal_path, CrashPlan, FaultPlan, JobEvent, JobResult, LocalCluster, RuntimeConfig,
    WalCorruption,
};
use pado_core::RuntimeError;
use pado_dag::codec::encode_batch;
use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, TaskInput, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 110;

fn ints(n: i64) -> Vec<Value> {
    (0..n).map(Value::from).collect()
}

fn wordcount_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        4,
        SourceFn::from_vec(vec![
            Value::from("pado harnesses transient resources"),
            Value::from("transient containers come and go"),
            Value::from("reserved containers hold the line"),
            Value::from("pado retries pado recovers"),
        ]),
    )
    .par_do(
        "Split",
        ParDoFn::per_element(|line, emit| {
            for w in line.as_str().unwrap_or("").split_whitespace() {
                emit(Value::pair(Value::from(w), Value::from(1i64)));
            }
        }),
    )
    .combine_per_key("Count", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn side_input_dag() -> LogicalDag {
    let p = Pipeline::new();
    let bcast = p.read("Bcast", 3, SourceFn::from_vec(ints(9)));
    let data = p.read("Data", 2, SourceFn::from_vec(ints(6)));
    data.par_do_with_side(
        "AddSide",
        &bcast,
        ParDoFn::new(|input: TaskInput<'_>, emit| {
            let side_sum: i64 = input
                .side
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .sum();
            for v in input.main() {
                emit(Value::from(v.as_i64().unwrap() + side_sum));
            }
        }),
    )
    .aggregate("Total", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn crash_config(
    wal_path: Option<String>,
    sync_every: usize,
    snapshot_every: usize,
) -> RuntimeConfig {
    RuntimeConfig {
        slots_per_executor: 2,
        event_timeout_ms: 10_000,
        snapshot_every: 2,
        max_task_attempts: 3,
        executor_fault_threshold: 2,
        speculation_floor_ms: 50,
        tick_ms: 5,
        wal_path,
        wal_sync_every: sync_every,
        wal_snapshot_every: snapshot_every,
        ..Default::default()
    }
}

/// Encode every output collection; byte equality here is the strongest
/// form of "the crash did not change the answer".
fn encode_outputs(result: &JobResult) -> Vec<(String, Vec<u8>)> {
    result
        .outputs
        .iter()
        .map(|(name, records)| (name.clone(), encode_batch(records).expect("encodes")))
        .collect()
}

/// One randomized crash schedule: a trigger style (fixed handler
/// boundary, every-k-th WAL append, or probabilistic per boundary), a
/// crash budget, and sometimes file corruption between crash and
/// recovery.
fn random_crash_plan(rng: &mut StdRng, seed: u64) -> CrashPlan {
    let mut plan = CrashPlan {
        seed: seed ^ 0x632a_5b01,
        max_crashes: rng.gen_range(1..4usize),
        ..Default::default()
    };
    match rng.gen_range(0..3u32) {
        0 => plan.after_handled_frames = Some(rng.gen_range(1..20u64)),
        1 => plan.every_kth_append = Some(rng.gen_range(5..40u64)),
        _ => plan.handler_prob = 0.08,
    }
    if rng.gen_bool(0.3) {
        plan.corruption = Some(WalCorruption {
            seed: seed ^ 0xc0de,
            bit_flip_prob: 0.0005,
            truncate_prob: 0.3,
        });
    }
    plan
}

fn check_crash_invariants(seed: u64, result: &JobResult, plan: &CrashPlan) {
    // Every recovered run must replay cleanly through the generic
    // invariant checker — law 10 (crash-recovery continuation) included.
    pado_core::runtime::assert_clean(&result.journal, true);

    // The recovery statistics on the result are exactly what the
    // journal derives (modulo the four wire-level counters the journal
    // cannot see).
    let mut derived = result.journal.derive_metrics();
    derived.messages_dropped = result.metrics.messages_dropped;
    derived.messages_duplicated = result.metrics.messages_duplicated;
    derived.messages_deduplicated = result.metrics.messages_deduplicated;
    derived.max_message_retransmissions = result.metrics.max_message_retransmissions;
    assert_eq!(
        derived, result.metrics,
        "seed {seed}: journal-derived metrics drifted from reported metrics"
    );

    let events = result.journal.to_events();

    // Commit-once across the crash: a durable commit must not re-commit
    // after recovery, and a lost commit must revert before relaunching.
    let mut committed: HashMap<(usize, usize), bool> = HashMap::new();
    for e in &events {
        match e {
            JobEvent::TaskCommitted { fop, index, .. } => {
                let slot = committed.entry((*fop, *index)).or_insert(false);
                assert!(
                    !*slot,
                    "seed {seed}: double commit of task {fop}.{index} across the crash"
                );
                *slot = true;
            }
            JobEvent::TaskReverted { fop, index } => {
                committed.insert((*fop, *index), false);
            }
            _ => {}
        }
    }

    // Every WAL recovery pairs with a master recovery, and the injector
    // never exceeds its crash budget.
    let master_recoveries = events
        .iter()
        .filter(|e| matches!(e, JobEvent::MasterRecovered))
        .count();
    assert_eq!(
        result.metrics.wal_recoveries, master_recoveries,
        "seed {seed}: a WAL-armed master must recover through the WAL every time"
    );
    assert!(
        result.metrics.wal_recoveries <= plan.max_crashes,
        "seed {seed}: {} recoveries exceed the crash budget {}",
        result.metrics.wal_recoveries,
        plan.max_crashes
    );
}

/// The 110-seed matrix: randomized crash schedules (three trigger
/// styles), randomized durability knobs, occasional evictions layered on
/// top, and seeded WAL-file corruption on ~30% of seeds.
#[test]
fn crash_matrix_preserves_outputs() {
    let shapes: Vec<(&str, LogicalDag)> = vec![
        ("wordcount", wordcount_dag()),
        ("side_input", side_input_dag()),
    ];
    let baselines: Vec<Vec<(String, Vec<u8>)>> = shapes
        .iter()
        .map(|(name, dag)| {
            let r = LocalCluster::new(2, 2)
                .with_config(crash_config(None, 1, 64))
                .run(dag)
                .unwrap_or_else(|e| panic!("crash-free baseline {name} failed: {e}"));
            encode_outputs(&r)
        })
        .collect();

    for seed in 0..SEEDS {
        let shape = (seed % shapes.len() as u64) as usize;
        let (name, dag) = &shapes[shape];
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
        let n_transient = rng.gen_range(1..4usize);
        let n_reserved = rng.gen_range(1..3usize);
        let sync_every = rng.gen_range(1..4usize);
        let snapshot_every = rng.gen_range(8..64usize);
        let plan = random_crash_plan(&mut rng, seed);
        let evictions = if rng.gen_bool(0.25) {
            vec![(rng.gen_range(1..10usize), rng.gen_range(0..3usize))]
        } else {
            Vec::new()
        };
        let wal = temp_wal_path(&format!("crash-matrix-{seed}"));
        let faults = FaultPlan {
            evictions,
            crashes: Some(plan),
            ..Default::default()
        };
        let result = LocalCluster::new(n_transient, n_reserved)
            .with_config(crash_config(
                Some(wal.to_string_lossy().into_owned()),
                sync_every,
                snapshot_every,
            ))
            .run_with_faults(dag, faults.clone())
            .unwrap_or_else(|e| panic!("seed {seed} ({name}, {plan:?}) failed: {e}"));
        fs::remove_file(&wal).ok();
        assert_eq!(
            encode_outputs(&result),
            baselines[shape],
            "seed {seed} ({name}): outputs diverged from crash-free baseline"
        );
        check_crash_invariants(seed, &result, &plan);
    }
}

/// Exhaustive boundary sweep: kill the master at every single handler
/// boundary of the fixed wordcount job. Recovery must be correct no
/// matter which message the crash lands after.
#[test]
fn every_handler_boundary_recovers() {
    let dag = wordcount_dag();
    let baseline = encode_outputs(
        &LocalCluster::new(2, 2)
            .with_config(crash_config(None, 1, 64))
            .run(&dag)
            .expect("crash-free baseline"),
    );
    let mut recoveries_observed = 0usize;
    for boundary in 1..=32u64 {
        let wal = temp_wal_path(&format!("crash-boundary-{boundary}"));
        let plan = CrashPlan {
            seed: boundary,
            after_handled_frames: Some(boundary),
            max_crashes: 1,
            ..Default::default()
        };
        let result = LocalCluster::new(2, 2)
            .with_config(crash_config(
                Some(wal.to_string_lossy().into_owned()),
                1,
                16,
            ))
            .run_with_faults(
                &dag,
                FaultPlan {
                    crashes: Some(plan),
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("boundary {boundary} failed: {e}"));
        fs::remove_file(&wal).ok();
        assert_eq!(
            encode_outputs(&result),
            baseline,
            "boundary {boundary}: outputs diverged from crash-free baseline"
        );
        check_crash_invariants(boundary, &result, &plan);
        // A short job may complete before a high boundary is reached
        // (the handled-frame count varies with executor timing), but the
        // low boundaries are always hit.
        if boundary <= 6 {
            assert_eq!(
                result.metrics.wal_recoveries, 1,
                "boundary {boundary}: expected exactly one recovery"
            );
        }
        recoveries_observed += result.metrics.wal_recoveries;
    }
    assert!(
        recoveries_observed >= 12,
        "sweep injected only {recoveries_observed} recoveries; the boundary \
         schedule is not exercising the crash path"
    );
}

/// Crash injection without a WAL is a configuration error, not a silent
/// fallback to the weaker snapshot path.
#[test]
fn crashes_without_wal_are_rejected() {
    let dag = wordcount_dag();
    let faults = FaultPlan {
        crashes: Some(CrashPlan {
            after_handled_frames: Some(3),
            max_crashes: 1,
            ..Default::default()
        }),
        ..Default::default()
    };
    match LocalCluster::new(2, 2)
        .with_config(crash_config(None, 1, 64))
        .run_with_faults(&dag, faults)
    {
        Err(RuntimeError::Config(msg)) => {
            assert!(msg.contains("wal_path"), "unexpected message: {msg}");
        }
        other => panic!("expected Config error, got {other:?}"),
    }
}

/// The legacy `master_failure_after` fault routes through WAL recovery
/// when a WAL is armed: the run reports a `WalRecovered` event, not the
/// old snapshot-only restart.
#[test]
fn legacy_master_failure_uses_wal_when_armed() {
    let dag = wordcount_dag();
    let wal = temp_wal_path("crash-legacy-route");
    let result = LocalCluster::new(2, 2)
        .with_config(crash_config(
            Some(wal.to_string_lossy().into_owned()),
            1,
            16,
        ))
        .run_with_faults(
            &dag,
            FaultPlan {
                master_failure_after: Some(3),
                ..Default::default()
            },
        )
        .expect("job completes");
    fs::remove_file(&wal).ok();
    let master_recoveries = result
        .journal
        .to_events()
        .iter()
        .filter(|e| matches!(e, JobEvent::MasterRecovered))
        .count();
    assert_eq!(master_recoveries, 1);
    assert_eq!(
        result.metrics.wal_recoveries, 1,
        "a WAL-armed master must recover by replaying the log"
    );
    pado_core::runtime::assert_clean(&result.journal, true);
}
