//! Regression suite for the seed-keyed [`FaultInjector`]: the refactor
//! that centralized the runtime's fault draws is **decision-preserving**,
//! so every method here is checked bit-for-bit against a verbatim copy
//! of the legacy inline math it replaced. If any of these sweeps fail,
//! a fixed chaos seed no longer replays the fault schedule the seeded
//! suites were written against.
//!
//! Also pinned:
//! - purity / order-independence: a draw depends only on `(seed, domain,
//!   causal ids)` — never on how many draws were made before it or which
//!   backend interleaving asked first (the property that makes a chaos
//!   seed portable across the sim and threaded backends),
//! - same-seed sim runs are bit-stable end to end: byte-identical
//!   outputs and identical deterministic metrics counters.

use pado_core::runtime::{
    ChaosPlan, FaultInjector, FaultPlan, JobResult, LocalCluster, RuntimeConfig, WireSide,
};
use pado_dag::codec::encode_batch;
use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Verbatim copies of the legacy inline fault math (pre-FaultInjector).
// These are the regression anchor: they must never be "simplified" to
// call the injector — that would make the suite vacuous.
// ---------------------------------------------------------------------

/// splitmix64 finalizer as it appeared in `transport.rs` (and was
/// imported by `master.rs` / `store.rs`).
fn legacy_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// MurmurHash3 fmix64 as it appeared privately in `wal.rs`.
fn legacy_fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

fn legacy_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// `Master::decide_injection`'s hash chain: threshold coordinate, delay
/// magnitude, and the pre/post-compute stall coin.
fn legacy_task_chaos(seed: u64, fop: u64, index: u64, ordinal: u64) -> (f64, u64, bool) {
    let mut h = seed;
    for v in [fop, index, ordinal] {
        h = legacy_mix64(h ^ v);
    }
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let delay_ms = 5u64;
    let ms = 1 + legacy_mix64(h) % delay_ms.max(1);
    let pre_compute = legacy_mix64(h ^ 0x0D0E) & 1 == 0;
    (u, ms, pre_compute)
}

/// `NetPolicy::decide`'s hash chain: threshold coordinate plus the
/// reorder-hold and delay-hold magnitudes.
fn legacy_wire(seed: u64, salt: u64, exec: u64, ordinal: u64) -> (f64, u64, u64) {
    let mut h = seed ^ salt;
    for v in [exec, ordinal] {
        h = legacy_mix64(h ^ v);
    }
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let delay_ms = 9u64;
    (u, legacy_mix64(h) % 3, legacy_mix64(h) % delay_ms.max(1))
}

/// `BlockStore::inject_write_fault` / `inject_read_fault` draws.
fn legacy_spill(seed: u64, exec: u64, salt: u64, ordinal: u64) -> f64 {
    legacy_unit(legacy_mix64(seed ^ legacy_mix64(exec ^ salt) ^ ordinal))
}

/// `Master::maybe_crash`'s `unit_draw(plan.seed ^ mix64(handled_frames))`.
fn legacy_crash(seed: u64, handled_frames: u64) -> f64 {
    legacy_unit(legacy_mix64(seed ^ legacy_mix64(handled_frames)))
}

/// `ReliableSender::jitter`'s millisecond draw.
fn legacy_jitter_ms(seed: u64, seq: u64, transmissions: u64, base_ms: u64) -> u64 {
    let h = legacy_mix64(seed ^ legacy_mix64(seq) ^ transmissions);
    h % (base_ms / 2 + 1)
}

/// `wal::inject_corruption`'s three draws: the truncation coin, the cut
/// offset, and the per-byte flip (hash picks the bit via `% 8`).
fn legacy_wal(seed: u64, offset: u64) -> (f64, u64, f64, u64) {
    let truncate_u = legacy_unit(legacy_fmix64(seed ^ 0x7472_756e));
    let cut = legacy_fmix64(seed ^ 0x6375_7421);
    let flip_h = legacy_fmix64(seed ^ 0xb17f ^ (offset << 16));
    (truncate_u, cut, legacy_unit(flip_h), flip_h % 8)
}

// ---------------------------------------------------------------------
// Formula-equivalence sweeps
// ---------------------------------------------------------------------

const SWEEP_SEEDS: [u64; 6] = [0, 1, 42, 0xDEAD_BEEF, u64::MAX, 0x9E37_79B9_7F4A_7C15];

#[test]
fn task_chaos_draws_match_the_legacy_formula() {
    for seed in SWEEP_SEEDS {
        let inj = FaultInjector::new(seed);
        for fop in 0..4u64 {
            for index in 0..6u64 {
                for ordinal in 0..8u64 {
                    let (u, ms, pre) = legacy_task_chaos(seed, fop, index, ordinal);
                    let d = inj.task_launch(fop, index, ordinal);
                    assert_eq!(d.unit(), u, "seed {seed} task {fop}.{index}#{ordinal}");
                    assert_eq!(1 + d.span(5), ms);
                    assert_eq!(d.coin(0x0D0E), pre);
                }
            }
        }
    }
}

#[test]
fn wire_draws_match_the_legacy_formula_per_direction() {
    for seed in SWEEP_SEEDS {
        let inj = FaultInjector::new(seed);
        for (side, salt) in [(WireSide::ToExecutor, 0x7C15), (WireSide::ToMaster, 0x1CE4)] {
            for exec in 0..5u64 {
                for ordinal in 0..32u64 {
                    let (u, hold, delay) = legacy_wire(seed, salt, exec, ordinal);
                    let d = inj.wire(side, exec, ordinal);
                    assert_eq!(d.unit(), u, "seed {seed} {side:?} exec {exec}#{ordinal}");
                    assert_eq!(d.span(3), hold);
                    assert_eq!(d.span(9), delay);
                }
            }
        }
    }
}

#[test]
fn spill_draws_match_the_legacy_formula() {
    for seed in SWEEP_SEEDS {
        let inj = FaultInjector::new(seed);
        for exec in 0..5u64 {
            // The store bumps its ordinal before drawing, so real
            // ordinals start at 1.
            for ordinal in 1..40u64 {
                assert_eq!(
                    inj.spill_write(exec, ordinal).unit(),
                    legacy_spill(seed, exec, 0x57, ordinal),
                    "seed {seed} write exec {exec}#{ordinal}"
                );
                assert_eq!(
                    inj.spill_read(exec, ordinal).unit(),
                    legacy_spill(seed, exec, 0x52, ordinal),
                    "seed {seed} read exec {exec}#{ordinal}"
                );
            }
        }
    }
}

#[test]
fn crash_coin_matches_the_legacy_formula() {
    for seed in SWEEP_SEEDS {
        let inj = FaultInjector::new(seed);
        for handled_frames in 0..200u64 {
            assert_eq!(
                inj.crash_boundary(handled_frames).unit(),
                legacy_crash(seed, handled_frames),
                "seed {seed} frame {handled_frames}"
            );
        }
    }
}

#[test]
fn retransmit_jitter_matches_the_legacy_formula() {
    for seed in SWEEP_SEEDS {
        let inj = FaultInjector::new(seed);
        for base_ms in [1u64, 8, 50] {
            for seq in 0..20u64 {
                for tx in 1..5u64 {
                    assert_eq!(
                        inj.retransmit_jitter(seq, tx).index(base_ms / 2 + 1),
                        legacy_jitter_ms(seed, seq, tx, base_ms),
                        "seed {seed} seq {seq} tx {tx} base {base_ms}"
                    );
                }
            }
        }
    }
}

#[test]
fn wal_corruption_draws_match_the_legacy_formula() {
    for seed in SWEEP_SEEDS {
        let inj = FaultInjector::new(seed);
        for offset in 0..256u64 {
            let (truncate_u, cut, flip_u, bit) = legacy_wal(seed, offset);
            assert_eq!(inj.wal_truncate().unit(), truncate_u, "seed {seed}");
            assert_eq!(inj.wal_truncate_offset().hash(), cut, "seed {seed}");
            let d = inj.wal_bit_flip(offset);
            assert_eq!(d.unit(), flip_u, "seed {seed} offset {offset}");
            assert_eq!(d.index(8), bit, "seed {seed} offset {offset}");
        }
    }
}

// ---------------------------------------------------------------------
// Purity / order-independence properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two independently-constructed injectors (as the two backends
    /// construct them at each decision site) agree on every decision,
    /// whatever order the decisions are asked for — the property that
    /// makes a chaos seed portable across backends.
    #[test]
    fn same_seed_same_causal_ids_same_decision_in_any_order(
        seed in any::<u64>(),
        ids in proptest::collection::vec((0..8u64, 0..8u64, 0..16u64), 1..40),
    ) {
        let a = FaultInjector::new(seed);
        let b = FaultInjector::new(seed);
        let forward: Vec<u64> = ids
            .iter()
            .map(|&(fop, index, ordinal)| a.task_launch(fop, index, ordinal).hash())
            .collect();
        let mut backward: Vec<u64> = ids
            .iter()
            .rev()
            .map(|&(fop, index, ordinal)| b.task_launch(fop, index, ordinal).hash())
            .collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }

    /// Interleaving draws from different domains never perturbs any
    /// single domain's sequence (no hidden state anywhere).
    #[test]
    fn interleaved_domains_do_not_perturb_each_other(
        seed in any::<u64>(),
        exec in 0..6u64,
        n in 1..30u64,
    ) {
        let inj = FaultInjector::new(seed);
        // Sequence drawn alone...
        let alone: Vec<u64> = (0..n).map(|o| inj.spill_write(exec, o).hash()).collect();
        // ...and the same sequence with other domains drawn in between.
        let interleaved: Vec<u64> = (0..n)
            .map(|o| {
                let _ = inj.wire(WireSide::ToMaster, exec, o).unit();
                let _ = inj.crash_boundary(o).unit();
                let _ = inj.wal_bit_flip(o).unit();
                inj.spill_write(exec, o).hash()
            })
            .collect();
        prop_assert_eq!(alone, interleaved);
    }

    /// `unit` always lands in [0, 1) and `index`/`span` respect their
    /// moduli for arbitrary seeds and ids.
    #[test]
    fn draw_taps_stay_in_range(
        seed in any::<u64>(),
        exec in any::<u64>(),
        ordinal in any::<u64>(),
        modulus in 1..1000u64,
    ) {
        let d = FaultInjector::new(seed).wire(WireSide::ToExecutor, exec, ordinal);
        let u = d.unit();
        prop_assert!((0.0..1.0).contains(&u));
        prop_assert!(d.index(modulus) < modulus);
        prop_assert!(d.span(modulus) < modulus);
    }
}

// ---------------------------------------------------------------------
// End-to-end bit-stability on a fixed seed
// ---------------------------------------------------------------------

fn chaos_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        4,
        SourceFn::from_vec((0..64i64).map(Value::from).collect()),
    )
    .par_do(
        "Key",
        ParDoFn::per_element(|v, emit| {
            let x = v.as_i64().unwrap_or(0);
            emit(Value::pair(Value::from(x % 7), Value::from(x)));
        }),
    )
    .combine_per_key("Sum", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn encode_outputs(result: &JobResult) -> Vec<(String, Vec<u8>)> {
    result
        .outputs
        .iter()
        .map(|(name, records)| (name.clone(), encode_batch(records).expect("encodes")))
        .collect()
}

/// Two sim runs on the same seed are bit-stable: same output bytes,
/// zero drift across the deterministic metrics counters. (This held
/// before the refactor, so it doubles as a pre/post behavioral anchor
/// for the whole injection path, not just the formulas.)
#[test]
fn same_seed_sim_runs_are_bit_stable() {
    let dag = chaos_dag();
    let config = RuntimeConfig {
        tick_ms: 5,
        event_timeout_ms: 10_000,
        max_task_attempts: 3,
        ..Default::default()
    };
    for seed in [3u64, 17, 0xFEED] {
        let run = || {
            LocalCluster::new(2, 2)
                .with_config(config.clone())
                .run_with_faults(
                    &dag,
                    FaultPlan {
                        chaos: Some(ChaosPlan {
                            seed,
                            error_prob: 0.15,
                            panic_prob: 0.10,
                            oom_prob: 0.0,
                            delay_prob: 0.15,
                            delay_ms: 4,
                            max_faults_per_task: 2,
                        }),
                        ..Default::default()
                    },
                )
                .expect("seeded job completes")
        };
        let a = run();
        let b = run();
        assert_eq!(
            encode_outputs(&a),
            encode_outputs(&b),
            "seed {seed}: same-seed sim runs produced different bytes"
        );
        let drift = a.metrics.backend_drift(&b.metrics);
        assert!(
            drift.is_empty(),
            "seed {seed}: deterministic counters drifted between same-seed runs: {drift:?}"
        );
    }
}
