//! Property tests of the at-least-once control-plane transport
//! (`ReliableSender`/`DedupWindow` over a `FaultyLink`): under arbitrary
//! seeded drop/duplicate/reorder/delay schedules — on the data direction
//! AND the ack direction — every payload is delivered above the dedup
//! window exactly once, and the seq/ack state machines drain without
//! deadlock.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use pado_core::runtime::journal::MAX_RETRANSMISSIONS_PER_MESSAGE;
use pado_core::runtime::transport::{
    DedupWindow, Direction, DirectionFaults, FaultyLink, NetPolicy, NetworkFault, ReliableSender,
    Seq, TransportCounters, Wire,
};
use proptest::prelude::*;

fn wrap(from: usize, seq: Seq, epoch: u64, payload: u32) -> Wire<u32> {
    Wire::Msg {
        from,
        seq,
        epoch,
        payload,
    }
}

/// Drives one sender/receiver pair over a fully lossy wire (both
/// directions faulted) until every payload lands or `deadline` passes.
/// Returns (delivery counts above dedup, sender in-flight at the end,
/// shared transport counters).
#[allow(clippy::too_many_arguments)]
fn drive(
    seed: u64,
    data_faults: DirectionFaults,
    ack_faults: DirectionFaults,
    n_payloads: u32,
    cap: usize,
    deadline: Duration,
) -> (HashMap<u32, usize>, usize, Arc<TransportCounters>) {
    let policy = NetPolicy::new(NetworkFault {
        seed,
        to_master: data_faults,
        to_executor: ack_faults,
        partitions: Vec::new(),
    });
    let counters = Arc::new(TransportCounters::default());

    // Payload direction: "executor 0 -> master".
    let (data_tx, data_rx) = unbounded::<Wire<u32>>();
    let data_link = FaultyLink::new(
        data_tx,
        0,
        Direction::ToMaster,
        Some(Arc::clone(&policy)),
        Arc::clone(&counters),
    );
    let mut sender = ReliableSender::new(
        data_link,
        0,
        wrap,
        cap,
        Duration::from_millis(2),
        Duration::from_millis(8),
        seed,
    );

    // Ack direction: "master -> executor 0", equally lossy.
    let (ack_tx, ack_rx) = unbounded::<Wire<u32>>();
    let mut ack_link = FaultyLink::new(
        ack_tx,
        0,
        Direction::ToExecutor,
        Some(policy),
        Arc::clone(&counters),
    );

    for v in 0..n_payloads {
        sender.send(v);
    }

    let mut dedup = DedupWindow::new(64);
    let mut delivered: HashMap<u32, usize> = HashMap::new();
    let t0 = Instant::now();
    loop {
        // Receiver side: dedup, record first deliveries, ack everything
        // (the first ack may itself have been lost).
        while let Some(frame) = data_rx.try_recv() {
            if let Wire::Msg {
                from, seq, payload, ..
            } = frame
            {
                if dedup.fresh(seq) {
                    *delivered.entry(payload).or_default() += 1;
                }
                ack_link.send(Wire::Ack { from, seq });
            }
        }
        // Sender side: consume acks, retransmit past-due messages,
        // release held frames on both links.
        while let Some(frame) = ack_rx.try_recv() {
            if let Wire::Ack { seq, .. } = frame {
                sender.on_ack(seq);
            }
        }
        sender.pump(Instant::now()).expect("pump invariant");
        ack_link.pump();
        let done = delivered.len() == n_payloads as usize && sender.in_flight() == 0;
        if done || t0.elapsed() >= deadline {
            let in_flight = sender.in_flight();
            return (delivered, in_flight, counters);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary (bounded-probability) fault schedules on both wire
    /// directions never produce a duplicate delivery above the dedup
    /// window, never lose a payload, and never wedge the seq/ack state
    /// machines: every payload lands exactly once and the in-flight
    /// window drains, all within a generous real-time deadline.
    #[test]
    fn lossy_wire_delivers_exactly_once_above_dedup(
        seed in 0u64..1_000_000,
        probs in (0.0f64..0.45, 0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.3),
        n_payloads in 1u32..9,
        cap in 1usize..5,
    ) {
        let (drop, dup, reorder, delay) = probs;
        let faults = |salt: f64| DirectionFaults {
            drop_prob: drop,
            dup_prob: (dup + salt).min(0.3),
            reorder_prob: reorder,
            delay_prob: delay,
            delay_ms: 3,
        };
        let (delivered, in_flight, _) = drive(
            seed,
            faults(0.0),
            faults(0.05),
            n_payloads,
            cap,
            Duration::from_secs(5),
        );
        prop_assert_eq!(
            in_flight, 0,
            "seq/ack machines deadlocked: {} of {} payloads delivered",
            delivered.len(), n_payloads
        );
        for v in 0..n_payloads {
            prop_assert_eq!(
                delivered.get(&v).copied().unwrap_or(0), 1,
                "payload {} delivered {:?} times above the dedup window",
                v, delivered.get(&v)
            );
        }
    }

    /// The dedup window itself is a correct exactly-once filter over any
    /// replayed/reordered seq schedule the in-flight cap permits: each
    /// seq is fresh at most once, replays and anything below the floor
    /// are always stale.
    #[test]
    fn dedup_window_admits_each_seq_at_most_once(
        seqs in proptest::collection::vec(1u64..40, 1..120),
    ) {
        let mut w = DedupWindow::new(64);
        let mut admitted: HashMap<u64, usize> = HashMap::new();
        for &s in &seqs {
            if w.fresh(s) {
                *admitted.entry(s).or_default() += 1;
            }
        }
        for (s, n) in &admitted {
            prop_assert_eq!(*n, 1, "seq {} admitted {} times", s, n);
        }
        for &s in &seqs {
            prop_assert!(!w.fresh(s), "replay of seq {} admitted late", s);
        }
    }

    /// Even over a heavily faulted wire, no single message needs more
    /// than the protocol-wide retransmission bound (fresh fault draws per
    /// transmission make long retry chains vanishingly unlikely); the
    /// invariant checker enforces the same bound on real runs.
    #[test]
    fn retransmissions_stay_bounded(
        seed in 0u64..1_000_000,
        dup in 0.0f64..0.3,
        reorder in 0.0f64..0.3,
        n_payloads in 1u32..9,
    ) {
        let faults = DirectionFaults {
            drop_prob: 0.35,
            dup_prob: dup,
            reorder_prob: reorder,
            delay_prob: 0.2,
            delay_ms: 2,
        };
        let (delivered, in_flight, counters) =
            drive(seed, faults, faults, n_payloads, 4, Duration::from_secs(5));
        prop_assert_eq!(in_flight, 0);
        prop_assert_eq!(delivered.len(), n_payloads as usize);
        prop_assert!(delivered.values().all(|&n| n == 1));
        let max = counters
            .max_transmissions
            .load(std::sync::atomic::Ordering::Relaxed);
        prop_assert!(
            (max.saturating_sub(1) as usize) <= MAX_RETRANSMISSIONS_PER_MESSAGE,
            "a message needed {} transmissions", max
        );
    }

    /// The retransmission/dedup state machine holds under *real* thread
    /// interleavings, not just the single-threaded schedules above: the
    /// sender runs its genuine retransmission timers on this thread
    /// while a receiver thread pulls frames through a seeded shim that
    /// delivers them in arbitrary order, duplicates some, and drops a
    /// bounded number without acking (forcing real timer-driven
    /// retransmission). Whatever the OS scheduler does, every payload is
    /// delivered exactly once above the dedup window and the in-flight
    /// window drains.
    #[test]
    fn real_thread_interleavings_deliver_exactly_once(
        seed in 0u64..1_000_000,
        n_payloads in 4u32..24,
        cap in 1usize..6,
        dup_prob in 0.0f64..0.3,
        drop_budget in 0usize..6,
    ) {
        use std::sync::atomic::{AtomicBool, Ordering};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let counters = Arc::new(TransportCounters::default());
        let (data_tx, data_rx) = unbounded::<Wire<u32>>();
        // No NetPolicy: the shim thread below is the adversary.
        let data_link = FaultyLink::new(
            data_tx,
            0,
            Direction::ToMaster,
            None,
            Arc::clone(&counters),
        );
        let mut sender = ReliableSender::new(
            data_link,
            0,
            wrap,
            cap,
            Duration::from_millis(2),
            Duration::from_millis(8),
            seed,
        );
        let (ack_tx, ack_rx) = unbounded::<Wire<u32>>();

        let done = Arc::new(AtomicBool::new(false));
        let receiver = {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x7EC3_1A7E);
                let mut dedup = DedupWindow::new(64);
                let mut delivered: HashMap<u32, usize> = HashMap::new();
                let mut held: Vec<Wire<u32>> = Vec::new();
                let mut drops_left = drop_budget;
                loop {
                    while let Some(frame) = data_rx.try_recv() {
                        held.push(frame);
                    }
                    if held.is_empty() {
                        if done.load(Ordering::Acquire) {
                            return delivered;
                        }
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    }
                    // Arbitrary delivery order: pull a random held frame.
                    let frame = held.swap_remove(rng.gen_range(0..held.len()));
                    if let Wire::Msg { from, seq, payload, .. } = frame {
                        if drops_left > 0 && rng.gen_bool(0.25) {
                            // Swallow it unacked: only the sender's real
                            // retransmission timer can recover this one.
                            drops_left -= 1;
                            continue;
                        }
                        let times = if rng.gen_bool(dup_prob) { 2 } else { 1 };
                        for _ in 0..times {
                            if dedup.fresh(seq) {
                                *delivered.entry(payload).or_default() += 1;
                            }
                            let _ = ack_tx.send(Wire::Ack { from, seq });
                        }
                    }
                }
            })
        };

        for v in 0..n_payloads {
            sender.send(v);
        }
        let t0 = Instant::now();
        while sender.in_flight() > 0 && t0.elapsed() < Duration::from_secs(5) {
            while let Some(frame) = ack_rx.try_recv() {
                if let Wire::Ack { seq, .. } = frame {
                    sender.on_ack(seq);
                }
            }
            sender.pump(Instant::now()).expect("pump invariant");
            std::thread::sleep(Duration::from_millis(1));
        }
        let in_flight = sender.in_flight();
        done.store(true, Ordering::Release);
        let delivered = receiver.join().expect("receiver thread");

        prop_assert_eq!(
            in_flight, 0,
            "real-thread schedule wedged the sender: {:?} delivered of {}",
            delivered.len(), n_payloads
        );
        for v in 0..n_payloads {
            prop_assert_eq!(
                delivered.get(&v).copied().unwrap_or(0), 1,
                "payload {} delivered {:?} times above the dedup window",
                v, delivered.get(&v)
            );
        }
    }

    /// Epoch fencing composes with the lossy transport without breaking
    /// liveness: when the sender's epoch advances mid-stream and the
    /// receiver fences everything stamped below the new epoch, stale
    /// frames are still acked (so the in-flight window drains — no
    /// deadlock), retransmissions keep their original stamp (so a frame
    /// never flips between fenced and delivered), and every payload
    /// resolves exactly once — either fenced or delivered, by its send
    /// epoch.
    #[test]
    fn epoch_fencing_rejects_stale_frames_without_deadlock(
        seed in 0u64..1_000_000,
        probs in (0.0f64..0.4, 0.0f64..0.3, 0.0f64..0.3),
        n_payloads in 2u32..9,
        bump_after_frac in 0.0f64..1.0,
        cap in 1usize..5,
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};

        let (drop, dup, reorder) = probs;
        let faults = DirectionFaults {
            drop_prob: drop,
            dup_prob: dup,
            reorder_prob: reorder,
            delay_prob: 0.2,
            delay_ms: 2,
        };
        let policy = NetPolicy::new(NetworkFault {
            seed,
            to_master: faults,
            to_executor: faults,
            partitions: Vec::new(),
        });
        let counters = Arc::new(TransportCounters::default());
        let (data_tx, data_rx) = unbounded::<Wire<u32>>();
        let data_link = FaultyLink::new(
            data_tx,
            0,
            Direction::ToMaster,
            Some(Arc::clone(&policy)),
            Arc::clone(&counters),
        );
        let epoch_cell = Arc::new(AtomicU64::new(0));
        let mut sender = ReliableSender::new(
            data_link,
            0,
            wrap,
            cap,
            Duration::from_millis(2),
            Duration::from_millis(8),
            seed,
        )
        .with_epoch(Arc::clone(&epoch_cell));
        let (ack_tx, ack_rx) = unbounded::<Wire<u32>>();
        let mut ack_link = FaultyLink::new(
            ack_tx,
            0,
            Direction::ToExecutor,
            Some(policy),
            Arc::clone(&counters),
        );

        // The epoch advances mid-stream: payloads below the cut are
        // stamped 0, the rest 1. The receiver fences epoch < 1.
        let bump_after = ((n_payloads as f64) * bump_after_frac) as u32;
        for v in 0..n_payloads {
            if v == bump_after {
                epoch_cell.store(1, Ordering::Relaxed);
            }
            sender.send(v);
        }

        let mut dedup = DedupWindow::new(64);
        let mut delivered: HashMap<u32, usize> = HashMap::new();
        let mut fenced: HashMap<u32, usize> = HashMap::new();
        let t0 = Instant::now();
        loop {
            while let Some(frame) = data_rx.try_recv() {
                if let Wire::Msg { from, seq, epoch, payload } = frame {
                    // Ack-first, exactly as the master's handle_frame
                    // does: a fenced frame still drains the sender.
                    ack_link.send(Wire::Ack { from, seq });
                    if dedup.fresh(seq) {
                        if epoch < 1 {
                            *fenced.entry(payload).or_default() += 1;
                        } else {
                            *delivered.entry(payload).or_default() += 1;
                        }
                    }
                }
            }
            while let Some(frame) = ack_rx.try_recv() {
                if let Wire::Ack { seq, .. } = frame {
                    sender.on_ack(seq);
                }
            }
            sender.pump(Instant::now()).expect("pump invariant");
            ack_link.pump();
            let resolved = delivered.len() + fenced.len() == n_payloads as usize;
            if (resolved && sender.in_flight() == 0) || t0.elapsed() >= Duration::from_secs(5) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        prop_assert_eq!(
            sender.in_flight(), 0,
            "fencing wedged the sender: {} delivered, {} fenced of {}",
            delivered.len(), fenced.len(), n_payloads
        );
        for v in 0..n_payloads {
            let d = delivered.get(&v).copied().unwrap_or(0);
            let f = fenced.get(&v).copied().unwrap_or(0);
            prop_assert_eq!(
                d + f, 1,
                "payload {} resolved {} times ({} delivered, {} fenced)", v, d + f, d, f
            );
            // Stamps are taken at first *transmission*: a payload queued
            // behind the in-flight cap when the epoch advanced is stamped
            // with the new epoch, so pre-advance payloads may legally land
            // either way — but a post-advance payload can never be fenced.
            if v >= bump_after {
                prop_assert_eq!(d, 1, "post-advance payload {} must be delivered", v);
            }
        }
    }
}
