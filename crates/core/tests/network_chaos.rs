//! Network-chaos equivalence suite for the unreliable control-plane
//! transport: seeded message drop/duplicate/reorder/delay in both
//! directions, timed executor partitions, and the full existing fault
//! space (UDF chaos, evictions, reserved failures, master restarts)
//! layered on top.
//!
//! Invariants enforced per seed:
//! - outputs byte-identical to the fault-free run (codec-encoded) —
//!   at-least-once delivery plus idempotent handlers must make the lossy
//!   network invisible in the answer,
//! - no double-commits (a second `TaskCommitted` needs an intervening
//!   `TaskReverted`),
//! - retransmissions per message stay bounded,
//! - partitions that heal below the dead-executor threshold cause no
//!   relaunches; partitions past it trigger the failure detector and the
//!   dead executor's uncommitted tasks relaunch exactly once,
//! - fault-free runs report exactly zero transport activity.

use std::collections::HashMap;

use pado_core::runtime::{
    ChaosPlan, DirectionFaults, FaultPlan, JobEvent, JobResult, LocalCluster, NetworkFault,
    PartitionSpec, RuntimeConfig,
};
use pado_dag::codec::encode_batch;
use pado_dag::{CombineFn, LogicalDag, ParDoFn, Pipeline, SourceFn, TaskInput, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 110;
const MAX_TASK_ATTEMPTS: usize = 3;
/// Strictly below the retry budget so chaos alone can never exhaust a
/// task's attempts: every seeded job must complete.
const MAX_FAULTS_PER_TASK: usize = 2;
/// With a healthy ack path every message eventually lands; even under
/// heavy loss no single frame should need anywhere near this many tries.
const MAX_RETRANSMISSIONS: usize = 64;

fn ints(n: i64) -> Vec<Value> {
    (0..n).map(Value::from).collect()
}

fn wordcount_dag() -> LogicalDag {
    let p = Pipeline::new();
    p.read(
        "Read",
        4,
        SourceFn::from_vec(vec![
            Value::from("pado harnesses transient resources"),
            Value::from("transient containers come and go"),
            Value::from("reserved containers hold the line"),
            Value::from("pado retries pado recovers"),
        ]),
    )
    .par_do(
        "Split",
        ParDoFn::per_element(|line, emit| {
            for w in line.as_str().unwrap_or("").split_whitespace() {
                emit(Value::pair(Value::from(w), Value::from(1i64)));
            }
        }),
    )
    .combine_per_key("Count", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

fn side_input_dag() -> LogicalDag {
    let p = Pipeline::new();
    let bcast = p.read("Bcast", 3, SourceFn::from_vec(ints(9)));
    let data = p.read("Data", 2, SourceFn::from_vec(ints(6)));
    data.par_do_with_side(
        "AddSide",
        &bcast,
        ParDoFn::new(|input: TaskInput<'_>, emit| {
            let side_sum: i64 = input
                .side
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .sum();
            for v in input.main() {
                emit(Value::from(v.as_i64().unwrap() + side_sum));
            }
        }),
    )
    .aggregate("Total", CombineFn::sum_i64())
    .sink("Out");
    p.build().unwrap()
}

/// Tight transport tunings: lost messages retry fast, while the dead
/// threshold stays far above every partition this suite injects, so a
/// partitioned executor is always slow, never dead.
fn chaos_config() -> RuntimeConfig {
    RuntimeConfig {
        slots_per_executor: 2,
        event_timeout_ms: 10_000,
        snapshot_every: 2,
        max_task_attempts: MAX_TASK_ATTEMPTS,
        executor_fault_threshold: 2,
        speculation_floor_ms: 50,
        tick_ms: 5,
        heartbeat_interval_ms: 20,
        dead_executor_timeout_ms: 600,
        retransmit_base_ms: 20,
        retransmit_max_ms: 160,
        ..Default::default()
    }
}

fn encode_outputs(result: &JobResult) -> Vec<(String, Vec<u8>)> {
    result
        .outputs
        .iter()
        .map(|(name, records)| (name.clone(), encode_batch(records).expect("encodes")))
        .collect()
}

/// Seeded network dimension: moderate loss in both directions, plus (one
/// seed in four) a timed partition of one transient executor healing far
/// below the 600 ms dead threshold.
fn random_network(
    rng: &mut StdRng,
    seed: u64,
    n_transient: usize,
    n_reserved: usize,
) -> NetworkFault {
    let dir = |rng: &mut StdRng| DirectionFaults {
        drop_prob: rng.gen_range(0.0..0.15),
        dup_prob: rng.gen_range(0.0..0.10),
        reorder_prob: rng.gen_range(0.0..0.10),
        delay_prob: rng.gen_range(0.0..0.15),
        delay_ms: rng.gen_range(1..10u64),
    };
    let to_executor = dir(rng);
    let to_master = dir(rng);
    let partitions = if rng.gen_bool(0.25) {
        // Executors spawn reserved-first, so transient ids start at
        // n_reserved.
        vec![PartitionSpec {
            exec: n_reserved + rng.gen_range(0..n_transient),
            start_ms: rng.gen_range(20..120u64),
            duration_ms: rng.gen_range(50..250u64),
        }]
    } else {
        Vec::new()
    };
    NetworkFault {
        seed: seed ^ 0x4E45_54FA,
        to_executor,
        to_master,
        partitions,
    }
}

fn random_fault_plan(
    rng: &mut StdRng,
    seed: u64,
    n_transient: usize,
    n_reserved: usize,
) -> FaultPlan {
    let evictions = (0..rng.gen_range(0..3usize))
        .map(|_| (rng.gen_range(1..10usize), rng.gen_range(0..3usize)))
        .collect();
    let reserved_failures = (0..rng.gen_range(0..2usize))
        .map(|_| (rng.gen_range(2..10usize), 0))
        .collect();
    let master_failure_after = if rng.gen_bool(0.2) {
        Some(rng.gen_range(3..8usize))
    } else {
        None
    };
    FaultPlan {
        evictions,
        reserved_failures,
        master_failure_after,
        chaos: Some(ChaosPlan {
            seed,
            error_prob: 0.15,
            panic_prob: 0.10,
            oom_prob: 0.0,
            delay_prob: 0.20,
            delay_ms: 8,
            max_faults_per_task: MAX_FAULTS_PER_TASK,
        }),
        budget_shrinks: Vec::new(),
        first_attempt_delays: Vec::new(),
        first_attempt_done_delays: Vec::new(),
        network: Some(random_network(rng, seed, n_transient, n_reserved)),
        reconfigs: Vec::new(),
        spill_faults: None,
        crashes: None,
    }
}

/// Commit-once over the event log: a second `TaskCommitted` for the same
/// task is legal only after an intervening `TaskReverted`. This is the
/// observable face of handler idempotence — duplicated or retransmitted
/// `TaskDone` reports must never commit twice.
fn assert_no_double_commit(seed: u64, events: &[JobEvent]) {
    let mut committed: HashMap<(usize, usize), bool> = HashMap::new();
    for e in events {
        match e {
            JobEvent::TaskCommitted { fop, index, .. } => {
                let slot = committed.entry((*fop, *index)).or_insert(false);
                assert!(!*slot, "seed {seed}: double commit of task {fop}.{index}");
                *slot = true;
            }
            JobEvent::TaskReverted { fop, index } => {
                committed.insert((*fop, *index), false);
            }
            _ => {}
        }
    }
}

/// 110 seeds of network chaos layered over the full existing fault space:
/// every seed's outputs must be byte-identical to the fault-free run, no
/// task may double-commit, and per-message retransmissions stay bounded.
#[test]
fn hundred_seeds_of_network_chaos_preserve_outputs() {
    let shapes: Vec<(&str, LogicalDag)> = vec![
        ("wordcount", wordcount_dag()),
        ("side_input", side_input_dag()),
    ];
    let baselines: Vec<Vec<(String, Vec<u8>)>> = shapes
        .iter()
        .map(|(name, dag)| {
            let r = LocalCluster::new(2, 2)
                .with_config(chaos_config())
                .run(dag)
                .unwrap_or_else(|e| panic!("fault-free baseline {name} failed: {e}"));
            encode_outputs(&r)
        })
        .collect();

    let mut total_dropped = 0usize;
    let mut total_retransmitted = 0usize;
    let mut total_deduplicated = 0usize;
    for seed in 0..SEEDS {
        let shape = (seed % shapes.len() as u64) as usize;
        let (name, dag) = &shapes[shape];
        let mut rng = StdRng::seed_from_u64(seed);
        let n_transient = rng.gen_range(1..4usize);
        let n_reserved = rng.gen_range(1..3usize);
        let faults = random_fault_plan(&mut rng, seed, n_transient, n_reserved);
        let result = LocalCluster::new(n_transient, n_reserved)
            .with_config(chaos_config())
            .run_with_faults(dag, faults.clone())
            .unwrap_or_else(|e| panic!("seed {seed} ({name}, {faults:?}) failed: {e}"));
        assert_eq!(
            encode_outputs(&result),
            baselines[shape],
            "seed {seed} ({name}): outputs diverged from fault-free baseline"
        );
        pado_core::runtime::assert_clean(&result.journal, true);
        assert_no_double_commit(seed, &result.journal.to_events());
        assert!(
            result.metrics.max_message_retransmissions <= MAX_RETRANSMISSIONS,
            "seed {seed}: a message needed {} retransmissions",
            result.metrics.max_message_retransmissions
        );
        total_dropped += result.metrics.messages_dropped;
        total_retransmitted += result.metrics.messages_retransmitted;
        total_deduplicated += result.metrics.messages_deduplicated;
    }
    // The sweep as a whole must actually exercise the transport: across
    // 110 lossy seeds, drops, retransmissions, and dedup suppressions all
    // occur many times.
    assert!(total_dropped > 0, "no seed ever dropped a message");
    assert!(total_retransmitted > 0, "no seed ever retransmitted");
    assert!(
        total_deduplicated > 0,
        "no seed ever suppressed a duplicate"
    );
}

/// A partition that heals below the dead-executor threshold makes the
/// executor slow, not dead: retransmissions bridge the outage and no
/// task is ever relaunched.
#[test]
fn partitioned_then_healed_rejoins_without_relaunches() {
    let dag = wordcount_dag();
    let config = RuntimeConfig {
        speculation: false,
        heartbeat_interval_ms: 20,
        dead_executor_timeout_ms: 1_200,
        retransmit_base_ms: 15,
        retransmit_max_ms: 120,
        ..chaos_config()
    };
    let baseline = LocalCluster::new(1, 1)
        .with_config(config.clone())
        .run(&dag)
        .unwrap();
    // Black-hole the sole transient executor (reserved spawn first, so it
    // is ExecId 1) from the start; it heals at 250 ms, far below the
    // 1 200 ms dead threshold.
    let faults = FaultPlan {
        network: Some(NetworkFault {
            partitions: vec![PartitionSpec {
                exec: 1,
                start_ms: 0,
                duration_ms: 250,
            }],
            ..Default::default()
        }),
        ..Default::default()
    };
    let result = LocalCluster::new(1, 1)
        .with_config(config)
        .run_with_faults(&dag, faults)
        .unwrap();
    assert_eq!(
        encode_outputs(&result),
        encode_outputs(&baseline),
        "healed partition changed the outputs"
    );
    assert_eq!(
        result.metrics.executors_declared_dead, 0,
        "a partition below the threshold must not look like death: {:?}",
        result.metrics
    );
    assert_eq!(
        result.metrics.relaunched_tasks, 0,
        "the healed executor's tasks complete in place: {:?}",
        result.metrics
    );
    assert!(
        result.metrics.messages_retransmitted > 0,
        "bridging a 250 ms black hole requires retransmissions: {:?}",
        result.metrics
    );
    assert!(
        !result
            .journal
            .to_events()
            .iter()
            .any(|e| matches!(e, JobEvent::ExecutorDeclaredDead(_))),
        "no death sentence in the event log"
    );
    pado_core::runtime::assert_clean(&result.journal, true);
}

/// A partition that outlives the dead-executor threshold trips the
/// heartbeat failure detector: the executor is declared dead, its
/// uncommitted tasks relaunch exactly once on survivors, and the outputs
/// still match the fault-free run.
#[test]
fn partitioned_past_threshold_declared_dead() {
    let dag = wordcount_dag();
    let config = RuntimeConfig {
        speculation: false,
        heartbeat_interval_ms: 10,
        dead_executor_timeout_ms: 150,
        retransmit_base_ms: 10,
        retransmit_max_ms: 80,
        ..chaos_config()
    };
    let baseline = LocalCluster::new(1, 1)
        .with_config(config.clone())
        .run(&dag)
        .unwrap();
    // The partition never heals within the job's lifetime.
    let faults = FaultPlan {
        network: Some(NetworkFault {
            partitions: vec![PartitionSpec {
                exec: 1,
                start_ms: 0,
                duration_ms: 60_000,
            }],
            ..Default::default()
        }),
        ..Default::default()
    };
    let result = LocalCluster::new(1, 1)
        .with_config(config)
        .run_with_faults(&dag, faults)
        .unwrap();
    assert_eq!(
        encode_outputs(&result),
        encode_outputs(&baseline),
        "declared-dead recovery changed the outputs"
    );
    assert_eq!(
        result.metrics.executors_declared_dead, 1,
        "the silent executor must be declared dead exactly once: {:?}",
        result.metrics
    );
    assert!(
        result.metrics.heartbeats_missed >= 1,
        "the detector flags the silence before the death sentence: {:?}",
        result.metrics
    );
    let events = result.journal.to_events();
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, JobEvent::ExecutorDeclaredDead(_)))
            .count(),
        1
    );
    // Exactly-once relaunch: every task launches at most twice (original
    // plus at most one post-death relaunch), and at least one task that
    // was stranded on the dead executor actually relaunched.
    let mut launches: HashMap<(usize, usize), usize> = HashMap::new();
    for e in &events {
        if let JobEvent::TaskLaunched { fop, index, .. } = e {
            *launches.entry((*fop, *index)).or_default() += 1;
        }
    }
    for (task, n) in &launches {
        assert!(
            *n <= 2,
            "task {task:?} launched {n} times; death recovery relaunches once"
        );
    }
    assert!(
        result.metrics.relaunched_tasks >= 1,
        "the dead executor's assignments must relaunch: {:?}",
        result.metrics
    );
    assert_no_double_commit(0, &events);
    pado_core::runtime::assert_clean(&result.journal, true);
}

/// Without injected faults the transport is invisible: every message is
/// acknowledged on first transmission and all transport metrics are
/// exactly zero.
#[test]
fn fault_free_runs_report_zero_transport_metrics() {
    for (name, dag) in [
        ("wordcount", wordcount_dag()),
        ("side_input", side_input_dag()),
    ] {
        let result = LocalCluster::new(2, 2)
            .with_config(chaos_config())
            .run(&dag)
            .unwrap_or_else(|e| panic!("{name}: fault-free run failed: {e}"));
        let m = &result.metrics;
        assert_eq!(m.messages_dropped, 0, "{name}: {m:?}");
        assert_eq!(m.messages_duplicated, 0, "{name}: {m:?}");
        assert_eq!(m.messages_retransmitted, 0, "{name}: {m:?}");
        assert_eq!(m.messages_deduplicated, 0, "{name}: {m:?}");
        assert_eq!(m.max_message_retransmissions, 0, "{name}: {m:?}");
        assert_eq!(m.heartbeats_missed, 0, "{name}: {m:?}");
        assert_eq!(m.executors_declared_dead, 0, "{name}: {m:?}");
        pado_core::runtime::assert_clean(&result.journal, true);
    }
}
