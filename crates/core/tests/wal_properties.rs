//! Property tests of the write-ahead log codec and recovery scan: for
//! arbitrary event sequences,
//!
//! - encode → scan round-trips every frame byte-identically (epoch and
//!   record), with nothing truncated,
//! - truncating the image at an arbitrary byte offset always recovers
//!   exactly the whole frames before the cut — a torn tail, never a
//!   snapshot fallback,
//! - seeded bit-flip + truncation corruption never panics the scan, the
//!   surviving frames are a prefix of what was written, and rescanning
//!   the reported valid prefix is clean and stable,
//! - completely arbitrary bytes never panic `scan` or `replay`.

use pado_core::compiler::Placement;
use pado_core::runtime::{
    encode_frame, inject_corruption, replay, scan, BlockRef, JobEvent, ReconfigChange,
    ReconfigTrigger, WalCorruption, WalRecord, WalSnapshot,
};
use proptest::prelude::*;

fn placement_strategy() -> impl Strategy<Value = Placement> {
    any::<bool>().prop_map(|t| {
        if t {
            Placement::Transient
        } else {
            Placement::Reserved
        }
    })
}

fn block_ref_strategy() -> impl Strategy<Value = BlockRef> {
    prop_oneof![
        (0..6usize, 0..8usize).prop_map(|(fop, index)| BlockRef::Output { fop, index }),
        (0..6usize, 0..8usize, 1..5usize, 0..5usize).prop_map(|(fop, index, dst_par, dst)| {
            BlockRef::Bucket {
                fop,
                index,
                dst_par,
                dst,
            }
        }),
    ]
}

fn change_strategy() -> impl Strategy<Value = ReconfigChange> {
    prop_oneof![
        (0..4usize, placement_strategy())
            .prop_map(|(stage, to)| ReconfigChange::MigrateStage { stage, to }),
        (0..6usize, 1..9usize)
            .prop_map(|(fop, parallelism)| ReconfigChange::Repartition { fop, parallelism }),
        (0..5usize).prop_map(|nth| ReconfigChange::DrainTransient { nth }),
    ]
}

/// A cross-section of the journal vocabulary: master-side scheduling
/// events, executor-side store events, reconfiguration lifecycle
/// (including the `String`-carrying abort), and the recovery marker
/// itself.
fn event_strategy() -> impl Strategy<Value = JobEvent> {
    prop_oneof![
        (
            (0..6usize, 0..8usize, 0..10_000u64, 0..9usize),
            (any::<bool>(), 0..4_096usize, 0..4_096usize, 0..4usize),
        )
            .prop_map(
                |((fop, index, attempt, exec), (relaunch, sent, saved, misses))| {
                    JobEvent::TaskLaunched {
                        fop,
                        index,
                        attempt,
                        exec,
                        relaunch,
                        side_bytes_sent: sent,
                        side_bytes_saved: saved,
                        side_cache_misses: misses,
                    }
                }
            ),
        (
            (0..6usize, 0..8usize, 0..10_000u64, 0..9usize),
            (any::<bool>(), 0..4_096usize, 0..64usize, any::<bool>()),
        )
            .prop_map(
                |((fop, index, attempt, exec), (speculative, pushed, preagg, cache_hit))| {
                    JobEvent::TaskCommitted {
                        fop,
                        index,
                        attempt,
                        exec,
                        speculative,
                        bytes_pushed: pushed,
                        preaggregated: preagg,
                        cache_hit,
                    }
                }
            ),
        (0..6usize, 0..8usize, 0..10_000u64, 0..9usize).prop_map(|(fop, index, attempt, exec)| {
            JobEvent::TaskFailed {
                fop,
                index,
                attempt,
                exec,
            }
        }),
        (0..6usize, 0..8usize).prop_map(|(fop, index)| JobEvent::TaskReverted { fop, index }),
        (0..9usize).prop_map(JobEvent::ContainerEvicted),
        (0..9usize).prop_map(JobEvent::ExecutorDeclaredDead),
        (0..4usize, any::<bool>())
            .prop_map(|(stage, recompute)| JobEvent::StageReopened { stage, recompute }),
        (
            0..9usize,
            block_ref_strategy(),
            0..4_096usize,
            0..8_192usize
        )
            .prop_map(|(exec, block, bytes, resident)| JobEvent::BlockAdmitted {
                exec,
                block,
                bytes,
                resident,
            }),
        (0..6usize, 0..8usize, 0..9usize, 0..4_096usize).prop_map(|(fop, index, exec, bytes)| {
            JobEvent::PushDeferred {
                fop,
                index,
                exec,
                bytes,
            }
        }),
        (0..9usize, 0..6usize, 0..4_096usize).prop_map(|(exec, key, bytes)| JobEvent::CacheHit {
            exec,
            key,
            bytes
        }),
        (0..100u64, any::<bool>(), change_strategy()).prop_map(|(reconfig, api, change)| {
            JobEvent::ReconfigRequested {
                reconfig,
                trigger: if api {
                    ReconfigTrigger::Api
                } else {
                    ReconfigTrigger::Chaos
                },
                change,
            }
        }),
        (0..100u64, change_strategy(), 0..50u64).prop_map(|(reconfig, change, epoch)| {
            JobEvent::ReconfigCommitted {
                reconfig,
                change,
                epoch,
            }
        }),
        (0..100u64, "[a-z ]{0,16}")
            .prop_map(|(reconfig, reason)| JobEvent::ReconfigAborted { reconfig, reason }),
        (0..50u64).prop_map(|epoch| JobEvent::EpochAdvanced { epoch }),
        (0..9usize, 0..1_000u64, 0..50u64)
            .prop_map(|(exec, seq, epoch)| JobEvent::StaleFrameFenced { exec, seq, epoch }),
        Just(JobEvent::MasterRecovered),
        (0..200usize, 0..20usize, any::<bool>()).prop_map(
            |(frames_replayed, frames_truncated, snapshot_restored)| JobEvent::WalRecovered {
                frames_replayed,
                frames_truncated,
                snapshot_restored,
            }
        ),
    ]
}

fn snapshot_strategy() -> impl Strategy<Value = WalSnapshot> {
    (
        (0..50u64, 0..10_000u64),
        proptest::collection::vec(0..10_000u64, 0..6),
        proptest::collection::vec(
            (
                0..6usize,
                0..8usize,
                proptest::collection::vec(0..9usize, 0..3),
            ),
            0..5,
        ),
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), 0..4), 0..4),
        (
            proptest::collection::vec(1..9usize, 0..4),
            proptest::collection::vec(placement_strategy(), 0..4),
            proptest::collection::vec((0..9usize, 0..100_000u64), 0..4),
        ),
    )
        .prop_map(
            |(
                (epoch, next_attempt),
                completed_attempts,
                committed,
                first_attempted,
                (parallelism, placement, resident),
            )| WalSnapshot {
                epoch,
                next_attempt,
                completed_attempts,
                committed,
                first_attempted,
                parallelism,
                placement,
                resident,
            },
        )
}

fn record_strategy() -> impl Strategy<Value = WalRecord> {
    let stage = prop_oneof![Just(None), (0..5usize).prop_map(Some)];
    prop_oneof![
        (stage, event_strategy()).prop_map(|(stage, event)| WalRecord::Event { stage, event }),
        snapshot_strategy().prop_map(WalRecord::Snapshot),
        (
            0..6usize,
            0..8usize,
            proptest::collection::vec(0..9usize, 0..4),
        )
            .prop_map(|(fop, index, locations)| WalRecord::Locations {
                fop,
                index,
                locations,
            }),
    ]
}

/// A log image: stamped records, encoded and concatenated.
fn encode_log(records: &[(u64, WalRecord)]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (epoch, record) in records {
        bytes.extend_from_slice(&encode_frame(*epoch, record));
    }
    bytes
}

fn log_strategy() -> impl Strategy<Value = Vec<(u64, WalRecord)>> {
    proptest::collection::vec((0..50u64, record_strategy()), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encoding an arbitrary record sequence and scanning it back yields
    /// every frame — epoch stamp and record — byte-identically, with no
    /// truncation and no snapshot fallback, and the replay folds without
    /// panicking.
    #[test]
    fn encode_scan_round_trips(records in log_strategy()) {
        let bytes = encode_log(&records);
        let s = scan(&bytes);
        prop_assert_eq!(s.frames.len(), records.len());
        for (frame, (epoch, record)) in s.frames.iter().zip(records.iter()) {
            prop_assert_eq!(frame.epoch, *epoch);
            prop_assert_eq!(&frame.record, record);
        }
        prop_assert_eq!(s.valid_len, bytes.len() as u64);
        prop_assert_eq!(s.frames_truncated, 0);
        prop_assert!(!s.snapshot_restored);
        let rec = replay(&s);
        prop_assert_eq!(rec.frames_replayed, records.len());
    }

    /// Cutting the image at an arbitrary byte offset is always a torn
    /// tail: recovery keeps exactly the whole frames before the cut and
    /// never falls back to a snapshot.
    #[test]
    fn truncation_recovers_whole_frame_prefix(
        records in log_strategy(),
        cut_frac in 0..1_000u32,
    ) {
        let bytes = encode_log(&records);
        let cut = (bytes.len() as u64 * u64::from(cut_frac) / 1_000) as usize;
        let cut_image = &bytes[..cut];
        let s = scan(cut_image);
        prop_assert!(!s.snapshot_restored);
        prop_assert!(s.valid_len as usize <= cut);
        // The kept frames are exactly the originals whose encoding ends
        // at or before the cut.
        let mut end = 0usize;
        let mut whole = 0usize;
        for (epoch, record) in &records {
            end += encode_frame(*epoch, record).len();
            if end > cut {
                break;
            }
            whole += 1;
        }
        prop_assert_eq!(s.frames.len(), whole);
        for (frame, (epoch, record)) in s.frames.iter().zip(records.iter()) {
            prop_assert_eq!(frame.epoch, *epoch);
            prop_assert_eq!(&frame.record, record);
        }
        let _ = replay(&s);
    }

    /// Seeded bit-flip + truncation corruption never panics: the scan
    /// reports a valid length within the damaged image, the surviving
    /// frames are a prefix of what was written, and rescanning the
    /// reported prefix is clean (same frames, nothing truncated) — the
    /// fixpoint the recovery path relies on when it truncates the file.
    #[test]
    fn corruption_always_recovers_a_valid_prefix(
        records in log_strategy(),
        seed in any::<u64>(),
        flip_millis in 0..12u32,
        truncate_millis in 0..1_000u32,
    ) {
        let mut bytes = encode_log(&records);
        inject_corruption(&mut bytes, &WalCorruption {
            seed,
            bit_flip_prob: f64::from(flip_millis) / 1_000.0,
            truncate_prob: f64::from(truncate_millis) / 1_000.0,
        });
        let s = scan(&bytes);
        prop_assert!(s.valid_len as usize <= bytes.len());
        prop_assert!(s.frames.len() <= records.len());
        for (frame, (epoch, record)) in s.frames.iter().zip(records.iter()) {
            prop_assert_eq!(frame.epoch, *epoch);
            prop_assert_eq!(&frame.record, record);
        }
        let again = scan(&bytes[..s.valid_len as usize]);
        prop_assert_eq!(again.frames.len(), s.frames.len());
        prop_assert_eq!(again.valid_len, s.valid_len);
        prop_assert_eq!(again.frames_truncated, 0);
        prop_assert!(!again.snapshot_restored);
        let rec = replay(&s);
        prop_assert_eq!(rec.frames_replayed, s.frames.len());
        prop_assert_eq!(rec.snapshot_restored, s.snapshot_restored);
    }

    /// Completely arbitrary bytes — not even a valid prefix — never
    /// panic the scan or the replay.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let s = scan(&bytes);
        prop_assert!(s.valid_len as usize <= bytes.len());
        let _ = replay(&s);
    }
}
