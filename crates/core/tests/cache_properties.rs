//! Property tests of the executor-side `LruCache` against a
//! straightforward `BTreeMap` reference model: for arbitrary seeded
//! sequences of `put`/`get`, both implementations must agree on every
//! return value, on occupancy, and on byte accounting — and the real
//! cache must never exceed its capacity.
//!
//! Also pins the PR-2 stale-same-key bug as a named regression: a `put`
//! that rejects an oversized dataset must still drop the older version
//! cached under the same key, never leaving stale data for `get`.

use std::collections::BTreeMap;

use pado_core::runtime::{block_bytes, CacheKey, LruCache};
use pado_dag::{block_from_vec, Block, Value};
use proptest::prelude::*;

/// A dataset of `n` distinct I64 records.
fn dataset(salt: usize, n: usize) -> Block {
    block_from_vec(
        (0..n)
            .map(|i| Value::from((salt * 1_000 + i) as i64))
            .collect(),
    )
}

fn contents(b: &Block) -> Vec<i64> {
    b.iter().map(|v| v.as_i64().unwrap()).collect()
}

/// Reference model: same policy as `LruCache`, written against a plain
/// `BTreeMap` with explicit recency stamps.
struct Model {
    capacity: usize,
    clock: u64,
    used: usize,
    entries: BTreeMap<CacheKey, (Vec<i64>, usize, u64)>,
}

impl Model {
    fn new(capacity: usize) -> Self {
        Model {
            capacity,
            clock: 0,
            used: 0,
            entries: BTreeMap::new(),
        }
    }

    fn get(&mut self, key: CacheKey) -> Option<Vec<i64>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&key).map(|e| {
            e.2 = clock;
            e.0.clone()
        })
    }

    fn put(&mut self, key: CacheKey, data: Vec<i64>, bytes: usize) -> bool {
        // Stale same-key versions go first, even if the new one is then
        // rejected for size (the PR-2 rule).
        if let Some((_, old_bytes, _)) = self.entries.remove(&key) {
            self.used -= old_bytes;
        }
        if bytes > self.capacity {
            return false;
        }
        while self.used + bytes > self.capacity {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.2)
                .map(|(k, _)| *k)
                .expect("over capacity implies an entry");
            let (_, evicted_bytes, _) = self.entries.remove(&lru).unwrap();
            self.used -= evicted_bytes;
        }
        self.clock += 1;
        self.entries.insert(key, (data, bytes, self.clock));
        self.used += bytes;
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary op sequences: the cache agrees with the model on every
    /// `put` acceptance, every `get` hit/miss and its contents, and on
    /// `len`/`used_bytes` after every step — and never holds more than
    /// its capacity.
    #[test]
    fn cache_matches_reference_model(
        capacity in 8usize..64,
        ops in proptest::collection::vec((0u8..3, 0usize..6, 0usize..10), 1..80),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut model = Model::new(capacity);
        for (step, &(kind, key, size)) in ops.iter().enumerate() {
            if kind == 0 {
                let got = cache.get(key).map(|b| contents(&b));
                let want = model.get(key);
                prop_assert_eq!(
                    &got, &want,
                    "step {}: get({}) disagreed (got {:?}, model {:?})",
                    step, key, got, want
                );
            } else {
                // Two put kinds so the same key sees different datasets
                // (exercises the stale-version replacement path).
                let salt = key * 10 + kind as usize;
                let data = dataset(salt, size);
                let modeled = model.put(key, contents(&data), block_bytes(&data));
                let cached = cache.put(key, data);
                prop_assert_eq!(
                    cached, modeled,
                    "step {}: put({}, {} records) acceptance disagreed",
                    step, key, size
                );
            }
            prop_assert_eq!(cache.len(), model.entries.len(), "step {}: len", step);
            prop_assert_eq!(cache.used_bytes(), model.used, "step {}: used_bytes", step);
            prop_assert!(
                cache.used_bytes() <= capacity,
                "step {}: cache over capacity ({} > {})",
                step, cache.used_bytes(), capacity
            );
        }
        // Final sweep: every key the model holds is servable with the
        // exact same contents, and no extra keys survive in the cache.
        let mut keys = cache.keys();
        keys.sort_unstable();
        let model_keys: Vec<CacheKey> = model.entries.keys().copied().collect();
        prop_assert_eq!(keys, model_keys);
        for (key, (data, _, _)) in &model.entries {
            let got = cache.get(*key).map(|b| contents(&b));
            prop_assert_eq!(got.as_ref(), Some(data));
        }
    }
}

/// The PR-2 regression, by name: rejecting an oversized dataset must not
/// leave the *previous* version under the same key servable.
#[test]
fn oversized_put_drops_stale_same_key_version() {
    let mut cache = LruCache::new(block_bytes(&dataset(1, 2)));
    assert!(cache.put(7, dataset(1, 2)), "small dataset fits");
    assert!(cache.get(7).is_some());
    assert!(
        !cache.put(7, dataset(2, 100)),
        "oversized dataset must be rejected"
    );
    assert!(
        cache.get(7).is_none(),
        "stale version must not survive the rejected put"
    );
    assert_eq!(cache.used_bytes(), 0);
    assert!(cache.is_empty());
}
