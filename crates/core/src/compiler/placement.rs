//! Operator placement — Algorithm 1 of the paper (§3.1.1).
//!
//! The compiler walks the logical DAG in topological order and marks each
//! operator to run on either *reserved* (eviction-free) or *transient*
//! (eviction-prone) containers:
//!
//! - computational operators with **any** many-to-many or many-to-one
//!   in-edge go to reserved containers (an eviction of one of their tasks
//!   would force recomputation of many parent tasks);
//! - computational operators whose in-edges are **all** one-to-one **and**
//!   all come from reserved operators also go to reserved containers, to
//!   exploit data locality on the reserved side;
//! - everything else goes to transient containers, using them as
//!   aggressively as possible;
//! - `Read` sources go to transient containers (many containers load the
//!   input in parallel), `Created` sources to reserved containers (the
//!   created data is lightweight and must not be lost).

use pado_dag::{DepType, LogicalDag, OperatorKind, SourceKind};

use crate::error::CompileError;

/// Where an operator's tasks run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Eviction-prone containers harvested from latency-critical jobs.
    Transient,
    /// Eviction-free containers dedicated to the job.
    Reserved,
}

impl Placement {
    /// Short label used in plans and debug output.
    pub fn label(self) -> &'static str {
        match self {
            Placement::Transient => "transient",
            Placement::Reserved => "reserved",
        }
    }
}

/// Runs Algorithm 1, returning one placement per operator id.
///
/// # Errors
///
/// Fails if the DAG does not validate (e.g. contains a cycle).
pub fn place_operators(dag: &LogicalDag) -> Result<Vec<Placement>, CompileError> {
    dag.validate()?;
    let order = dag.topo_sort()?;
    let mut placement = vec![Placement::Transient; dag.len()];
    for op_id in order {
        let op = dag.op(op_id);
        let in_edges = dag.in_edges(op_id);
        if !in_edges.is_empty() {
            // Computational operator.
            let any_wide = in_edges.iter().any(|e| e.dep.is_wide());
            let all_o2o = in_edges.iter().all(|e| e.dep == DepType::OneToOne);
            let all_from_reserved = in_edges
                .iter()
                .all(|e| placement[e.src] == Placement::Reserved);
            placement[op_id] = if any_wide || (all_o2o && all_from_reserved) {
                Placement::Reserved
            } else {
                Placement::Transient
            };
        } else {
            // Source operator.
            placement[op_id] = match &op.kind {
                OperatorKind::Source {
                    kind: SourceKind::Read,
                    ..
                } => Placement::Transient,
                OperatorKind::Source {
                    kind: SourceKind::Created,
                    ..
                } => Placement::Reserved,
                // `validate` guarantees only sources lack in-edges.
                _ => unreachable!("non-source operator without in-edges"),
            };
        }
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};

    fn ident() -> ParDoFn {
        ParDoFn::per_element(|v, e| e(v.clone()))
    }

    /// Figure 3(a): Read -> Map -> Reduce (m-m) -> Sink.
    #[test]
    fn map_reduce_placement() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        let map = read.par_do("Map", ident());
        let reduce = map.combine_per_key("Reduce", CombineFn::sum_i64());
        let sink = reduce.sink("Sink");
        let (r, m, rd, s) = (read.op_id(), map.op_id(), reduce.op_id(), sink.op_id());
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        assert_eq!(pl[r], Placement::Transient);
        assert_eq!(pl[m], Placement::Transient);
        assert_eq!(pl[rd], Placement::Reserved);
        // Sink has a single o-o edge from a reserved operator: reserved for
        // locality.
        assert_eq!(pl[s], Placement::Reserved);
    }

    /// Figure 3(b): the MLR iteration structure.
    #[test]
    fn mlr_placement() {
        let p = Pipeline::new();
        let train = p.read(
            "Read Training Data",
            8,
            SourceFn::from_vec(vec![Value::Unit]),
        );
        let model0 = p.create("Create 1st Model", vec![Value::from(0.0)]);
        let grad = train.par_do_with_side("Compute Gradient", &model0, ident());
        let agg = grad.aggregate("Aggregate Gradients", CombineFn::sum_vector());
        let model1 = agg.par_do_zip("Compute 2nd Model", &model0, ident());
        let ids = (
            train.op_id(),
            model0.op_id(),
            grad.op_id(),
            agg.op_id(),
            model1.op_id(),
        );
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        assert_eq!(pl[ids.0], Placement::Transient, "read training data");
        assert_eq!(pl[ids.1], Placement::Reserved, "created model");
        assert_eq!(pl[ids.2], Placement::Transient, "compute gradient");
        assert_eq!(pl[ids.3], Placement::Reserved, "aggregate (m-o)");
        assert_eq!(
            pl[ids.4],
            Placement::Reserved,
            "compute 2nd model: all o-o from reserved"
        );
    }

    /// An operator with only a broadcast (o-m) in-edge stays transient.
    #[test]
    fn broadcast_only_consumer_is_transient() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        let model = p.create("Model", vec![Value::from(1.0)]);
        let consume = read.par_do_with_side("Consume", &model, ident());
        let id = consume.op_id();
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        // In-edges are o-o (from transient) + o-m: not wide, not all o-o
        // from reserved, hence transient.
        assert_eq!(pl[id], Placement::Transient);
    }

    /// o-o from a transient parent stays transient even when another parent
    /// is reserved.
    #[test]
    fn mixed_o2o_parents_stay_transient() {
        let p = Pipeline::new();
        let read = p.read("Read", 2, SourceFn::from_vec(vec![Value::Unit]));
        let created = p.create("Created", vec![Value::Unit]);
        let zip = read.par_do_zip("Zip", &created, ident());
        let id = zip.op_id();
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        assert_eq!(pl[id], Placement::Transient);
    }

    /// Chains after a reserved operator stay reserved through o-o edges.
    #[test]
    fn reserved_locality_chain() {
        let p = Pipeline::new();
        let read = p.read("Read", 2, SourceFn::from_vec(vec![Value::Unit]));
        let gbk = read.group_by_key("Group");
        let post = gbk.par_do("Post", ident());
        let post2 = post.par_do("Post2", ident());
        let (g, a, b) = (gbk.op_id(), post.op_id(), post2.op_id());
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        assert_eq!(pl[g], Placement::Reserved);
        assert_eq!(pl[a], Placement::Reserved);
        assert_eq!(pl[b], Placement::Reserved);
    }

    #[test]
    fn invalid_dag_is_rejected() {
        let dag = pado_dag::LogicalDag::new();
        assert!(matches!(
            place_operators(&dag),
            Err(CompileError::InvalidDag(_))
        ));
    }
}
