//! Lifetime-aware placement — the paper's §6 "Operator Placement
//! Optimization" extension.
//!
//! When the resource manager can classify transient resources by
//! predicted lifetime (as Harvest does from historical data), Pado can
//! place the transient operators whose eviction would be most expensive
//! on the *longer-lived* transient resources, keeping the cheap-to-redo
//! operators on the short, unpredictable ones. This module scores each
//! operator's expected recomputation cost from the DAG structure and
//! splits the transient operators into lifetime classes.

use pado_dag::{DepType, LogicalDag, OpId};

use crate::compiler::placement::Placement;
use crate::error::CompileError;

/// Lifetime class of a transient operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifetimeClass {
    /// Runs on reserved containers (placed by Algorithm 1).
    Reserved,
    /// High recomputation cost: prefer long-lived transient resources.
    LongTransient,
    /// Cheap to redo: run on the shortest-lived, most abundant resources.
    ShortTransient,
}

/// Scores every operator's *recomputation cost*: the expected number of
/// task executions needed to recover one lost task of the operator,
/// counting recursively through transient ancestors (reserved ancestors'
/// outputs are preserved and contribute nothing).
///
/// Wide and broadcast in-edges multiply by the parent's task count — one
/// lost task re-pulls every parent task — which is exactly the intuition
/// behind Algorithm 1's reserved placement, extended here to grade the
/// operators that stayed transient.
///
/// # Errors
///
/// Fails if the DAG does not validate.
pub fn recomputation_scores(
    dag: &LogicalDag,
    placement: &[Placement],
) -> Result<Vec<f64>, CompileError> {
    let order = dag.topo_sort()?;
    let par = crate::compiler::plan::resolve_all_parallelism(
        dag,
        &crate::compiler::plan::PlanConfig::default(),
    )?;
    let mut scores = vec![0.0f64; dag.len()];
    for op in order {
        let mut s = 1.0;
        for e in dag.in_edges(op) {
            if placement[e.src] == Placement::Reserved {
                continue; // Preserved on eviction-free storage.
            }
            let src_par = par[e.src].max(1) as f64;
            let fanin = match e.dep {
                DepType::OneToOne => 1.0,
                DepType::OneToMany | DepType::ManyToOne | DepType::ManyToMany => src_par,
            };
            s += fanin * scores[e.src];
        }
        scores[op] = s;
    }
    Ok(scores)
}

/// Splits operators into lifetime classes: reserved operators keep their
/// class; the `long_fraction` most expensive transient operators (by
/// recomputation score, ties broken toward later operators, which sit
/// deeper in the DAG) go to long-lived transient resources.
///
/// # Errors
///
/// Fails if the DAG does not validate.
pub fn classify(
    dag: &LogicalDag,
    placement: &[Placement],
    long_fraction: f64,
) -> Result<Vec<LifetimeClass>, CompileError> {
    let scores = recomputation_scores(dag, placement)?;
    let mut transient: Vec<OpId> = dag
        .op_ids()
        .filter(|&op| placement[op] == Placement::Transient)
        .collect();
    transient.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    let n_long = ((transient.len() as f64) * long_fraction.clamp(0.0, 1.0)).round() as usize;
    let long_set: std::collections::HashSet<OpId> =
        transient.iter().rev().take(n_long).copied().collect();
    Ok(dag
        .op_ids()
        .map(|op| {
            if placement[op] == Placement::Reserved {
                LifetimeClass::Reserved
            } else if long_set.contains(&op) {
                LifetimeClass::LongTransient
            } else {
                LifetimeClass::ShortTransient
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::placement::place_operators;
    use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};

    fn ident() -> ParDoFn {
        ParDoFn::per_element(|v, e| e(v.clone()))
    }

    #[test]
    fn deeper_transient_chains_score_higher() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        let a = read.par_do("A", ident());
        let b = a.par_do("B", ident());
        let ids = (read.op_id(), a.op_id(), b.op_id());
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let s = recomputation_scores(&dag, &pl).unwrap();
        assert!(s[ids.0] < s[ids.1]);
        assert!(s[ids.1] < s[ids.2]);
    }

    #[test]
    fn reserved_parents_contribute_nothing() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        let agg = read.combine_per_key("Agg", CombineFn::sum_i64());
        // Consumer of a reserved output plus a broadcast side input: the
        // reserved parent adds no recomputation cost.
        let model = p.create("Model", vec![Value::Unit]);
        let post = read.par_do_with_side("Post", &model, ident());
        let ids = (read.op_id(), agg.op_id(), post.op_id());
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let s = recomputation_scores(&dag, &pl).unwrap();
        // The reserved aggregate still counts its transient parents (its
        // inputs must be re-pushed if lost pre-commit): 1 + 4 x read.
        assert_eq!(s[ids.1], 1.0 + 4.0 * s[ids.0]);
        // Post's reserved broadcast parent adds nothing; only the
        // transient one-to-one read edge counts: 1 + score(read).
        assert_eq!(s[ids.2], 1.0 + s[ids.0]);
    }

    #[test]
    fn classify_marks_most_expensive_transients_long() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        let a = read.par_do("A", ident());
        let b = a.par_do("B", ident());
        let c = b.par_do("C", ident());
        let ids = (read.op_id(), c.op_id());
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let classes = classify(&dag, &pl, 0.25).unwrap();
        assert_eq!(classes[ids.1], LifetimeClass::LongTransient, "deepest op");
        assert_eq!(classes[ids.0], LifetimeClass::ShortTransient);
    }

    #[test]
    fn classify_fraction_bounds() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        read.par_do("A", ident());
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let none = classify(&dag, &pl, 0.0).unwrap();
        assert!(none.iter().all(|c| *c != LifetimeClass::LongTransient));
        let all = classify(&dag, &pl, 1.0).unwrap();
        assert!(all.iter().all(|c| *c != LifetimeClass::ShortTransient));
    }

    #[test]
    fn reserved_ops_keep_reserved_class() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        let agg = read.combine_per_key("Agg", CombineFn::sum_i64());
        let agg_id = agg.op_id();
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let classes = classify(&dag, &pl, 0.5).unwrap();
        assert_eq!(classes[agg_id], LifetimeClass::Reserved);
    }
}
