//! Physical execution plans — the execution plan generator (§3.2.2).
//!
//! For each Pado Stage, neighboring operators on identical container types
//! connected by one-to-one edges are *fused* into a single physical
//! operator; each fused operator is expanded into parallel tasks; and each
//! logical edge becomes a transfer spec (direct / broadcast / gather /
//! hash shuffle) between tasks.
//!
//! Because a transient operator may belong to multiple stages (see
//! [`mod@crate::compiler::partition`]), fused operators are *per-stage
//! instances* of logical operators.

use std::collections::HashMap;

use pado_dag::{DepType, LogicalDag, OpId, OperatorKind};

use crate::compiler::partition::{StageDag, StageId};
use crate::compiler::placement::Placement;
use crate::error::CompileError;

/// Identifier of a fused physical operator (a dense index into
/// [`PhysicalPlan::fops`]).
pub type FopId = usize;

/// Where a plan edge's data lands in the consumer's task input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputSlot {
    /// The `i`-th main input (one-to-one, many-to-one, or many-to-many).
    Main(usize),
    /// The broadcast side input (one-to-many).
    Side,
}

/// A fused physical operator: a chain of logical operators executed
/// back-to-back by each task.
#[derive(Debug, Clone)]
pub struct Fop {
    /// Plan-wide id.
    pub id: FopId,
    /// Owning stage.
    pub stage: StageId,
    /// Fused logical operators, in execution order. Only `chain[0]` has
    /// external inputs.
    pub chain: Vec<OpId>,
    /// Container type this operator's tasks run on.
    pub placement: Placement,
    /// Number of parallel tasks.
    pub parallelism: usize,
}

impl Fop {
    /// The logical operator producing this fop's output.
    pub fn tail(&self) -> OpId {
        *self.chain.last().expect("chain is never empty")
    }

    /// The logical operator receiving this fop's input.
    pub fn head(&self) -> OpId {
        self.chain[0]
    }
}

/// A physical data transfer between two fused operators.
#[derive(Debug, Clone, Copy)]
pub struct PlanEdge {
    /// Producer fop.
    pub src: FopId,
    /// Consumer fop.
    pub dst: FopId,
    /// Dependency type (decides the routing pattern).
    pub dep: DepType,
    /// Input slot on the consumer.
    pub slot: InputSlot,
    /// Whether consumers should cache this input in executor memory
    /// (task input caching, §3.2.7).
    pub cache: bool,
    /// Whether producer and consumer live in different stages (the data
    /// is then read from preserved stage outputs on reserved executors).
    pub cross_stage: bool,
    /// Which member of the consumer's fused chain this edge feeds. Main
    /// edges always feed member `0`; broadcast side inputs may feed
    /// interior members of a fused chain.
    pub member: usize,
}

/// A complete physical plan for one job.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// Fused operators, grouped by stage in stage-topological order.
    pub fops: Vec<Fop>,
    /// Transfers between fused operators.
    pub edges: Vec<PlanEdge>,
    /// The stage DAG the plan was derived from.
    pub stage_dag: StageDag,
    /// Placement of every logical operator.
    pub placement: Vec<Placement>,
}

impl PhysicalPlan {
    /// In-edges of a fop, ordered with main slots first (by slot index).
    pub fn in_edges(&self, fop: FopId) -> Vec<PlanEdge> {
        let mut v: Vec<PlanEdge> = self
            .edges
            .iter()
            .copied()
            .filter(|e| e.dst == fop)
            .collect();
        v.sort_by_key(|e| match e.slot {
            InputSlot::Main(i) => (0, i),
            InputSlot::Side => (1, 0),
        });
        v
    }

    /// Out-edges of a fop.
    pub fn out_edges(&self, fop: FopId) -> Vec<PlanEdge> {
        self.edges
            .iter()
            .copied()
            .filter(|e| e.src == fop)
            .collect()
    }

    /// Fops of the given stage, in topological order within the stage.
    pub fn stage_fops(&self, stage: StageId) -> Vec<FopId> {
        self.fops
            .iter()
            .filter(|f| f.stage == stage)
            .map(|f| f.id)
            .collect()
    }

    /// Total number of tasks across all fops (the paper's "original
    /// tasks" denominator for relaunch ratios).
    pub fn total_tasks(&self) -> usize {
        self.fops.iter().map(|f| f.parallelism).sum()
    }

    /// The fop instance of logical operator `op` within `stage`, if any.
    pub fn fop_of(&self, stage: StageId, op: OpId) -> Option<FopId> {
        self.fops
            .iter()
            .find(|f| f.stage == stage && f.chain.contains(&op))
            .map(|f| f.id)
    }

    /// Renders the plan in Graphviz `dot` format: one cluster per Pado
    /// Stage, fops as nodes (labelled with their fused chain, placement,
    /// and parallelism), transfers as edges.
    pub fn to_dot(&self, dag: &LogicalDag) -> String {
        let mut s = String::from("digraph physical {\n  rankdir=LR;\n  compound=true;\n");
        for stage in &self.stage_dag.stages {
            s.push_str(&format!(
                "  subgraph cluster_{} {{\n    label=\"stage {}\";\n",
                stage.id, stage.id
            ));
            for fop in self.fops.iter().filter(|f| f.stage == stage.id) {
                let chain: Vec<&str> = fop
                    .chain
                    .iter()
                    .map(|&op| dag.op(op).name.as_str())
                    .collect();
                let style = match fop.placement {
                    Placement::Reserved => "filled",
                    Placement::Transient => "dashed",
                };
                s.push_str(&format!(
                    "    f{} [label=\"{} x{}\" style={}];\n",
                    fop.id,
                    chain.join(" -> "),
                    fop.parallelism,
                    style
                ));
            }
            s.push_str("  }\n");
        }
        for e in &self.edges {
            s.push_str(&format!(
                "  f{} -> f{} [label=\"{}\"];\n",
                e.src, e.dst, e.dep
            ));
        }
        s.push_str("}\n");
        s
    }
}

/// Default task parallelism for operators that neither declare one nor can
/// inherit one (e.g. shuffle consumers).
pub const DEFAULT_PARALLELISM: usize = 8;

/// Options controlling plan generation.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Parallelism assigned to shuffle consumers without a declared value.
    pub default_parallelism: usize,
    /// Whether to fuse one-to-one chains (disable to inspect unfused
    /// plans; ablation benches compare both).
    pub fusion: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            default_parallelism: DEFAULT_PARALLELISM,
            fusion: true,
        }
    }
}

/// Builds the physical plan for a placed, partitioned logical DAG.
///
/// # Errors
///
/// Fails if parallelism cannot be resolved for some operator.
pub fn build_plan(
    dag: &LogicalDag,
    placement: &[Placement],
    stage_dag: &StageDag,
    config: &PlanConfig,
) -> Result<PhysicalPlan, CompileError> {
    let order = dag.topo_sort()?;
    let topo_pos: HashMap<OpId, usize> = order.iter().enumerate().map(|(i, &o)| (o, i)).collect();

    // Resolve parallelism per (stage, op) instance. Instances of the same
    // logical operator share the resolution, computed in topological order.
    let par = resolve_all_parallelism(dag, config)?;

    // Instantiate (stage, op) fops, fusing one-to-one chains.
    let mut fops: Vec<Fop> = Vec::new();
    let mut instance: HashMap<(StageId, OpId), FopId> = HashMap::new();
    for stage in &stage_dag.stages {
        // Members in topological order.
        let mut members = stage.ops.clone();
        members.sort_by_key(|op| topo_pos[op]);
        for &op in &members {
            // Main (non-broadcast) in-edges decide fusability; broadcast
            // side inputs may be wired into interior chain members.
            let mains: Vec<_> = dag
                .in_edges(op)
                .into_iter()
                .filter(|e| e.dep != DepType::OneToMany)
                .collect();
            let fused_into = if config.fusion && mains.len() == 1 {
                let e = mains[0];
                let in_stage = stage.contains(e.src);
                let same_side = placement[e.src] == placement[op];
                let producer_single_consumer = dag.out_edges(e.src).len() == 1;
                let same_par = par[e.src] == par[op];
                if e.dep == DepType::OneToOne
                    && in_stage
                    && same_side
                    && producer_single_consumer
                    && same_par
                {
                    instance.get(&(stage.id, e.src)).copied()
                } else {
                    None
                }
            } else {
                None
            };
            match fused_into {
                Some(fid) => {
                    fops[fid].chain.push(op);
                    instance.insert((stage.id, op), fid);
                }
                None => {
                    let fid = fops.len();
                    fops.push(Fop {
                        id: fid,
                        stage: stage.id,
                        chain: vec![op],
                        placement: placement[op],
                        parallelism: par[op],
                    });
                    instance.insert((stage.id, op), fid);
                }
            }
        }
    }

    // Build plan edges: main edges of the chain head, plus broadcast side
    // edges of every chain member. Producers resolve to the fop instance
    // in the same stage if the producer is a member, otherwise to the
    // producer's owning reserved stage.
    let mut edges: Vec<PlanEdge> = Vec::new();
    for fop in &fops {
        for (pos, op) in fop.chain.iter().enumerate() {
            let mut main_slot = 0usize;
            for e in dag.in_edges(*op) {
                let slot = if e.dep == DepType::OneToMany {
                    InputSlot::Side
                } else {
                    if pos > 0 {
                        continue; // Interior main inputs come from the chain.
                    }
                    let s = InputSlot::Main(main_slot);
                    main_slot += 1;
                    s
                };
                let stage = &stage_dag.stages[fop.stage];
                let (src_fop, cross_stage) = if stage.contains(e.src) {
                    (instance[&(fop.stage, e.src)], false)
                } else {
                    let src_stage = stage_dag
                        .stage_of_anchor(e.src)
                        .or_else(|| stage_dag.stages_containing(e.src).first().copied())
                        .expect("reserved producer has an owning stage");
                    (instance[&(src_stage, e.src)], true)
                };
                edges.push(PlanEdge {
                    src: src_fop,
                    dst: fop.id,
                    dep: e.dep,
                    slot,
                    cache: dag.op(e.src).cache_input,
                    cross_stage,
                    member: pos,
                });
            }
        }
    }

    Ok(PhysicalPlan {
        fops,
        edges,
        stage_dag: stage_dag.clone(),
        placement: placement.to_vec(),
    })
}

/// Resolves every operator's parallelism in topological order.
///
/// # Errors
///
/// Fails when an operator's parallelism cannot be resolved.
pub fn resolve_all_parallelism(
    dag: &LogicalDag,
    config: &PlanConfig,
) -> Result<Vec<usize>, CompileError> {
    let order = dag.topo_sort()?;
    let mut par: Vec<Option<usize>> = vec![None; dag.len()];
    for &op in &order {
        par[op] = Some(resolve_parallelism(dag, &par, op, config)?);
    }
    Ok(par.into_iter().map(|p| p.expect("resolved")).collect())
}

/// Resolves one operator's parallelism: declared > inherited (one-to-one)
/// > shuffle default > 1 for global aggregates.
fn resolve_parallelism(
    dag: &LogicalDag,
    resolved: &[Option<usize>],
    op: OpId,
    config: &PlanConfig,
) -> Result<usize, CompileError> {
    if let Some(p) = dag.op(op).parallelism {
        return Ok(p);
    }
    let in_edges = dag.in_edges(op);
    // Inherit across the first one-to-one main edge.
    for e in &in_edges {
        if e.dep == DepType::OneToOne {
            if let Some(p) = resolved[e.src] {
                return Ok(p);
            }
        }
    }
    if in_edges.iter().any(|e| e.dep == DepType::ManyToOne) {
        return Ok(1);
    }
    if in_edges.iter().any(|e| e.dep == DepType::ManyToMany) {
        return Ok(config.default_parallelism);
    }
    if in_edges.iter().any(|e| e.dep == DepType::OneToMany) {
        return Ok(config.default_parallelism);
    }
    // A source without declared parallelism.
    match &dag.op(op).kind {
        OperatorKind::Source { .. } => Ok(1),
        _ => Err(CompileError::UnresolvedParallelism(op)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::partition::partition;
    use crate::compiler::placement::place_operators;
    use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};

    fn ident() -> ParDoFn {
        ParDoFn::per_element(|v, e| e(v.clone()))
    }

    fn compile(dag: &LogicalDag) -> PhysicalPlan {
        let pl = place_operators(dag).unwrap();
        let sd = partition(dag, &pl).unwrap();
        build_plan(dag, &pl, &sd, &PlanConfig::default()).unwrap()
    }

    #[test]
    fn map_reduce_fuses_read_and_map() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        let map = read.par_do("Map", ident());
        let reduce = map.combine_per_key("Reduce", CombineFn::sum_i64());
        reduce.sink("Sink");
        let dag = p.build().unwrap();
        let plan = compile(&dag);
        // Read+Map fused (transient), Reduce alone, Sink alone.
        let chains: Vec<usize> = plan.fops.iter().map(|f| f.chain.len()).collect();
        assert_eq!(chains, vec![2, 1, 1]);
        assert_eq!(plan.fops[0].placement, Placement::Transient);
        assert_eq!(plan.fops[0].parallelism, 4);
        // Shuffle edge between fused map and reduce.
        let e = plan.in_edges(1);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].dep, DepType::ManyToMany);
        assert!(!e[0].cross_stage);
        // Sink reads across the stage boundary.
        let e = plan.in_edges(2);
        assert!(e[0].cross_stage);
    }

    #[test]
    fn fusion_can_be_disabled() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        read.par_do("Map", ident())
            .combine_per_key("Reduce", CombineFn::sum_i64());
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let sd = partition(&dag, &pl).unwrap();
        let cfg = PlanConfig {
            fusion: false,
            ..PlanConfig::default()
        };
        let plan = build_plan(&dag, &pl, &sd, &cfg).unwrap();
        assert!(plan.fops.iter().all(|f| f.chain.len() == 1));
        assert_eq!(plan.fops.len(), 3);
    }

    #[test]
    fn fan_out_is_not_fused() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        let a = read.par_do("A", ident());
        a.combine_per_key("AggA", CombineFn::sum_i64());
        a.combine_per_key("AggB", CombineFn::sum_i64());
        let dag = p.build().unwrap();
        let plan = compile(&dag);
        // `A` has two consumers; `Read -> A` still fuses (A has a single
        // in-edge and Read a single consumer), but A is instantiated per
        // stage, giving two copies of the fused chain.
        let transient_fops: Vec<_> = plan
            .fops
            .iter()
            .filter(|f| f.placement == Placement::Transient)
            .collect();
        assert_eq!(transient_fops.len(), 2);
        assert!(transient_fops.iter().all(|f| f.chain.len() == 2));
    }

    #[test]
    fn declared_parallelism_mismatch_blocks_fusion() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        read.par_do("Map", ident()).with_parallelism(8);
        let dag = p.build().unwrap();
        let plan = compile(&dag);
        assert!(plan.fops.iter().all(|f| f.chain.len() == 1));
    }

    #[test]
    fn mlr_plan_side_input_slots() {
        let p = Pipeline::new();
        let train = p.read("Read", 8, SourceFn::from_vec(vec![Value::Unit]));
        let model0 = p.create("Model0", vec![Value::from(0.0)]);
        let grad = train.par_do_with_side("Grad", &model0, ident());
        let agg = grad.aggregate("Agg", CombineFn::sum_vector());
        agg.par_do_zip("Model1", &model0, ident());
        let dag = p.build().unwrap();
        let plan = compile(&dag);
        // Find the fop containing Grad (fused with Read).
        let grad_fop = plan
            .fops
            .iter()
            .find(|f| f.chain.len() == 2)
            .expect("read+grad fused");
        let ins = plan.in_edges(grad_fop.id);
        assert_eq!(ins.len(), 1, "only the broadcast side input is external");
        assert_eq!(ins[0].slot, InputSlot::Side);
        assert_eq!(ins[0].member, 1, "side input feeds the fused Grad member");
        assert!(ins[0].cross_stage);
        // Model1 has two main inputs in declaration order.
        let m1_fop = plan
            .fops
            .iter()
            .find(|f| plan.in_edges(f.id).len() == 2)
            .expect("model1 fop");
        let ins = plan.in_edges(m1_fop.id);
        assert_eq!(ins[0].slot, InputSlot::Main(0));
        assert_eq!(ins[1].slot, InputSlot::Main(1));
    }

    #[test]
    fn aggregate_parallelism_is_one_and_shuffle_default_applies() {
        let p = Pipeline::new();
        let read = p.read("Read", 6, SourceFn::from_vec(vec![Value::Unit]));
        let gbk = read.group_by_key("G");
        let agg = read.aggregate("A", CombineFn::sum_i64());
        let (g, a) = (gbk.op_id(), agg.op_id());
        let dag = p.build().unwrap();
        let plan = compile(&dag);
        let g_fop = plan.fops.iter().find(|f| f.chain == vec![g]).unwrap();
        let a_fop = plan.fops.iter().find(|f| f.chain == vec![a]).unwrap();
        assert_eq!(g_fop.parallelism, DEFAULT_PARALLELISM);
        assert_eq!(a_fop.parallelism, 1);
    }

    #[test]
    fn cache_flag_propagates_to_edges() {
        let p = Pipeline::new();
        let data = p.read("Read", 2, SourceFn::from_vec(vec![Value::Unit]));
        let model = p.create("Model", vec![Value::from(0.0)]).cached();
        let grad = data.par_do_with_side("Grad", &model, ident());
        grad.aggregate("Agg", CombineFn::sum_vector());
        let dag = p.build().unwrap();
        let plan = compile(&dag);
        let cached: Vec<_> = plan.edges.iter().filter(|e| e.cache).collect();
        assert_eq!(cached.len(), 1);
        assert_eq!(cached[0].slot, InputSlot::Side);
    }

    #[test]
    fn total_tasks_counts_all_fops() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        read.group_by_key("G").with_parallelism(3);
        let dag = p.build().unwrap();
        let plan = compile(&dag);
        assert_eq!(plan.total_tasks(), 4 + 3);
    }

    #[test]
    fn shared_transient_producer_instantiated_per_stage() {
        let p = Pipeline::new();
        let read = p.read("Read", 2, SourceFn::from_vec(vec![Value::Unit]));
        read.combine_per_key("A", CombineFn::sum_i64());
        read.combine_per_key("B", CombineFn::sum_i64());
        let dag = p.build().unwrap();
        let plan = compile(&dag);
        let read_instances = plan.fops.iter().filter(|f| f.chain.contains(&0)).count();
        assert_eq!(read_instances, 2);
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::compiler::{partition, place_operators};
    use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};

    #[test]
    fn dot_renders_stages_and_edges() {
        let p = Pipeline::new();
        p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]))
            .par_do("Map", ParDoFn::per_element(|v, e| e(v.clone())))
            .combine_per_key("Reduce", CombineFn::sum_i64())
            .sink("Sink");
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let sd = partition(&dag, &pl).unwrap();
        let plan = build_plan(&dag, &pl, &sd, &PlanConfig::default()).unwrap();
        let dot = plan.to_dot(&dag);
        assert!(dot.contains("digraph physical"));
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("Read -> Map"));
        assert!(dot.contains("many-to-many"));
        assert!(dot.contains("dashed"), "transient fops are dashed");
        assert!(dot.contains("filled"), "reserved fops are filled");
    }
}
