//! Stage partitioning — Algorithm 2 of the paper (§3.1.2).
//!
//! The marked logical DAG is cut into *Pado Stages*, the unit of execution
//! and of eviction recovery. Unlike shuffle-boundary stages in Spark-like
//! engines, Pado stages are cut at *placement* boundaries: a new stage is
//! created at every operator placed on reserved containers (and at every
//! operator with no outgoing edges), and the stage recursively absorbs its
//! transient parent operators. Consequently every stage starts on transient
//! containers (if it has any transient operators) and finishes on reserved
//! containers or at the end of the DAG, so all stage outputs are retained
//! on eviction-free resources and children stages can fetch them steadily.
//!
//! As in the paper's recursion, a transient operator reachable from two
//! different anchors is absorbed by *both* stages; the runtime re-executes
//! it per stage. Reserved operators belong to exactly one stage.

use std::collections::BTreeSet;

use pado_dag::{LogicalDag, OpId};

use crate::compiler::placement::Placement;
use crate::error::CompileError;

/// Identifier of a stage within one [`StageDag`] (a dense index).
pub type StageId = usize;

/// A Pado Stage: a subgraph anchored at a reserved or terminal operator.
#[derive(Debug, Clone)]
pub struct Stage {
    /// The stage id.
    pub id: StageId,
    /// The reserved (or terminal) operator that created the stage.
    pub anchor: OpId,
    /// All member operators, in ascending operator id order. Contains the
    /// anchor plus the recursively absorbed transient parents.
    pub ops: Vec<OpId>,
    /// Parent stages whose preserved outputs this stage reads.
    pub parents: Vec<StageId>,
}

impl Stage {
    /// Whether the given operator belongs to this stage.
    pub fn contains(&self, op: OpId) -> bool {
        self.ops.binary_search(&op).is_ok()
    }
}

/// The DAG of Pado Stages produced by Algorithm 2.
#[derive(Debug, Clone)]
pub struct StageDag {
    /// Stages in creation (topological) order.
    pub stages: Vec<Stage>,
    /// For reserved operators, the stage anchored at them.
    anchor_of: Vec<Option<StageId>>,
}

impl StageDag {
    /// The stage anchored at the given reserved operator, if any.
    pub fn stage_of_anchor(&self, op: OpId) -> Option<StageId> {
        self.anchor_of.get(op).copied().flatten()
    }

    /// All stages that contain the given operator.
    pub fn stages_containing(&self, op: OpId) -> Vec<StageId> {
        self.stages
            .iter()
            .filter(|s| s.contains(op))
            .map(|s| s.id)
            .collect()
    }

    /// Child stages of `id`.
    pub fn children(&self, id: StageId) -> Vec<StageId> {
        self.stages
            .iter()
            .filter(|s| s.parents.contains(&id))
            .map(|s| s.id)
            .collect()
    }

    /// A topological order over stages (stages are created in topological
    /// order of their anchors, so creation order is already topological).
    pub fn topo_order(&self) -> Vec<StageId> {
        (0..self.stages.len()).collect()
    }
}

/// Runs Algorithm 2 over a placed logical DAG.
///
/// # Errors
///
/// Fails if the DAG does not validate.
pub fn partition(dag: &LogicalDag, placement: &[Placement]) -> Result<StageDag, CompileError> {
    dag.validate()?;
    let order = dag.topo_sort()?;
    let mut stages: Vec<Stage> = Vec::new();
    let mut anchor_of: Vec<Option<StageId>> = vec![None; dag.len()];

    for &op in &order {
        let is_reserved = placement[op] == Placement::Reserved;
        let is_terminal = dag.out_edges(op).is_empty();
        if is_reserved || is_terminal {
            // A reserved operator that is also terminal creates exactly one
            // stage (the two conditions are one `or` in the paper).
            if anchor_of[op].is_some() {
                continue;
            }
            let id = stages.len();
            let mut members = BTreeSet::new();
            let mut parents = BTreeSet::new();
            recursive_add(dag, placement, &anchor_of, op, &mut members, &mut parents);
            anchor_of[op] = Some(id);
            stages.push(Stage {
                id,
                anchor: op,
                ops: members.into_iter().collect(),
                parents: parents.into_iter().collect(),
            });
        }
    }

    Ok(StageDag { stages, anchor_of })
}

/// The paper's `RECURSIVEADD`: add `op` to the stage, recurse into
/// transient parents, and record stage-dependency edges for reserved
/// parents (whose stages were created earlier in topological order).
fn recursive_add(
    dag: &LogicalDag,
    placement: &[Placement],
    anchor_of: &[Option<StageId>],
    op: OpId,
    members: &mut BTreeSet<OpId>,
    parents: &mut BTreeSet<StageId>,
) {
    if !members.insert(op) {
        return;
    }
    for edge in dag.in_edges(op) {
        let parent = edge.src;
        match placement[parent] {
            Placement::Transient => {
                recursive_add(dag, placement, anchor_of, parent, members, parents);
            }
            Placement::Reserved => {
                // The parent operator belongs to a previously created stage.
                if let Some(ps) = anchor_of[parent] {
                    parents.insert(ps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::placement::place_operators;
    use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};

    fn ident() -> ParDoFn {
        ParDoFn::per_element(|v, e| e(v.clone()))
    }

    /// Figure 3(a): Map-Reduce partitions into a single logical stage for
    /// Reduce (absorbing Read and Map), plus the reserved sink's stage.
    #[test]
    fn map_reduce_stages() {
        let p = Pipeline::new();
        let read = p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]));
        let map = read.par_do("Map", ident());
        let reduce = map.combine_per_key("Reduce", CombineFn::sum_i64());
        let sink = reduce.sink("Sink");
        let ids = (read.op_id(), map.op_id(), reduce.op_id(), sink.op_id());
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let sd = partition(&dag, &pl).unwrap();
        assert_eq!(sd.stages.len(), 2);
        // Stage 0 anchored at Reduce contains Read, Map, Reduce.
        assert_eq!(sd.stages[0].anchor, ids.2);
        assert_eq!(sd.stages[0].ops, vec![ids.0, ids.1, ids.2]);
        assert!(sd.stages[0].parents.is_empty());
        // Stage 1 anchored at the reserved Sink depends on stage 0.
        assert_eq!(sd.stages[1].anchor, ids.3);
        assert_eq!(sd.stages[1].ops, vec![ids.3]);
        assert_eq!(sd.stages[1].parents, vec![0]);
    }

    /// Figure 3(b): MLR has one stage per reserved operator: the created
    /// model, the aggregation (absorbing read + gradient), and the model
    /// update.
    #[test]
    fn mlr_stages() {
        let p = Pipeline::new();
        let train = p.read("Read", 8, SourceFn::from_vec(vec![Value::Unit]));
        let model0 = p.create("Model0", vec![Value::from(0.0)]);
        let grad = train.par_do_with_side("Grad", &model0, ident());
        let agg = grad.aggregate("Agg", CombineFn::sum_vector());
        let model1 = agg.par_do_zip("Model1", &model0, ident());
        let ids = (
            train.op_id(),
            model0.op_id(),
            grad.op_id(),
            agg.op_id(),
            model1.op_id(),
        );
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let sd = partition(&dag, &pl).unwrap();
        assert_eq!(sd.stages.len(), 3, "three reserved operators -> 3 stages");
        // Stage for Model0.
        assert_eq!(sd.stages[0].anchor, ids.1);
        assert_eq!(sd.stages[0].ops, vec![ids.1]);
        // Stage for Agg absorbs Read and Grad; depends on Model0's stage
        // (broadcast edge into Grad).
        assert_eq!(sd.stages[1].anchor, ids.3);
        assert_eq!(sd.stages[1].ops, vec![ids.0, ids.2, ids.3]);
        assert_eq!(sd.stages[1].parents, vec![0]);
        // Stage for Model1 depends on both reserved parents' stages.
        assert_eq!(sd.stages[2].anchor, ids.4);
        assert_eq!(sd.stages[2].ops, vec![ids.4]);
        assert_eq!(sd.stages[2].parents, vec![0, 1]);
    }

    /// A DAG ending on a transient operator still gets a terminal stage.
    #[test]
    fn transient_terminal_gets_own_stage() {
        let p = Pipeline::new();
        let read = p.read("Read", 2, SourceFn::from_vec(vec![Value::Unit]));
        let map = read.par_do("Map", ident());
        let map_id = map.op_id();
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        assert_eq!(pl[map_id], Placement::Transient);
        let sd = partition(&dag, &pl).unwrap();
        assert_eq!(sd.stages.len(), 1);
        assert_eq!(sd.stages[0].anchor, map_id);
        assert_eq!(sd.stages[0].ops.len(), 2);
    }

    /// A transient operator feeding two reserved anchors is absorbed by
    /// both stages (the paper's recursion duplicates it).
    #[test]
    fn shared_transient_parent_joins_both_stages() {
        let p = Pipeline::new();
        let read = p.read("Read", 2, SourceFn::from_vec(vec![Value::Unit]));
        let a = read.combine_per_key("AggA", CombineFn::sum_i64());
        let b = read.combine_per_key("AggB", CombineFn::sum_i64());
        let ids = (read.op_id(), a.op_id(), b.op_id());
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let sd = partition(&dag, &pl).unwrap();
        assert_eq!(sd.stages.len(), 2);
        assert_eq!(sd.stages_containing(ids.0), vec![0, 1]);
    }

    /// Every stage's anchor is reserved or terminal, and all non-anchor
    /// members are transient.
    #[test]
    fn stage_members_are_transient_except_anchor() {
        let p = Pipeline::new();
        let read = p.read("Read", 2, SourceFn::from_vec(vec![Value::Unit]));
        let m1 = read.par_do("M1", ident());
        let g = m1.group_by_key("G");
        let m2 = g.par_do("M2", ident());
        m2.sink("S");
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let sd = partition(&dag, &pl).unwrap();
        for s in &sd.stages {
            let anchor_ok =
                pl[s.anchor] == Placement::Reserved || dag.out_edges(s.anchor).is_empty();
            assert!(anchor_ok);
            for &op in &s.ops {
                if op != s.anchor {
                    assert_eq!(pl[op], Placement::Transient);
                }
            }
        }
    }

    /// Stage parent links are acyclic and point backwards in creation
    /// order.
    #[test]
    fn stage_dag_is_topological() {
        let p = Pipeline::new();
        let read = p.read("Read", 2, SourceFn::from_vec(vec![Value::Unit]));
        let g1 = read.group_by_key("G1");
        let g2 = g1.par_do("M", ident()).group_by_key("G2");
        g2.sink("S");
        let dag = p.build().unwrap();
        let pl = place_operators(&dag).unwrap();
        let sd = partition(&dag, &pl).unwrap();
        for s in &sd.stages {
            for &parent in &s.parents {
                assert!(parent < s.id);
            }
        }
        // Children lookup is the inverse of parents.
        for s in &sd.stages {
            for &parent in &s.parents {
                assert!(sd.children(parent).contains(&s.id));
            }
        }
    }
}
