//! The Pado Compiler (§3.1): placement, partitioning, and plan generation.
//!
//! [`compile`] runs the full pipeline: Algorithm 1 marks every operator for
//! transient or reserved containers, Algorithm 2 cuts the DAG into Pado
//! Stages at placement boundaries, and the plan generator fuses one-to-one
//! chains and expands operators into parallel tasks.

pub mod lifetime;
pub mod partition;
pub mod placement;
pub mod plan;

pub use lifetime::{classify, recomputation_scores, LifetimeClass};
pub use partition::{partition, Stage, StageDag, StageId};
pub use placement::{place_operators, Placement};
pub use plan::{build_plan, Fop, FopId, InputSlot, PhysicalPlan, PlanConfig, PlanEdge};

use pado_dag::LogicalDag;

use crate::error::CompileError;

/// Compiles a logical DAG into a physical plan with default options.
///
/// # Errors
///
/// Propagates validation and parallelism-resolution failures.
///
/// # Examples
///
/// ```
/// use pado_core::compiler::{compile, Placement};
/// use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};
///
/// let p = Pipeline::new();
/// p.read("Read", 4, SourceFn::from_vec(vec![Value::Unit]))
///     .par_do("Map", ParDoFn::per_element(|v, e| e(v.clone())))
///     .combine_per_key("Reduce", CombineFn::sum_i64());
/// let dag = p.build().unwrap();
/// let plan = compile(&dag).unwrap();
/// // Read+Map fused on transient containers; Reduce anchored reserved.
/// assert_eq!(plan.fops.len(), 2);
/// assert_eq!(plan.fops[1].placement, Placement::Reserved);
/// ```
pub fn compile(dag: &LogicalDag) -> Result<PhysicalPlan, CompileError> {
    compile_with(dag, &PlanConfig::default())
}

/// Compiles a logical DAG with explicit plan options.
///
/// # Errors
///
/// Propagates validation and parallelism-resolution failures.
pub fn compile_with(dag: &LogicalDag, config: &PlanConfig) -> Result<PhysicalPlan, CompileError> {
    let placement = place_operators(dag)?;
    let stage_dag = partition(dag, &placement)?;
    build_plan(dag, &placement, &stage_dag, config)
}
