//! Pure task-execution semantics: applying an operator chain to one task's
//! input, and routing task outputs along typed edges.
//!
//! Both the in-process runtime and the test suites use these functions, so
//! a task computes the same records wherever it is (re)executed — the
//! property eviction recovery depends on.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use pado_dag::{
    block_from_vec, empty_block, Block, DepType, LogicalDag, MainSlot, OperatorKind, TaskInput,
    UdfError, Value,
};

use crate::compiler::Fop;
use crate::kernels;

fn non_pair_error(op_name: &str, what: &str, rec: &Value) -> UdfError {
    UdfError::new(format!(
        "{op_name}: {what} requires key-value Pair records, got {rec}"
    ))
}

/// Applies one logical operator to a task input, producing output records.
///
/// Grouping, combining, and shuffling dispatch to the vectorized kernels
/// in [`crate::kernels`] whenever every input block is columnar; the row
/// implementation ([`apply_op_rows`]) is the fallback for heterogeneous
/// data and the equivalence oracle the kernels are tested against.
///
/// # Errors
///
/// Returns the [`UdfError`] raised by a fallible user function, or by
/// `GroupByKey`/keyed `Combine` when a record is not a key-value pair
/// (a mistyped upstream used to lose such records silently).
pub fn apply_op(
    dag: &LogicalDag,
    op: pado_dag::OpId,
    input: TaskInput<'_>,
) -> Result<Vec<Value>, UdfError> {
    match &dag.op(op).kind {
        OperatorKind::GroupByKey => {
            if let Some((keys, vals)) = kernels::gather_pairs(input.mains) {
                return Ok(kernels::group_by_key(&keys, &vals));
            }
        }
        OperatorKind::Combine { f, keyed: true } => {
            if let Some((keys, vals)) = kernels::gather_pairs(input.mains) {
                return Ok(kernels::combine_keyed(&keys, &vals, f));
            }
        }
        OperatorKind::Combine { f, keyed: false } => {
            if let Some(parts) = kernels::gather_columns(input.mains) {
                return Ok(vec![kernels::combine_global(&parts, f)]);
            }
        }
        _ => {}
    }
    apply_op_rows(dag, op, input)
}

/// The row-at-a-time implementation of [`apply_op`]: per-record `Value`
/// dispatch over the materialized rows. Kept public as the equivalence
/// oracle for the vectorized kernels.
///
/// # Errors
///
/// Same contract as [`apply_op`].
pub fn apply_op_rows(
    dag: &LogicalDag,
    op: pado_dag::OpId,
    input: TaskInput<'_>,
) -> Result<Vec<Value>, UdfError> {
    let name = &dag.op(op).name;
    Ok(match &dag.op(op).kind {
        OperatorKind::Source { .. } => {
            // Sources are driven by `source_partition`, not by inputs.
            Vec::new()
        }
        OperatorKind::ParDo(f) => {
            let mut out = Vec::new();
            f.try_call(input, &mut |v| out.push(v))?;
            out
        }
        OperatorKind::GroupByKey => {
            let mut groups: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
            for part in input.mains {
                for rec in part {
                    let Value::Pair(k, v) = rec else {
                        return Err(non_pair_error(name, "GroupByKey", rec));
                    };
                    // Clone only what is retained: the value always, the
                    // key just once per distinct key.
                    match groups.get_mut(k.as_ref()) {
                        Some(vs) => vs.push((**v).clone()),
                        None => {
                            groups.insert((**k).clone(), vec![(**v).clone()]);
                        }
                    }
                }
            }
            groups
                .into_iter()
                .map(|(k, vs)| Value::pair(k, Value::list(vs)))
                .collect()
        }
        OperatorKind::Combine { f, keyed: true } => {
            let mut accs: BTreeMap<Value, Value> = BTreeMap::new();
            for part in input.mains {
                for rec in part {
                    let Value::Pair(k, v) = rec else {
                        return Err(non_pair_error(name, "keyed Combine", rec));
                    };
                    match accs.get_mut(k.as_ref()) {
                        Some(acc) => {
                            let prev = std::mem::replace(acc, Value::Unit);
                            *acc = f.merge(prev, (**v).clone());
                        }
                        None => {
                            accs.insert((**k).clone(), f.merge(f.identity(), (**v).clone()));
                        }
                    }
                }
            }
            accs.into_iter().map(|(k, v)| Value::pair(k, v)).collect()
        }
        OperatorKind::Combine { f, keyed: false } => {
            let mut acc = f.identity();
            for part in input.mains {
                for rec in part {
                    acc = f.merge(acc, rec.clone());
                }
            }
            vec![acc]
        }
        OperatorKind::Sink => {
            let mut out = Vec::new();
            for part in input.mains {
                out.extend(part.iter().cloned());
            }
            out
        }
    })
}

/// Produces the records of a source task's partition.
pub fn source_partition(
    dag: &LogicalDag,
    op: pado_dag::OpId,
    index: usize,
    parallelism: usize,
) -> Vec<Value> {
    match &dag.op(op).kind {
        OperatorKind::Source { f, .. } => f.produce(index, parallelism),
        _ => Vec::new(),
    }
}

/// Executes a fused operator chain for one task.
///
/// `mains` holds the external main inputs of the chain head (one vector
/// per main slot); `sides` maps a chain-member index to that member's
/// broadcast side input (see [`crate::compiler::PlanEdge::member`]).
/// Interior chain members read the previous member's output as their main
/// input.
///
/// # Errors
///
/// Propagates the first [`UdfError`] raised by any chain member.
pub fn apply_chain(
    dag: &LogicalDag,
    fop: &Fop,
    index: usize,
    mains: &[MainSlot],
    sides: &BTreeMap<usize, Block>,
) -> Result<Vec<Value>, UdfError> {
    let head = fop.head();
    let side0 = sides.get(&0).map(|b| b.rows());
    let mut data = if dag.op(head).kind.is_source() {
        source_partition(dag, head, index, fop.parallelism)
    } else {
        apply_op(dag, head, TaskInput::new(mains, side0))?
    };
    for (pos, &op) in fop.chain.iter().enumerate().skip(1) {
        let side = sides.get(&pos).map(|b| b.rows());
        // Hand the previous member's output over as one shared block; the
        // records are moved, not cloned.
        let link = [MainSlot::from_vec(data)];
        data = apply_op(dag, op, TaskInput::new(&link, side))?;
    }
    Ok(data)
}

/// Deterministic hash used for many-to-many record routing.
pub fn route_hash(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    // Route keyed records by key so equal keys co-locate.
    match v.key() {
        Some(k) => k.hash(&mut h),
        None => v.hash(&mut h),
    }
    h.finish()
}

/// Routes one task's output block to consumer task indices along a typed
/// edge. Returns `dst_parallelism` bucket blocks.
///
/// One-to-one, many-to-one, and broadcast edges never copy a record: the
/// target buckets share the input block itself. Only the hash shuffle
/// (many-to-many) materializes new blocks — column-built without a
/// single record clone when the block is columnar, cloning each record
/// exactly once on the row fallback — and the master memoizes that per
/// `(output, dst_parallelism)`, so fan-out to N consumers still costs
/// one pass, not N.
pub fn route(
    records: &Block,
    dep: DepType,
    src_index: usize,
    dst_parallelism: usize,
) -> Vec<Block> {
    let p = dst_parallelism.max(1);
    match dep {
        DepType::OneToOne | DepType::ManyToOne => {
            let mut buckets: Vec<Block> = vec![empty_block(); p];
            buckets[src_index % p] = Arc::clone(records);
            buckets
        }
        DepType::OneToMany => vec![Arc::clone(records); p],
        DepType::ManyToMany => {
            if let Some(buckets) = kernels::route_columnar(records, p) {
                return buckets;
            }
            let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); p];
            for r in records.iter() {
                let i = (route_hash(r) % p as u64) as usize;
                buckets[i].push(r.clone());
            }
            buckets.into_iter().map(block_from_vec).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn};

    #[test]
    fn apply_keyed_combine_merges_per_key() {
        let p = Pipeline::new();
        let read = p.read("R", 1, SourceFn::from_vec(vec![]));
        let c = read.combine_per_key("C", CombineFn::sum_i64());
        let cid = c.op_id();
        let dag = p.build().unwrap();
        let input = [MainSlot::from_vec(vec![
            Value::pair(Value::from("a"), Value::from(1i64)),
            Value::pair(Value::from("b"), Value::from(5i64)),
            Value::pair(Value::from("a"), Value::from(2i64)),
        ])];
        let out = apply_op(&dag, cid, TaskInput::new(&input, None)).unwrap();
        assert_eq!(
            out,
            vec![
                Value::pair(Value::from("a"), Value::from(3i64)),
                Value::pair(Value::from("b"), Value::from(5i64)),
            ]
        );
    }

    #[test]
    fn apply_global_combine_merges_all() {
        let p = Pipeline::new();
        let read = p.read("R", 1, SourceFn::from_vec(vec![]));
        let a = read.aggregate("A", CombineFn::sum_f64());
        let aid = a.op_id();
        let dag = p.build().unwrap();
        let input = [
            MainSlot::from_vec(vec![Value::from(1.0), Value::from(2.0)]),
            MainSlot::from_vec(vec![Value::from(3.0)]),
        ];
        let out = apply_op(&dag, aid, TaskInput::new(&input, None)).unwrap();
        assert_eq!(out, vec![Value::from(6.0)]);
    }

    #[test]
    fn group_by_key_groups_sorted() {
        let p = Pipeline::new();
        let read = p.read("R", 1, SourceFn::from_vec(vec![]));
        let g = read.group_by_key("G");
        let gid = g.op_id();
        let dag = p.build().unwrap();
        let input = [MainSlot::from_vec(vec![
            Value::pair(Value::from("b"), Value::from(1i64)),
            Value::pair(Value::from("a"), Value::from(2i64)),
            Value::pair(Value::from("b"), Value::from(3i64)),
        ])];
        let out = apply_op(&dag, gid, TaskInput::new(&input, None)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].key().unwrap().as_str(), Some("a"));
        assert_eq!(out[1].val().unwrap().as_list().unwrap().len(), 2);
    }

    #[test]
    fn chain_executes_source_then_ops() {
        let p = Pipeline::new();
        let read = p.read(
            "R",
            2,
            SourceFn::new(|i, _| vec![Value::from(i as i64), Value::from(10 + i as i64)]),
        );
        read.par_do(
            "Double",
            ParDoFn::per_element(|v, e| e(Value::from(v.as_i64().unwrap() * 2))),
        );
        let dag = p.build().unwrap();
        let plan = compile(&dag).unwrap();
        let fop = &plan.fops[0];
        assert_eq!(fop.chain.len(), 2);
        let out = apply_chain(&dag, fop, 1, &[], &BTreeMap::new()).unwrap();
        assert_eq!(out, vec![Value::from(2i64), Value::from(22i64)]);
    }

    #[test]
    fn route_one_to_one_targets_same_index_sharing_the_block() {
        let recs = block_from_vec(vec![Value::from(1i64)]);
        let buckets = route(&recs, DepType::OneToOne, 2, 4);
        assert!(Arc::ptr_eq(&buckets[2], &recs), "bucket shares the block");
        assert!(buckets[0].is_empty() && buckets[1].is_empty() && buckets[3].is_empty());
    }

    #[test]
    fn route_broadcast_shares_the_block_everywhere() {
        let recs = block_from_vec(vec![Value::from(1i64), Value::from(2i64)]);
        let buckets = route(&recs, DepType::OneToMany, 0, 3);
        assert!(buckets.iter().all(|b| Arc::ptr_eq(b, &recs)));
    }

    #[test]
    fn route_many_to_one_round_robins_by_source() {
        let recs = block_from_vec(vec![Value::Unit]);
        assert_eq!(route(&recs, DepType::ManyToOne, 5, 2)[1].len(), 1);
        assert_eq!(route(&recs, DepType::ManyToOne, 4, 2)[0].len(), 1);
    }

    #[test]
    fn route_shuffle_is_deterministic_and_key_consistent() {
        let recs = block_from_vec(
            (0..100)
                .map(|i| Value::pair(Value::from(i % 10), Value::from(i)))
                .collect(),
        );
        let a = route(&recs, DepType::ManyToMany, 0, 4);
        let b = route(&recs, DepType::ManyToMany, 7, 4);
        assert_eq!(a, b, "routing ignores source index for shuffles");
        // Same key always lands in the same bucket.
        for (i, bucket) in a.iter().enumerate() {
            for r in bucket.iter() {
                let h = (route_hash(r) % 4) as usize;
                assert_eq!(h, i);
            }
        }
        // All records preserved.
        assert_eq!(a.iter().map(|b| b.len()).sum::<usize>(), 100);
    }

    #[test]
    fn route_zero_parallelism_clamps_to_one() {
        let recs = block_from_vec(vec![Value::Unit]);
        let buckets = route(&recs, DepType::ManyToMany, 0, 0);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].len(), 1);
    }
}
