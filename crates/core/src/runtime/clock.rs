//! The scheduling clock both execution backends implement.
//!
//! Every master-side timer — heartbeat miss/dead detection, deferred-push
//! backoff, speculation age, reconfiguration prepare deadlines — reads
//! time through a [`Clock`] instead of calling [`Instant::now`] directly.
//! Both stock backends run on [`Clock::wall`]; the manual variant exists
//! for tests, which can jump time forward deterministically and observe
//! that timers fire in deadline order instead of sleeping real
//! milliseconds and hoping the ordering holds.
//!
//! A [`Clock`] hands out real [`Instant`] values (a fixed base plus a
//! controlled offset for the manual variant), so all existing
//! `Instant`-arithmetic call sites — deadline `min`s, `duration_since`,
//! `elapsed`-style subtraction — work unchanged against either variant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotone time source.
///
/// Cloning is cheap; clones of a manual clock share the same offset, so
/// advancing one advances every component holding a clone.
#[derive(Debug, Clone, Default)]
pub enum Clock {
    /// Real monotonic wall-clock time ([`Instant::now`]).
    #[default]
    Wall,
    /// Test-controlled time: a fixed base instant plus an explicitly
    /// advanced millisecond offset. Never moves on its own.
    Manual(Arc<ManualClock>),
}

/// Shared state of a [`Clock::Manual`].
#[derive(Debug)]
pub struct ManualClock {
    base: Instant,
    offset_ms: AtomicU64,
}

impl Clock {
    /// The real monotonic clock (both stock backends).
    pub fn wall() -> Self {
        Clock::Wall
    }

    /// A manual clock starting at an arbitrary base instant with zero
    /// offset.
    pub fn manual() -> Self {
        Clock::Manual(Arc::new(ManualClock {
            base: Instant::now(),
            offset_ms: AtomicU64::new(0),
        }))
    }

    /// The current instant as this clock sees it.
    pub fn now(&self) -> Instant {
        match self {
            Clock::Wall => Instant::now(),
            Clock::Manual(m) => m.base + Duration::from_millis(m.offset_ms.load(Ordering::SeqCst)),
        }
    }

    /// Advances a manual clock by `ms` milliseconds. No-op on the wall
    /// clock (real time cannot be pushed).
    pub fn advance_ms(&self, ms: u64) {
        if let Clock::Manual(m) = self {
            m.offset_ms.fetch_add(ms, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let c = Clock::manual();
        let t0 = c.now();
        assert_eq!(c.now(), t0);
        c.advance_ms(250);
        assert_eq!(c.now() - t0, Duration::from_millis(250));
        c.advance_ms(10);
        assert_eq!(c.now() - t0, Duration::from_millis(260));
    }

    #[test]
    fn manual_clones_share_the_offset() {
        let a = Clock::manual();
        let t0 = a.now();
        let b = a.clone();
        b.advance_ms(40);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.now() - t0, Duration::from_millis(40));
    }

    #[test]
    fn wall_clock_advance_is_a_noop() {
        let c = Clock::wall();
        c.advance_ms(1_000_000); // Must not panic or distort `now`.
        let a = c.now();
        let b = Instant::now();
        assert!(b >= a);
        assert!(b - a < Duration::from_secs(60));
    }
}
