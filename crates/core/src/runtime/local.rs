//! The in-process cluster harness.
//!
//! [`LocalCluster`] plays the role REEF and the datacenter resource
//! manager play for the paper's Java implementation (§4): it launches the
//! master, provisions transient and reserved executors as threads, and
//! lets tests and examples inject container evictions deterministically.
//!
//! # Examples
//!
//! Running a word-count under evictions:
//!
//! ```
//! use pado_core::runtime::{FaultPlan, LocalCluster};
//! use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};
//!
//! let p = Pipeline::new();
//! p.read(
//!     "Read",
//!     4,
//!     SourceFn::from_vec(vec![Value::from("a b a"), Value::from("b a")]),
//! )
//! .par_do(
//!     "Map",
//!     ParDoFn::per_element(|line, emit| {
//!         for w in line.as_str().unwrap_or("").split_whitespace() {
//!             emit(Value::pair(Value::from(w), Value::from(1i64)));
//!         }
//!     }),
//! )
//! .combine_per_key("Reduce", CombineFn::sum_i64())
//! .sink("Out");
//! let dag = p.build().unwrap();
//!
//! let cluster = LocalCluster::new(4, 2);
//! let result = cluster
//!     .run_with_faults(&dag, FaultPlan { evictions: vec![(2, 0)], ..Default::default() })
//!     .unwrap();
//! let mut counts = result.outputs["Out"].clone();
//! counts.sort();
//! assert_eq!(counts.len(), 2); // "a" and "b"
//! ```

use std::sync::Arc;

use pado_dag::LogicalDag;

use crate::runtime::policy::SchedulingPolicy;

use crate::compiler::{compile_with, PlanConfig};
use crate::error::RuntimeError;
use crate::runtime::backend::{BackendKind, ExecBackend, SimBackend, ThreadedBackend};
use crate::runtime::config::RuntimeConfig;
use crate::runtime::executor::JobContext;
use crate::runtime::master::{FaultPlan, JobResult, Master};
use crate::runtime::reconfig::{ReconfigPlan, ReconfigTrigger, ScheduledReconfig};

/// An in-process Pado cluster: `n_transient` eviction-prone executors and
/// `n_reserved` stable executors, each with configurable task slots.
#[derive(Clone)]
pub struct LocalCluster {
    n_transient: usize,
    n_reserved: usize,
    config: RuntimeConfig,
    plan_config: PlanConfig,
    policy_factory: Option<Arc<dyn Fn() -> Box<dyn SchedulingPolicy> + Send + Sync>>,
    reconfigs: Vec<ScheduledReconfig>,
    backend: BackendKind,
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("n_transient", &self.n_transient)
            .field("n_reserved", &self.n_reserved)
            .field("config", &self.config)
            .field("plan_config", &self.plan_config)
            .field("custom_policy", &self.policy_factory.is_some())
            .field("backend", &self.backend)
            .finish()
    }
}

impl LocalCluster {
    /// Creates a cluster with default runtime configuration.
    pub fn new(n_transient: usize, n_reserved: usize) -> Self {
        LocalCluster {
            n_transient,
            n_reserved,
            config: RuntimeConfig::default(),
            plan_config: PlanConfig::default(),
            policy_factory: None,
            reconfigs: Vec::new(),
            backend: BackendKind::Sim,
        }
    }

    /// Selects the execution backend (default: [`BackendKind::Sim`], the
    /// deterministic inline event loop). [`BackendKind::Threaded`] runs the
    /// master on its own thread and task bodies on a shared worker pool
    /// sized by [`RuntimeConfig::threaded_workers`].
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Schedules an explicit live-reconfiguration request: after
    /// `after_done_events` task commits, the master opens a two-phase
    /// transaction applying `plan` (see
    /// [`ReconfigChange`](crate::runtime::ReconfigChange)). May be
    /// called repeatedly; requests fire in schedule order.
    pub fn with_reconfig(mut self, after_done_events: usize, plan: ReconfigPlan) -> Self {
        self.reconfigs.push(ScheduledReconfig {
            after_done_events,
            plan,
            trigger: ReconfigTrigger::Api,
        });
        self
    }

    /// Installs a custom task scheduling policy (§3.2.3). The factory is
    /// invoked once per job, since policies are stateful.
    pub fn with_policy<F>(mut self, factory: F) -> Self
    where
        F: Fn() -> Box<dyn SchedulingPolicy> + Send + Sync + 'static,
    {
        self.policy_factory = Some(Arc::new(factory));
        self
    }

    /// Overrides the runtime configuration.
    pub fn with_config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the plan-generation options.
    pub fn with_plan_config(mut self, plan_config: PlanConfig) -> Self {
        self.plan_config = plan_config;
        self
    }

    /// Compiles and runs a dataflow program to completion.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures and runtime aborts.
    pub fn run(&self, dag: &LogicalDag) -> Result<JobResult, RuntimeError> {
        self.run_with_faults(dag, FaultPlan::default())
    }

    /// Runs a program while injecting the given fault schedule.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures and runtime aborts.
    pub fn run_with_faults(
        &self,
        dag: &LogicalDag,
        faults: FaultPlan,
    ) -> Result<JobResult, RuntimeError> {
        let backend: Box<dyn ExecBackend> = match self.backend {
            BackendKind::Sim => Box::new(SimBackend),
            BackendKind::Threaded => Box::new(ThreadedBackend::from_config(&self.config)),
        };
        self.run_on_backend(dag, faults, backend.as_ref())
    }

    /// Runs a program on a caller-provided backend instance, injecting
    /// the given fault schedule. This is [`LocalCluster::run_with_faults`]
    /// with the backend construction split out, so tests can keep a
    /// handle on the backend's innards (e.g. wedge its worker pool
    /// deliberately and assert the stall diagnostics).
    ///
    /// # Errors
    ///
    /// Propagates compilation failures and runtime aborts.
    pub fn run_on_backend(
        &self,
        dag: &LogicalDag,
        mut faults: FaultPlan,
        backend: &dyn ExecBackend,
    ) -> Result<JobResult, RuntimeError> {
        self.config
            .validate_with_cluster(self.n_transient + self.n_reserved)
            .map_err(RuntimeError::Config)?;
        self.config
            .validate_for_backend(self.backend)
            .map_err(RuntimeError::Config)?;
        // Cross-validation the config alone cannot see: the crash chaos
        // family recovers from the WAL, so injecting crashes without
        // arming one would silently fall back to the snapshot path.
        if faults.crashes.is_some() && self.config.wal_path.is_none() {
            return Err(RuntimeError::Config(
                "FaultPlan::crashes requires RuntimeConfig::wal_path: master crash \
                 recovery replays the write-ahead log"
                    .into(),
            ));
        }
        faults.reconfigs.extend(self.reconfigs.iter().copied());
        let plan = compile_with(dag, &self.plan_config)?;
        let job = Arc::new(JobContext {
            dag: dag.clone(),
            plan,
            config: self.config.clone(),
        });
        let mut master =
            Master::with_backend(job, self.n_transient, self.n_reserved, faults, backend)?;
        if let Some(factory) = &self.policy_factory {
            master.set_policy(factory());
        }
        backend.drive(master)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};

    fn wordcount_dag(lines: Vec<&str>, partitions: usize) -> LogicalDag {
        let data: Vec<Value> = lines.into_iter().map(Value::from).collect();
        let p = Pipeline::new();
        p.read("Read", partitions, SourceFn::from_vec(data))
            .par_do(
                "Map",
                ParDoFn::per_element(|line, emit| {
                    for w in line.as_str().unwrap_or("").split_whitespace() {
                        emit(Value::pair(Value::from(w), Value::from(1i64)));
                    }
                }),
            )
            .combine_per_key("Reduce", CombineFn::sum_i64())
            .sink("Out");
        p.build().unwrap()
    }

    fn count_of(result: &JobResult, word: &str) -> i64 {
        result.outputs["Out"]
            .iter()
            .find(|r| r.key().and_then(|k| k.as_str()) == Some(word))
            .and_then(|r| r.val().and_then(|v| v.as_i64()))
            .unwrap_or(0)
    }

    #[test]
    fn wordcount_without_faults() {
        let dag = wordcount_dag(vec!["a b a", "c a", "b"], 3);
        let result = LocalCluster::new(3, 2).run(&dag).unwrap();
        assert_eq!(count_of(&result, "a"), 3);
        assert_eq!(count_of(&result, "b"), 2);
        assert_eq!(count_of(&result, "c"), 1);
        assert_eq!(result.metrics.relaunched_tasks, 0);
        assert_eq!(result.metrics.evictions, 0);
    }

    #[test]
    fn wordcount_with_eviction_is_correct() {
        let dag = wordcount_dag(vec!["a b a", "c a", "b", "a c c"], 4);
        let faults = FaultPlan {
            evictions: vec![(1, 0), (3, 1)],
            ..Default::default()
        };
        let result = LocalCluster::new(3, 2)
            .run_with_faults(&dag, faults)
            .unwrap();
        assert_eq!(count_of(&result, "a"), 4);
        assert_eq!(count_of(&result, "b"), 2);
        assert_eq!(count_of(&result, "c"), 3);
        assert_eq!(result.metrics.evictions, 2);
    }

    #[test]
    fn invalid_config_is_rejected_before_running() {
        let dag = wordcount_dag(vec!["a"], 1);
        let cluster = LocalCluster::new(1, 1).with_config(RuntimeConfig {
            transport_dedup_window: 0,
            ..RuntimeConfig::default()
        });
        match cluster.run(&dag) {
            Err(RuntimeError::Config(msg)) => {
                assert!(msg.contains("transport_dedup_window"));
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }
}
