//! Pado executors: multi-slot worker threads running tasks (§3.2.4).
//!
//! Each executor owns a user-configured number of task slots, realized as
//! worker threads sharing one task queue, plus an input cache shared by
//! its slots. Executors are *pure computers*: the master assembles and
//! routes all inputs, and executors send finished outputs back. This keeps
//! every placement decision (and therefore every eviction consequence) in
//! one deterministic place, while preserving the paper's control flow.
//!
//! Since the control plane crosses an unreliable wire (see
//! [`transport`](crate::runtime::transport)), each executor also runs a
//! *control thread* between its worker slots and the network: it
//! acknowledges and deduplicates inbound frames from the master, sends
//! worker results through a reliable (retransmitting) endpoint, and beats
//! a heartbeat so the master's failure detector can tell a dead executor
//! from a slow one. Worker slots never touch the wire directly.

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Once};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use pado_dag::{block_from_vec, Block, LogicalDag, OperatorKind, UdfError, Value};
use parking_lot::Mutex;

use crate::compiler::{PhysicalPlan, Placement};
use crate::exec::apply_chain;
use crate::runtime::backend::{CancelToken, WorkerPool};
use crate::runtime::cache::CacheKey;
use crate::runtime::config::RuntimeConfig;
use crate::runtime::journal::{JobEvent, Journal};
use crate::runtime::message::{ExecId, ExecutorMsg, InjectedFault, MasterMsg, TaskSpec};
use crate::runtime::store::{ExecutorStore, StoreHandle};
use crate::runtime::transport::{
    DedupWindow, Direction, ExecIn, FaultyLink, NetPolicy, ReliableSender, TransportCounters, Wire,
};

/// Worker-thread name prefix; the panic hook filter keys off it.
const WORKER_THREAD_PREFIX: &str = "pado-exec-";

static PANIC_HOOK_FILTER: Once = Once::new();

/// Installs (once per process) a panic hook that silences panics on
/// executor worker threads. Those panics are caught by [`run_task`] and
/// reported to the master as [`MasterMsg::TaskFailed`]; printing the
/// default backtrace banner for each would drown test output. Panics on
/// any other thread still reach the previous hook untouched.
fn install_panic_hook_filter() {
    PANIC_HOOK_FILTER.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_THREAD_PREFIX));
            if !on_worker {
                previous(info);
            }
        }));
    });
}

/// Immutable job context shared by the master and all executors.
#[derive(Debug)]
pub struct JobContext {
    /// The logical DAG (holds the user functions).
    pub dag: LogicalDag,
    /// The compiled physical plan.
    pub plan: PhysicalPlan,
    /// Runtime tunables.
    pub config: RuntimeConfig,
}

/// A live executor: its control thread, task queue, and worker threads.
#[derive(Debug)]
pub struct ExecutorHandle {
    /// Executor id (never reused across replacements).
    pub id: ExecId,
    /// Transient or reserved.
    pub kind: Placement,
    ctrl: Sender<ExecIn>,
    threads: Vec<JoinHandle<()>>,
}

impl ExecutorHandle {
    /// Spawns an executor: `config.slots_per_executor` worker threads plus
    /// one control thread bridging them to the (possibly faulty) wire.
    ///
    /// `to_master` is the master's inbound wire; `net` injects the seeded
    /// network faults (`None` = perfectly reliable transport); `journal`
    /// is the job's shared execution journal (worker slots log task
    /// starts, the reliable endpoint logs retransmissions); `store` is
    /// this executor's byte-accounted memory domain, shared with the
    /// master (which pins inputs and admits pushes into it).
    ///
    /// With `pool` set (the threaded backend) the executor spawns no
    /// dedicated slot threads: task bodies are submitted to the shared
    /// pool instead, and finished reports flow back through the control
    /// thread exactly as before. The master's `busy < slots` launch gate
    /// still bounds this executor to `slots` outstanding task bodies, so
    /// the pool's bounded queue never sees more than
    /// `executors × slots` task submissions at once.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        id: ExecId,
        kind: Placement,
        job: Arc<JobContext>,
        to_master: Sender<Wire<MasterMsg>>,
        net: Option<Arc<NetPolicy>>,
        counters: Arc<TransportCounters>,
        journal: Journal,
        store: StoreHandle,
        pool: Option<Arc<WorkerPool>>,
        cancel: CancelToken,
    ) -> Self {
        install_panic_hook_filter();
        let (ctrl_tx, ctrl_rx) = crossbeam::channel::unbounded::<ExecIn>();
        let slots = job.config.slots_per_executor.max(1);
        let mut threads: Vec<JoinHandle<()>>;
        let sink = match pool {
            Some(pool) => {
                threads = Vec::new();
                TaskSink::Pool {
                    pool,
                    exec: id,
                    job: Arc::clone(&job),
                    store: Arc::clone(&store),
                    journal: journal.clone(),
                    ctrl: ctrl_tx.clone(),
                }
            }
            None => {
                let (task_tx, task_rx) = crossbeam::channel::unbounded::<ExecutorMsg>();
                threads = (0..slots)
                    .map(|slot| {
                        let task_rx = task_rx.clone();
                        let job = Arc::clone(&job);
                        let ctrl_tx = ctrl_tx.clone();
                        let store = Arc::clone(&store);
                        let journal = journal.clone();
                        std::thread::Builder::new()
                            .name(format!("pado-exec-{id}-slot{slot}"))
                            .spawn(move || worker_loop(id, task_rx, job, ctrl_tx, store, journal))
                            .expect("spawn executor worker thread")
                    })
                    .collect();
                TaskSink::Slots { tx: task_tx, slots }
            }
        };
        let seed = net.as_ref().map_or(0, |p| p.seed());
        let ctrs = Arc::clone(&counters);
        // The executor's view of the reconfiguration epoch: advanced by
        // inbound envelope stamps and `AdvanceEpoch` broadcasts, stamped
        // onto every outbound report.
        let epoch = Arc::new(AtomicU64::new(0));
        let link = FaultyLink::new(to_master, id, Direction::ToMaster, net, counters);
        let out = ReliableSender::new(
            link,
            id,
            |from, seq, epoch, payload| Wire::Msg {
                from,
                seq,
                epoch,
                payload,
            },
            job.config.transport_inflight_cap,
            Duration::from_millis(job.config.retransmit_base_ms),
            Duration::from_millis(job.config.retransmit_max_ms),
            seed ^ (id as u64),
        )
        .with_journal(journal, true)
        .with_epoch(Arc::clone(&epoch));
        let heartbeat = Duration::from_millis(job.config.heartbeat_interval_ms.max(1));
        let dedup = DedupWindow::new(job.config.transport_dedup_window);
        threads.push(
            std::thread::Builder::new()
                .name(format!("pado-exec-{id}-ctrl"))
                .spawn(move || {
                    control_loop(
                        id, ctrl_rx, sink, out, dedup, heartbeat, ctrs, epoch, cancel,
                    )
                })
                .expect("spawn executor control thread"),
        );
        ExecutorHandle {
            id,
            kind,
            ctrl: ctrl_tx,
            threads,
        }
    }

    /// The executor's inbound wire endpoint: what the master's faulty link
    /// to this executor feeds.
    pub fn inbound(&self) -> Sender<ExecIn> {
        self.ctrl.clone()
    }

    /// Resource-manager kill: tears the container down. This is an RM
    /// action, not a network message — it bypasses the faulty wire, so
    /// even a partitioned executor can be destroyed.
    pub fn stop(&self) {
        let _ = self.ctrl.send(ExecIn::Kill);
    }

    /// Joins all executor threads (call after [`ExecutorHandle::stop`]).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Where the control thread hands runnable task specs: dedicated slot
/// threads (sim backend) or the job-wide shared pool (threaded backend).
enum TaskSink {
    Slots {
        tx: Sender<ExecutorMsg>,
        slots: usize,
    },
    Pool {
        pool: Arc<WorkerPool>,
        exec: ExecId,
        job: Arc<JobContext>,
        store: StoreHandle,
        journal: Journal,
        ctrl: Sender<ExecIn>,
    },
}

impl TaskSink {
    /// Dispatches one task spec for execution.
    fn run(&self, spec: TaskSpec) {
        match self {
            TaskSink::Slots { tx, .. } => {
                let _ = tx.send(ExecutorMsg::Run(spec));
            }
            TaskSink::Pool {
                pool,
                exec,
                job,
                store,
                journal,
                ctrl,
            } => {
                let (exec, job, store, journal, ctrl) = (
                    *exec,
                    Arc::clone(job),
                    Arc::clone(store),
                    journal.clone(),
                    ctrl.clone(),
                );
                // Blocking submit is safe here: the master's launch gate
                // bounds this executor to `slots` outstanding bodies, and
                // pool workers never wait on this control thread.
                pool.submit(Box::new(move || {
                    let done = run_task(exec, &job, &store, &journal, spec);
                    if let MasterMsg::TaskDone { output, .. } = &done {
                        // Warm the block's memoized encoded size on the
                        // pool instead of letting the master's store
                        // accounting pay for the first encode serially.
                        let _ = output.encoded_len();
                    }
                    let _ = ctrl.send(ExecIn::Out(done));
                }));
            }
        }
    }

    /// Tears down the execution lanes (no-op for the shared pool, which
    /// outlives any one executor; in-flight bodies finish and their
    /// reports land in a disconnected channel).
    fn stop(&self) {
        if let TaskSink::Slots { tx, slots } = self {
            for _ in 0..*slots {
                let _ = tx.send(ExecutorMsg::Stop);
            }
        }
    }
}

fn worker_loop(
    exec: ExecId,
    rx: Receiver<ExecutorMsg>,
    job: Arc<JobContext>,
    ctrl: Sender<ExecIn>,
    store: StoreHandle,
    journal: Journal,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ExecutorMsg::Stop => break,
            // Epoch advances are consumed by the control thread; a stray
            // one reaching a worker slot carries no work.
            ExecutorMsg::AdvanceEpoch(_) => {}
            ExecutorMsg::Run(spec) => {
                let done = run_task(exec, &job, &store, &journal, spec);
                if ctrl.send(ExecIn::Out(done)).is_err() {
                    break; // The control thread is gone; the executor died.
                }
            }
        }
    }
}

/// The executor's network-facing loop: heartbeats, acks + dedup on
/// inbound frames, reliable retransmission on outbound reports, and the
/// out-of-band kill path.
#[allow(clippy::too_many_arguments)]
fn control_loop(
    exec: ExecId,
    ctrl_rx: Receiver<ExecIn>,
    sink: TaskSink,
    mut out: ReliableSender<MasterMsg, Wire<MasterMsg>>,
    mut dedup: DedupWindow,
    heartbeat: Duration,
    counters: Arc<TransportCounters>,
    epoch: Arc<std::sync::atomic::AtomicU64>,
    cancel: CancelToken,
) {
    let mut next_beat = Instant::now();
    loop {
        // Cooperative cancellation point: a supervisor abort unwinds
        // this control thread without waiting for the master's Kill
        // (which a wedged master may never send).
        if cancel.is_cancelled() {
            sink.stop();
            return;
        }
        let now = Instant::now();
        if now >= next_beat {
            out.link().send(Wire::Heartbeat { from: exec });
            next_beat = now + heartbeat;
        }
        if out.pump(now).is_err() {
            // A transport bookkeeping invariant broke: tear the worker
            // slots down cleanly (the master's own pump surfaces the
            // positioned error and fails the job).
            sink.stop();
            return;
        }
        let deadline = out
            .next_deadline()
            .map_or(next_beat, |d| d.min(next_beat))
            .max(now + Duration::from_millis(1));
        match ctrl_rx.recv_timeout(deadline - now) {
            Ok(ExecIn::Kill) => {
                sink.stop();
                return;
            }
            Ok(ExecIn::Out(msg)) => out.send(msg),
            Ok(ExecIn::Net(Wire::Msg {
                seq,
                epoch: env_epoch,
                payload,
                ..
            })) => {
                // Always ack — the first ack may have been lost — but only
                // forward first deliveries to the task queue. Every
                // envelope also carries the master's epoch at send time:
                // adopt it monotonically so subsequent reports are stamped
                // with the newest epoch this executor has seen.
                out.link().send(Wire::Ack { from: exec, seq });
                epoch.fetch_max(env_epoch, std::sync::atomic::Ordering::Relaxed);
                if dedup.fresh(seq) {
                    match payload {
                        ExecutorMsg::AdvanceEpoch(e) => {
                            epoch.fetch_max(e, std::sync::atomic::Ordering::Relaxed);
                        }
                        ExecutorMsg::Run(spec) => sink.run(spec),
                        ExecutorMsg::Stop => sink.stop(),
                    }
                } else {
                    counters
                        .deduplicated
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
            Ok(ExecIn::Net(Wire::Ack { seq, .. })) => out.on_ack(seq),
            // Masters don't heartbeat executors; Direct frames are
            // master-side only. Tolerate both.
            Ok(ExecIn::Net(Wire::Heartbeat { .. })) => {}
            Ok(ExecIn::Net(Wire::Direct(payload))) => match payload {
                ExecutorMsg::AdvanceEpoch(e) => {
                    epoch.fetch_max(e, std::sync::atomic::Ordering::Relaxed);
                }
                ExecutorMsg::Run(spec) => sink.run(spec),
                ExecutorMsg::Stop => sink.stop(),
            },
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // The master dropped our inbound sender: job over.
                sink.stop();
                return;
            }
        }
    }
}

/// Everything a successful task attempt reports back to the master.
struct TaskOutput {
    output: Block,
    preaggregated: usize,
    cache_hit: bool,
    cached_keys: Vec<CacheKey>,
}

/// Executes one task: resolve side inputs through the cache, apply the
/// fused chain, optionally pre-aggregate the output.
///
/// The *entire* task body — side-input resolution, plan lookup, chain
/// application, pre-aggregation — runs inside `catch_unwind`, so any
/// panic (a UDF's, or a runtime bug's) yields a [`MasterMsg::TaskFailed`]
/// instead of killing the worker slot silently: the slot stays alive and
/// the master learns the attempt died.
fn run_task(
    exec: ExecId,
    job: &JobContext,
    store: &Mutex<ExecutorStore>,
    journal: &Journal,
    spec: TaskSpec,
) -> MasterMsg {
    // Every attempt that reaches a worker slot logs a start — including
    // ones an injected fault will fail before the body runs (the fault
    // models user code dying, which starts executing first).
    journal.emit(
        job.plan.fops.get(spec.fop).map(|f| f.stage),
        JobEvent::TaskStarted {
            fop: spec.fop,
            index: spec.index,
            attempt: spec.attempt,
            exec,
        },
    );
    match spec.inject {
        Some(InjectedFault::Delay(ms)) => {
            // Simulated straggler: stall, then compute normally.
            std::thread::sleep(Duration::from_millis(ms));
        }
        Some(InjectedFault::Error) => {
            return MasterMsg::TaskFailed {
                exec,
                attempt: spec.attempt,
                reason: "injected: user function error".into(),
            };
        }
        Some(InjectedFault::Oom) => {
            // A mid-task allocation failure: journaled so the invariant
            // checker can demand the attempt fails (and never commits),
            // then reported as an ordinary task failure — the degraded
            // outcome of memory pressure is a retry, never an abort.
            journal.emit(
                job.plan.fops.get(spec.fop).map(|f| f.stage),
                JobEvent::OomInjected {
                    fop: spec.fop,
                    index: spec.index,
                    attempt: spec.attempt,
                    exec,
                },
            );
            return MasterMsg::TaskFailed {
                exec,
                attempt: spec.attempt,
                reason: "injected: allocation failure (store budget exhausted)".into(),
            };
        }
        Some(InjectedFault::Panic) | Some(InjectedFault::DelayDone(_)) | None => {}
    }

    let attempt = spec.attempt;
    let done_delay = match spec.inject {
        Some(InjectedFault::DelayDone(ms)) => Some(Duration::from_millis(ms)),
        _ => None,
    };
    let computed = panic::catch_unwind(AssertUnwindSafe(|| task_body(job, store, spec)));
    if let Some(d) = done_delay {
        // The output exists but the report stalls in flight: the window
        // where an eviction or partition races the TaskDone.
        std::thread::sleep(d);
    }
    match computed {
        Ok(Ok(done)) => MasterMsg::TaskDone {
            exec,
            attempt,
            output: done.output,
            preaggregated: done.preaggregated,
            cache_hit: done.cache_hit,
            cached_keys: done.cached_keys,
        },
        Ok(Err(udf)) => MasterMsg::TaskFailed {
            exec,
            attempt,
            reason: udf.to_string(),
        },
        Err(payload) => MasterMsg::TaskFailed {
            exec,
            attempt,
            reason: panic_reason(payload.as_ref()),
        },
    }
}

/// Unpins the cache entries a task read, even when the task body panics
/// mid-chain (the unwind runs this guard's `Drop`): a leaked pin would
/// make the entry unshedable forever.
struct CachePinGuard<'a> {
    store: &'a Mutex<ExecutorStore>,
    keys: Vec<CacheKey>,
}

impl Drop for CachePinGuard<'_> {
    fn drop(&mut self) {
        let mut s = self.store.lock();
        for k in &self.keys {
            s.cache_unpin(*k);
        }
    }
}

/// The fault-isolated body of one task attempt.
///
/// Side inputs resolve to shared blocks (a cache hit or the master's copy;
/// never a record clone), the fused chain computes the output records, and
/// the result is sealed into a [`Block`] exactly once. Cache entries a
/// task reads stay pinned until it finishes, so concurrent slots cannot
/// shed an input mid-use.
fn task_body(
    job: &JobContext,
    store: &Mutex<ExecutorStore>,
    spec: TaskSpec,
) -> Result<TaskOutput, UdfError> {
    if spec.inject == Some(InjectedFault::Panic) {
        panic!("injected: user function panic");
    }

    let mut cache_hit = false;
    let mut pins = CachePinGuard {
        store,
        keys: Vec::new(),
    };
    let mut sides: BTreeMap<usize, Block> = BTreeMap::new();
    for (member, side) in &spec.sides {
        let records = match side.key {
            Some(key) => {
                let mut s = store.lock();
                match s.cache_get(key) {
                    Some(hit) => {
                        if side.expect_cached {
                            cache_hit = true;
                        }
                        if s.cache_pin(key) {
                            pins.keys.push(key);
                        }
                        hit
                    }
                    None => {
                        if s.cache_put(key, Arc::clone(&side.records)) && s.cache_pin(key) {
                            pins.keys.push(key);
                        }
                        Arc::clone(&side.records)
                    }
                }
            }
            None => Arc::clone(&side.records),
        };
        sides.insert(*member, records);
    }

    let fop = &job.plan.fops[spec.fop];
    let mut output = apply_chain(&job.dag, fop, spec.index, &spec.mains, &sides)?;

    let mut preaggregated = 0usize;
    if spec.preaggregate {
        if let Some((f, keyed)) = combine_consumer(&job.dag, &job.plan, spec.fop) {
            let before = output.len();
            output = preaggregate(output, &f, keyed)?;
            preaggregated = before.saturating_sub(output.len());
        }
    }

    drop(pins);
    let cached_keys = store.lock().cache_keys();
    Ok(TaskOutput {
        output: block_from_vec(output),
        preaggregated,
        cache_hit,
        cached_keys,
    })
}

/// Extracts a readable message from a caught panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".into()
    }
}

/// Finds the combiner of this fop's consumer, when every consumer is the
/// same combine operator (the precondition for transient-side partial
/// aggregation).
pub fn combine_consumer(
    dag: &LogicalDag,
    plan: &PhysicalPlan,
    fop: crate::compiler::FopId,
) -> Option<(pado_dag::CombineFn, bool)> {
    let outs = plan.out_edges(fop);
    if outs.is_empty() {
        return None;
    }
    let mut found: Option<(pado_dag::CombineFn, bool)> = None;
    for e in outs {
        let head = plan.fops[e.dst].head();
        match &dag.op(head).kind {
            OperatorKind::Combine { f, keyed } => match &found {
                None => found = Some((f.clone(), *keyed)),
                Some((_, k)) if *k == *keyed => {}
                _ => return None,
            },
            _ => return None,
        }
    }
    found
}

/// Merges records within one partition ahead of the consumer combine:
/// per key for keyed combiners, into a single accumulator for global
/// ones. Homogeneous pair partitions take the vectorized kernel; the
/// row fallback consumes the records without cloning.
///
/// # Errors
///
/// A keyed pre-aggregation over a record that is not a key-value pair
/// fails the attempt (the consumer combine would reject it anyway; it
/// used to be dropped silently here).
pub fn preaggregate(
    records: Vec<Value>,
    f: &pado_dag::CombineFn,
    keyed: bool,
) -> Result<Vec<Value>, UdfError> {
    if keyed {
        match pado_dag::column::analyze(&records) {
            Some(pado_dag::Columns::Pair { keys, vals }) => {
                return Ok(crate::kernels::combine_keyed(&keys, &vals, f));
            }
            Some(_) => {
                // Homogeneous but not pair-shaped: every record is a
                // non-pair, so the first one names the failure.
                return Err(UdfError::new(format!(
                    "preaggregate: keyed combine requires key-value Pair records, got {}",
                    records[0]
                )));
            }
            // Heterogeneous (or empty): row path below, which may still
            // be all pairs of mixed scalar kinds.
            None => {}
        }
        let mut accs: BTreeMap<Value, Value> = BTreeMap::new();
        for rec in records {
            let Some((k, v)) = rec.into_pair() else {
                return Err(UdfError::new(
                    "preaggregate: keyed combine requires key-value Pair records".to_string(),
                ));
            };
            let acc = accs.remove(&k).unwrap_or_else(|| f.identity());
            accs.insert(k, f.merge(acc, v));
        }
        Ok(accs.into_iter().map(|(k, v)| Value::pair(k, v)).collect())
    } else if records.is_empty() {
        // An empty partition contributes nothing. Emitting the combiner's
        // identity here — as the keyed branch never does — would add one
        // spurious record per empty partition to the shuffled stream.
        Ok(Vec::new())
    } else {
        Ok(vec![f.merge_all(records)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pado_dag::CombineFn;

    #[test]
    fn preaggregate_keyed_merges_per_key() {
        let recs = vec![
            Value::pair(Value::from("a"), Value::from(1i64)),
            Value::pair(Value::from("a"), Value::from(2i64)),
            Value::pair(Value::from("b"), Value::from(4i64)),
        ];
        let out = preaggregate(recs, &CombineFn::sum_i64(), true).unwrap();
        assert_eq!(
            out,
            vec![
                Value::pair(Value::from("a"), Value::from(3i64)),
                Value::pair(Value::from("b"), Value::from(4i64)),
            ]
        );
    }

    #[test]
    fn preaggregate_global_collapses_to_one() {
        let recs: Vec<Value> = (1..=4).map(Value::from).collect();
        let out = preaggregate(recs, &CombineFn::sum_i64(), false).unwrap();
        assert_eq!(out, vec![Value::from(10i64)]);
    }

    #[test]
    fn preaggregate_empty_keyed_is_empty() {
        let out = preaggregate(Vec::new(), &CombineFn::sum_i64(), true).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn preaggregate_empty_global_is_empty() {
        // An empty partition must contribute zero records, exactly like
        // the keyed path — not one identity record.
        let out = preaggregate(Vec::new(), &CombineFn::sum_i64(), false).unwrap();
        assert!(out.is_empty());
    }

    /// A runtime bug inside the task body — here an out-of-range fop id
    /// hitting the plan lookup, which the old narrow `catch_unwind`
    /// around `apply_chain` alone did not cover — must surface as
    /// `TaskFailed`, not kill the worker slot silently.
    #[test]
    fn runtime_panic_in_task_body_reports_task_failed() {
        use crate::compiler::compile;
        use pado_dag::{Pipeline, SourceFn};

        let p = Pipeline::new();
        p.read("R", 1, SourceFn::from_vec(vec![Value::from(1i64)]))
            .sink("S");
        let dag = p.build().unwrap();
        let plan = compile(&dag).unwrap();
        let job = Arc::new(JobContext {
            dag,
            plan,
            config: RuntimeConfig::default(),
        });
        let store = ExecutorStore::handle(3, usize::MAX, 1024, Journal::new());
        let spec = TaskSpec {
            attempt: 7,
            fop: 999, // No such fop: plan lookup panics inside the body.
            index: 0,
            mains: Vec::new(),
            sides: BTreeMap::new(),
            preaggregate: false,
            inject: None,
        };
        install_panic_hook_filter();
        let msg = std::thread::Builder::new()
            .name(format!("{WORKER_THREAD_PREFIX}test-slot0"))
            .spawn(move || run_task(3, &job, &store, &Journal::new(), spec))
            .unwrap()
            .join()
            .expect("run_task must catch the panic, not unwind the slot");
        match msg {
            MasterMsg::TaskFailed {
                exec,
                attempt,
                reason,
            } => {
                assert_eq!((exec, attempt), (3, 7));
                assert!(reason.starts_with("panic:"), "reason: {reason}");
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }
}
