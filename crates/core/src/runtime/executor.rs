//! Pado executors: multi-slot worker threads running tasks (§3.2.4).
//!
//! Each executor owns a user-configured number of task slots, realized as
//! worker threads sharing one task queue, plus an input cache shared by
//! its slots. Executors are *pure computers*: the master assembles and
//! routes all inputs, and executors send finished outputs back. This keeps
//! every placement decision (and therefore every eviction consequence) in
//! one deterministic place, while preserving the paper's control flow.

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};
use pado_dag::{LogicalDag, OperatorKind, Value};
use parking_lot::Mutex;

use crate::compiler::{PhysicalPlan, Placement};
use crate::exec::apply_chain;
use crate::runtime::cache::LruCache;
use crate::runtime::config::RuntimeConfig;
use crate::runtime::message::{ExecId, ExecutorMsg, InjectedFault, MasterMsg, TaskSpec};

/// Worker-thread name prefix; the panic hook filter keys off it.
const WORKER_THREAD_PREFIX: &str = "pado-exec-";

static PANIC_HOOK_FILTER: Once = Once::new();

/// Installs (once per process) a panic hook that silences panics on
/// executor worker threads. Those panics are caught by [`run_task`] and
/// reported to the master as [`MasterMsg::TaskFailed`]; printing the
/// default backtrace banner for each would drown test output. Panics on
/// any other thread still reach the previous hook untouched.
fn install_panic_hook_filter() {
    PANIC_HOOK_FILTER.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_THREAD_PREFIX));
            if !on_worker {
                previous(info);
            }
        }));
    });
}

/// Immutable job context shared by the master and all executors.
#[derive(Debug)]
pub struct JobContext {
    /// The logical DAG (holds the user functions).
    pub dag: LogicalDag,
    /// The compiled physical plan.
    pub plan: PhysicalPlan,
    /// Runtime tunables.
    pub config: RuntimeConfig,
}

/// A live executor: its task queue plus its worker threads.
#[derive(Debug)]
pub struct ExecutorHandle {
    /// Executor id (never reused across replacements).
    pub id: ExecId,
    /// Transient or reserved.
    pub kind: Placement,
    sender: Sender<ExecutorMsg>,
    workers: Vec<JoinHandle<()>>,
}

impl ExecutorHandle {
    /// Spawns an executor with `config.slots_per_executor` worker threads.
    pub fn spawn(
        id: ExecId,
        kind: Placement,
        job: Arc<JobContext>,
        to_master: Sender<MasterMsg>,
    ) -> Self {
        install_panic_hook_filter();
        let (tx, rx) = crossbeam::channel::unbounded::<ExecutorMsg>();
        let cache = Arc::new(Mutex::new(LruCache::new(job.config.cache_capacity_bytes)));
        let slots = job.config.slots_per_executor.max(1);
        let workers = (0..slots)
            .map(|slot| {
                let rx = rx.clone();
                let job = Arc::clone(&job);
                let to_master = to_master.clone();
                let cache = Arc::clone(&cache);
                std::thread::Builder::new()
                    .name(format!("pado-exec-{id}-slot{slot}"))
                    .spawn(move || worker_loop(id, rx, job, to_master, cache))
                    .expect("spawn executor worker thread")
            })
            .collect();
        ExecutorHandle {
            id,
            kind,
            sender: tx,
            workers,
        }
    }

    /// Enqueues a task on this executor.
    pub fn run(&self, spec: TaskSpec) {
        // A send can only fail after Stop; the master never runs-after-stop.
        let _ = self.sender.send(ExecutorMsg::Run(spec));
    }

    /// Tells every worker slot to shut down.
    pub fn stop(&self) {
        for _ in 0..self.workers.len() {
            let _ = self.sender.send(ExecutorMsg::Stop);
        }
    }

    /// Joins all worker threads (call after [`ExecutorHandle::stop`]).
    pub fn join(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    exec: ExecId,
    rx: Receiver<ExecutorMsg>,
    job: Arc<JobContext>,
    to_master: Sender<MasterMsg>,
    cache: Arc<Mutex<LruCache>>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ExecutorMsg::Stop => break,
            ExecutorMsg::Run(spec) => {
                let done = run_task(exec, &job, &cache, spec);
                if to_master.send(done).is_err() {
                    break; // The master is gone; the job ended.
                }
            }
        }
    }
}

/// Executes one task: resolve side inputs through the cache, apply the
/// fused chain (fault-isolated), optionally pre-aggregate the output.
///
/// User code runs inside `catch_unwind`, so a panicking or erroring UDF
/// yields a [`MasterMsg::TaskFailed`] instead of killing the worker slot:
/// the slot stays alive to run the retry.
fn run_task(exec: ExecId, job: &JobContext, cache: &Mutex<LruCache>, spec: TaskSpec) -> MasterMsg {
    match spec.inject {
        Some(InjectedFault::Delay(ms)) => {
            // Simulated straggler: stall, then compute normally.
            std::thread::sleep(Duration::from_millis(ms));
        }
        Some(InjectedFault::Error) => {
            return MasterMsg::TaskFailed {
                exec,
                attempt: spec.attempt,
                reason: "injected: user function error".into(),
            };
        }
        Some(InjectedFault::Panic) | None => {}
    }

    let mut cache_hit = false;
    let mut sides: BTreeMap<usize, Vec<Value>> = BTreeMap::new();
    for (member, side) in &spec.sides {
        let records = match side.key {
            Some(key) => {
                let mut c = cache.lock();
                match c.get(key) {
                    Some(hit) => {
                        if side.expect_cached {
                            cache_hit = true;
                        }
                        hit
                    }
                    None => {
                        c.put(key, Arc::clone(&side.records));
                        Arc::clone(&side.records)
                    }
                }
            }
            None => Arc::clone(&side.records),
        };
        sides.insert(*member, records.as_ref().clone());
    }

    let fop = &job.plan.fops[spec.fop];
    let attempt = spec.attempt;
    let computed = panic::catch_unwind(AssertUnwindSafe(|| {
        if spec.inject == Some(InjectedFault::Panic) {
            panic!("injected: user function panic");
        }
        apply_chain(&job.dag, fop, spec.index, &spec.mains, &sides)
    }));
    let mut output = match computed {
        Ok(Ok(records)) => records,
        Ok(Err(udf)) => {
            return MasterMsg::TaskFailed {
                exec,
                attempt,
                reason: udf.to_string(),
            };
        }
        Err(payload) => {
            return MasterMsg::TaskFailed {
                exec,
                attempt,
                reason: panic_reason(payload.as_ref()),
            };
        }
    };

    let mut preaggregated = 0usize;
    if spec.preaggregate {
        if let Some((f, keyed)) = combine_consumer(&job.dag, &job.plan, spec.fop) {
            let before = output.len();
            output = preaggregate(output, &f, keyed);
            preaggregated = before.saturating_sub(output.len());
        }
    }

    let cached_keys = cache.lock().keys();
    MasterMsg::TaskDone {
        exec,
        attempt,
        output,
        preaggregated,
        cache_hit,
        cached_keys,
    }
}

/// Extracts a readable message from a caught panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".into()
    }
}

/// Finds the combiner of this fop's consumer, when every consumer is the
/// same combine operator (the precondition for transient-side partial
/// aggregation).
pub fn combine_consumer(
    dag: &LogicalDag,
    plan: &PhysicalPlan,
    fop: crate::compiler::FopId,
) -> Option<(pado_dag::CombineFn, bool)> {
    let outs = plan.out_edges(fop);
    if outs.is_empty() {
        return None;
    }
    let mut found: Option<(pado_dag::CombineFn, bool)> = None;
    for e in outs {
        let head = plan.fops[e.dst].head();
        match &dag.op(head).kind {
            OperatorKind::Combine { f, keyed } => match &found {
                None => found = Some((f.clone(), *keyed)),
                Some((_, k)) if *k == *keyed => {}
                _ => return None,
            },
            _ => return None,
        }
    }
    found
}

/// Merges records within one partition ahead of the consumer combine:
/// per key for keyed combiners, into a single accumulator for global ones.
pub fn preaggregate(records: Vec<Value>, f: &pado_dag::CombineFn, keyed: bool) -> Vec<Value> {
    if keyed {
        let mut accs: BTreeMap<Value, Value> = BTreeMap::new();
        for rec in records {
            if let Some((k, v)) = rec.into_pair() {
                let acc = accs.remove(&k).unwrap_or_else(|| f.identity());
                accs.insert(k, f.merge(acc, v));
            }
        }
        accs.into_iter().map(|(k, v)| Value::pair(k, v)).collect()
    } else {
        vec![f.merge_all(records)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pado_dag::CombineFn;

    #[test]
    fn preaggregate_keyed_merges_per_key() {
        let recs = vec![
            Value::pair(Value::from("a"), Value::from(1i64)),
            Value::pair(Value::from("a"), Value::from(2i64)),
            Value::pair(Value::from("b"), Value::from(4i64)),
        ];
        let out = preaggregate(recs, &CombineFn::sum_i64(), true);
        assert_eq!(
            out,
            vec![
                Value::pair(Value::from("a"), Value::from(3i64)),
                Value::pair(Value::from("b"), Value::from(4i64)),
            ]
        );
    }

    #[test]
    fn preaggregate_global_collapses_to_one() {
        let recs: Vec<Value> = (1..=4).map(Value::from).collect();
        let out = preaggregate(recs, &CombineFn::sum_i64(), false);
        assert_eq!(out, vec![Value::from(10i64)]);
    }

    #[test]
    fn preaggregate_empty_keyed_is_empty() {
        let out = preaggregate(Vec::new(), &CombineFn::sum_i64(), true);
        assert!(out.is_empty());
    }
}
