//! Pado executors: multi-slot worker threads running tasks (§3.2.4).
//!
//! Each executor owns a user-configured number of task slots, realized as
//! worker threads sharing one task queue, plus an input cache shared by
//! its slots. Executors are *pure computers*: the master assembles and
//! routes all inputs, and executors send finished outputs back. This keeps
//! every placement decision (and therefore every eviction consequence) in
//! one deterministic place, while preserving the paper's control flow.

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};
use pado_dag::{Block, LogicalDag, OperatorKind, UdfError, Value};
use parking_lot::Mutex;

use crate::compiler::{PhysicalPlan, Placement};
use crate::exec::apply_chain;
use crate::runtime::cache::{CacheKey, LruCache};
use crate::runtime::config::RuntimeConfig;
use crate::runtime::message::{ExecId, ExecutorMsg, InjectedFault, MasterMsg, TaskSpec};

/// Worker-thread name prefix; the panic hook filter keys off it.
const WORKER_THREAD_PREFIX: &str = "pado-exec-";

static PANIC_HOOK_FILTER: Once = Once::new();

/// Installs (once per process) a panic hook that silences panics on
/// executor worker threads. Those panics are caught by [`run_task`] and
/// reported to the master as [`MasterMsg::TaskFailed`]; printing the
/// default backtrace banner for each would drown test output. Panics on
/// any other thread still reach the previous hook untouched.
fn install_panic_hook_filter() {
    PANIC_HOOK_FILTER.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_THREAD_PREFIX));
            if !on_worker {
                previous(info);
            }
        }));
    });
}

/// Immutable job context shared by the master and all executors.
#[derive(Debug)]
pub struct JobContext {
    /// The logical DAG (holds the user functions).
    pub dag: LogicalDag,
    /// The compiled physical plan.
    pub plan: PhysicalPlan,
    /// Runtime tunables.
    pub config: RuntimeConfig,
}

/// A live executor: its task queue plus its worker threads.
#[derive(Debug)]
pub struct ExecutorHandle {
    /// Executor id (never reused across replacements).
    pub id: ExecId,
    /// Transient or reserved.
    pub kind: Placement,
    sender: Sender<ExecutorMsg>,
    workers: Vec<JoinHandle<()>>,
}

impl ExecutorHandle {
    /// Spawns an executor with `config.slots_per_executor` worker threads.
    pub fn spawn(
        id: ExecId,
        kind: Placement,
        job: Arc<JobContext>,
        to_master: Sender<MasterMsg>,
    ) -> Self {
        install_panic_hook_filter();
        let (tx, rx) = crossbeam::channel::unbounded::<ExecutorMsg>();
        let cache = Arc::new(Mutex::new(LruCache::new(job.config.cache_capacity_bytes)));
        let slots = job.config.slots_per_executor.max(1);
        let workers = (0..slots)
            .map(|slot| {
                let rx = rx.clone();
                let job = Arc::clone(&job);
                let to_master = to_master.clone();
                let cache = Arc::clone(&cache);
                std::thread::Builder::new()
                    .name(format!("pado-exec-{id}-slot{slot}"))
                    .spawn(move || worker_loop(id, rx, job, to_master, cache))
                    .expect("spawn executor worker thread")
            })
            .collect();
        ExecutorHandle {
            id,
            kind,
            sender: tx,
            workers,
        }
    }

    /// Enqueues a task on this executor.
    pub fn run(&self, spec: TaskSpec) {
        // A send can only fail after Stop; the master never runs-after-stop.
        let _ = self.sender.send(ExecutorMsg::Run(spec));
    }

    /// Tells every worker slot to shut down.
    pub fn stop(&self) {
        for _ in 0..self.workers.len() {
            let _ = self.sender.send(ExecutorMsg::Stop);
        }
    }

    /// Joins all worker threads (call after [`ExecutorHandle::stop`]).
    pub fn join(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    exec: ExecId,
    rx: Receiver<ExecutorMsg>,
    job: Arc<JobContext>,
    to_master: Sender<MasterMsg>,
    cache: Arc<Mutex<LruCache>>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ExecutorMsg::Stop => break,
            ExecutorMsg::Run(spec) => {
                let done = run_task(exec, &job, &cache, spec);
                if to_master.send(done).is_err() {
                    break; // The master is gone; the job ended.
                }
            }
        }
    }
}

/// Everything a successful task attempt reports back to the master.
struct TaskOutput {
    output: Block,
    preaggregated: usize,
    cache_hit: bool,
    cached_keys: Vec<CacheKey>,
}

/// Executes one task: resolve side inputs through the cache, apply the
/// fused chain, optionally pre-aggregate the output.
///
/// The *entire* task body — side-input resolution, plan lookup, chain
/// application, pre-aggregation — runs inside `catch_unwind`, so any
/// panic (a UDF's, or a runtime bug's) yields a [`MasterMsg::TaskFailed`]
/// instead of killing the worker slot silently: the slot stays alive and
/// the master learns the attempt died.
fn run_task(exec: ExecId, job: &JobContext, cache: &Mutex<LruCache>, spec: TaskSpec) -> MasterMsg {
    match spec.inject {
        Some(InjectedFault::Delay(ms)) => {
            // Simulated straggler: stall, then compute normally.
            std::thread::sleep(Duration::from_millis(ms));
        }
        Some(InjectedFault::Error) => {
            return MasterMsg::TaskFailed {
                exec,
                attempt: spec.attempt,
                reason: "injected: user function error".into(),
            };
        }
        Some(InjectedFault::Panic) | None => {}
    }

    let attempt = spec.attempt;
    let computed = panic::catch_unwind(AssertUnwindSafe(|| task_body(job, cache, spec)));
    match computed {
        Ok(Ok(done)) => MasterMsg::TaskDone {
            exec,
            attempt,
            output: done.output,
            preaggregated: done.preaggregated,
            cache_hit: done.cache_hit,
            cached_keys: done.cached_keys,
        },
        Ok(Err(udf)) => MasterMsg::TaskFailed {
            exec,
            attempt,
            reason: udf.to_string(),
        },
        Err(payload) => MasterMsg::TaskFailed {
            exec,
            attempt,
            reason: panic_reason(payload.as_ref()),
        },
    }
}

/// The fault-isolated body of one task attempt.
///
/// Side inputs resolve to shared blocks (a cache hit or the master's copy;
/// never a record clone), the fused chain computes the output records, and
/// the result is sealed into a [`Block`] exactly once.
fn task_body(
    job: &JobContext,
    cache: &Mutex<LruCache>,
    spec: TaskSpec,
) -> Result<TaskOutput, UdfError> {
    if spec.inject == Some(InjectedFault::Panic) {
        panic!("injected: user function panic");
    }

    let mut cache_hit = false;
    let mut sides: BTreeMap<usize, Block> = BTreeMap::new();
    for (member, side) in &spec.sides {
        let records = match side.key {
            Some(key) => {
                let mut c = cache.lock();
                match c.get(key) {
                    Some(hit) => {
                        if side.expect_cached {
                            cache_hit = true;
                        }
                        hit
                    }
                    None => {
                        c.put(key, Arc::clone(&side.records));
                        Arc::clone(&side.records)
                    }
                }
            }
            None => Arc::clone(&side.records),
        };
        sides.insert(*member, records);
    }

    let fop = &job.plan.fops[spec.fop];
    let mut output = apply_chain(&job.dag, fop, spec.index, &spec.mains, &sides)?;

    let mut preaggregated = 0usize;
    if spec.preaggregate {
        if let Some((f, keyed)) = combine_consumer(&job.dag, &job.plan, spec.fop) {
            let before = output.len();
            output = preaggregate(output, &f, keyed);
            preaggregated = before.saturating_sub(output.len());
        }
    }

    let cached_keys = cache.lock().keys();
    Ok(TaskOutput {
        output: output.into(),
        preaggregated,
        cache_hit,
        cached_keys,
    })
}

/// Extracts a readable message from a caught panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".into()
    }
}

/// Finds the combiner of this fop's consumer, when every consumer is the
/// same combine operator (the precondition for transient-side partial
/// aggregation).
pub fn combine_consumer(
    dag: &LogicalDag,
    plan: &PhysicalPlan,
    fop: crate::compiler::FopId,
) -> Option<(pado_dag::CombineFn, bool)> {
    let outs = plan.out_edges(fop);
    if outs.is_empty() {
        return None;
    }
    let mut found: Option<(pado_dag::CombineFn, bool)> = None;
    for e in outs {
        let head = plan.fops[e.dst].head();
        match &dag.op(head).kind {
            OperatorKind::Combine { f, keyed } => match &found {
                None => found = Some((f.clone(), *keyed)),
                Some((_, k)) if *k == *keyed => {}
                _ => return None,
            },
            _ => return None,
        }
    }
    found
}

/// Merges records within one partition ahead of the consumer combine:
/// per key for keyed combiners, into a single accumulator for global ones.
pub fn preaggregate(records: Vec<Value>, f: &pado_dag::CombineFn, keyed: bool) -> Vec<Value> {
    if keyed {
        let mut accs: BTreeMap<Value, Value> = BTreeMap::new();
        for rec in records {
            if let Some((k, v)) = rec.into_pair() {
                let acc = accs.remove(&k).unwrap_or_else(|| f.identity());
                accs.insert(k, f.merge(acc, v));
            }
        }
        accs.into_iter().map(|(k, v)| Value::pair(k, v)).collect()
    } else if records.is_empty() {
        // An empty partition contributes nothing. Emitting the combiner's
        // identity here — as the keyed branch never does — would add one
        // spurious record per empty partition to the shuffled stream.
        Vec::new()
    } else {
        vec![f.merge_all(records)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pado_dag::CombineFn;

    #[test]
    fn preaggregate_keyed_merges_per_key() {
        let recs = vec![
            Value::pair(Value::from("a"), Value::from(1i64)),
            Value::pair(Value::from("a"), Value::from(2i64)),
            Value::pair(Value::from("b"), Value::from(4i64)),
        ];
        let out = preaggregate(recs, &CombineFn::sum_i64(), true);
        assert_eq!(
            out,
            vec![
                Value::pair(Value::from("a"), Value::from(3i64)),
                Value::pair(Value::from("b"), Value::from(4i64)),
            ]
        );
    }

    #[test]
    fn preaggregate_global_collapses_to_one() {
        let recs: Vec<Value> = (1..=4).map(Value::from).collect();
        let out = preaggregate(recs, &CombineFn::sum_i64(), false);
        assert_eq!(out, vec![Value::from(10i64)]);
    }

    #[test]
    fn preaggregate_empty_keyed_is_empty() {
        let out = preaggregate(Vec::new(), &CombineFn::sum_i64(), true);
        assert!(out.is_empty());
    }

    #[test]
    fn preaggregate_empty_global_is_empty() {
        // An empty partition must contribute zero records, exactly like
        // the keyed path — not one identity record.
        let out = preaggregate(Vec::new(), &CombineFn::sum_i64(), false);
        assert!(out.is_empty());
    }

    /// A runtime bug inside the task body — here an out-of-range fop id
    /// hitting the plan lookup, which the old narrow `catch_unwind`
    /// around `apply_chain` alone did not cover — must surface as
    /// `TaskFailed`, not kill the worker slot silently.
    #[test]
    fn runtime_panic_in_task_body_reports_task_failed() {
        use crate::compiler::compile;
        use pado_dag::{Pipeline, SourceFn};

        let p = Pipeline::new();
        p.read("R", 1, SourceFn::from_vec(vec![Value::from(1i64)]))
            .sink("S");
        let dag = p.build().unwrap();
        let plan = compile(&dag).unwrap();
        let job = Arc::new(JobContext {
            dag,
            plan,
            config: RuntimeConfig::default(),
        });
        let cache = Arc::new(Mutex::new(LruCache::new(1024)));
        let spec = TaskSpec {
            attempt: 7,
            fop: 999, // No such fop: plan lookup panics inside the body.
            index: 0,
            mains: Vec::new(),
            sides: BTreeMap::new(),
            preaggregate: false,
            inject: None,
        };
        install_panic_hook_filter();
        let msg = std::thread::Builder::new()
            .name(format!("{WORKER_THREAD_PREFIX}test-slot0"))
            .spawn(move || run_task(3, &job, &cache, spec))
            .unwrap()
            .join()
            .expect("run_task must catch the panic, not unwind the slot");
        match msg {
            MasterMsg::TaskFailed {
                exec,
                attempt,
                reason,
            } => {
                assert_eq!((exec, attempt), (3, 7));
                assert!(reason.starts_with("panic:"), "reason: {reason}");
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }
}
