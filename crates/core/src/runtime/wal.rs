//! Durable write-ahead log for the master's control-plane state.
//!
//! Pado deliberately refuses to checkpoint intermediate *data* — blocks
//! live in executor stores and are recomputed on loss — but the master's
//! scheduling decisions must survive a master crash at any instruction
//! boundary. Because master state is already a pure function of the
//! event journal (PR 4), durability is a persistence-and-replay
//! exercise: every [`JobEvent`] the master emits is appended to an
//! on-disk log as a length-prefixed, CRC-checksummed, epoch-stamped
//! frame, interleaved with periodic compacting snapshots of the derived
//! state ([`WalSnapshot`]) and with dedicated block-location records
//! (the location table is reconstructable independently of scheduler
//! state, following Whiz/F²).
//!
//! # Frame format
//!
//! ```text
//! [magic u32 LE][len u32 LE][crc u32 LE][payload: len bytes]
//! payload = [kind u8][epoch u64 LE][body]
//! ```
//!
//! `crc` covers the payload only. `kind` is 1 for an event frame, 2 for
//! a snapshot, 3 for a location record. `epoch` is the reconfiguration
//! epoch at append time, so recovery can restore the fencing horizon
//! even when the epoch-advancing events themselves were compacted away.
//!
//! # Recovery semantics
//!
//! [`scan`] parses the longest valid prefix and classifies whatever
//! follows it:
//!
//! - **clean** — the file ends exactly at a frame boundary; replay the
//!   whole log.
//! - **torn tail** — trailing garbage with no further parseable frame
//!   (the classic crash-mid-write shape); the tail is truncated and the
//!   full prefix replayed.
//! - **interior corruption** — a bad frame *followed by* parseable
//!   frames (bit rot inside the log). Events between the last snapshot
//!   and the corruption can no longer be trusted to be complete, so
//!   recovery falls back to the last good snapshot and drops the rest.
//!
//! In every case the recovered state is a prefix of what the pre-crash
//! master knew, which keeps it consistent: attempt fencing
//! (`next_attempt` jumps past everything ever issued) and epoch fencing
//! (the epoch never regresses past the recovered stamp) make any frame
//! from the discarded suffix harmlessly rejectable.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::compiler::{FopId, Placement};
use crate::error::RuntimeError;
use crate::runtime::fault::FaultInjector;
use crate::runtime::journal::JobEvent;
use crate::runtime::message::{AttemptId, ExecId};
use crate::runtime::reconfig::{ReconfigChange, ReconfigTrigger};
use crate::runtime::store::BlockRef;

/// Frame magic: `WAL1` little-endian.
pub const WAL_MAGIC: u32 = 0x3157_414C;

/// Hard ceiling on a single frame's payload, so a corrupt length field
/// can never drive a multi-gigabyte allocation during recovery.
const MAX_FRAME_LEN: u32 = 16 << 20;

const KIND_EVENT: u8 = 1;
const KIND_SNAPSHOT: u8 = 2;
const KIND_LOCATIONS: u8 = 3;

// ---------------------------------------------------------------------
// CRC32 (IEEE, bitwise — the log is control-plane-sized, not a hot path)
// ---------------------------------------------------------------------

fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (crc & 1).wrapping_neg());
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Byte codec (hand-rolled little-endian; the repo carries no serde)
// ---------------------------------------------------------------------

type DecodeResult<T> = Result<T, &'static str>;

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.usize(x);
            }
        }
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err("payload underrun");
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> DecodeResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err("bad bool"),
        }
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(u64::from_le_bytes(a))
    }

    fn usize(&mut self) -> DecodeResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| "usize overflow")
    }

    fn str(&mut self) -> DecodeResult<String> {
        let n = self.usize()?;
        if n > self.bytes.len().saturating_sub(self.pos) {
            return Err("string underrun");
        }
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| "bad utf8")
    }

    fn opt_usize(&mut self) -> DecodeResult<Option<usize>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.usize()?)),
            _ => Err("bad option tag"),
        }
    }

    fn done(&self) -> DecodeResult<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err("trailing payload bytes")
        }
    }
}

fn enc_block_ref(e: &mut Enc, b: &BlockRef) {
    match b {
        BlockRef::Output { fop, index } => {
            e.u8(0);
            e.usize(*fop);
            e.usize(*index);
        }
        BlockRef::Bucket {
            fop,
            index,
            dst_par,
            dst,
        } => {
            e.u8(1);
            e.usize(*fop);
            e.usize(*index);
            e.usize(*dst_par);
            e.usize(*dst);
        }
    }
}

fn dec_block_ref(d: &mut Dec<'_>) -> DecodeResult<BlockRef> {
    match d.u8()? {
        0 => Ok(BlockRef::Output {
            fop: d.usize()?,
            index: d.usize()?,
        }),
        1 => Ok(BlockRef::Bucket {
            fop: d.usize()?,
            index: d.usize()?,
            dst_par: d.usize()?,
            dst: d.usize()?,
        }),
        _ => Err("bad block-ref tag"),
    }
}

fn enc_placement(e: &mut Enc, p: Placement) {
    e.u8(match p {
        Placement::Transient => 0,
        Placement::Reserved => 1,
    });
}

fn dec_placement(d: &mut Dec<'_>) -> DecodeResult<Placement> {
    match d.u8()? {
        0 => Ok(Placement::Transient),
        1 => Ok(Placement::Reserved),
        _ => Err("bad placement tag"),
    }
}

fn enc_change(e: &mut Enc, c: &ReconfigChange) {
    match c {
        ReconfigChange::MigrateStage { stage, to } => {
            e.u8(0);
            e.usize(*stage);
            enc_placement(e, *to);
        }
        ReconfigChange::Repartition { fop, parallelism } => {
            e.u8(1);
            e.usize(*fop);
            e.usize(*parallelism);
        }
        ReconfigChange::DrainTransient { nth } => {
            e.u8(2);
            e.usize(*nth);
        }
    }
}

fn dec_change(d: &mut Dec<'_>) -> DecodeResult<ReconfigChange> {
    match d.u8()? {
        0 => Ok(ReconfigChange::MigrateStage {
            stage: d.usize()?,
            to: dec_placement(d)?,
        }),
        1 => Ok(ReconfigChange::Repartition {
            fop: d.usize()?,
            parallelism: d.usize()?,
        }),
        2 => Ok(ReconfigChange::DrainTransient { nth: d.usize()? }),
        _ => Err("bad reconfig-change tag"),
    }
}

fn enc_trigger(e: &mut Enc, t: ReconfigTrigger) {
    e.u8(match t {
        ReconfigTrigger::Api => 0,
        ReconfigTrigger::Policy => 1,
        ReconfigTrigger::Chaos => 2,
    });
}

fn dec_trigger(d: &mut Dec<'_>) -> DecodeResult<ReconfigTrigger> {
    match d.u8()? {
        0 => Ok(ReconfigTrigger::Api),
        1 => Ok(ReconfigTrigger::Policy),
        2 => Ok(ReconfigTrigger::Chaos),
        _ => Err("bad trigger tag"),
    }
}

#[allow(clippy::too_many_lines)]
fn enc_event(e: &mut Enc, ev: &JobEvent) {
    match ev {
        JobEvent::TaskLaunched {
            fop,
            index,
            attempt,
            exec,
            relaunch,
            side_bytes_sent,
            side_bytes_saved,
            side_cache_misses,
        } => {
            e.u8(0);
            e.usize(*fop);
            e.usize(*index);
            e.u64(*attempt);
            e.usize(*exec);
            e.bool(*relaunch);
            e.usize(*side_bytes_sent);
            e.usize(*side_bytes_saved);
            e.usize(*side_cache_misses);
        }
        JobEvent::SpeculativeLaunched {
            fop,
            index,
            attempt,
            exec,
            side_bytes_sent,
            side_bytes_saved,
            side_cache_misses,
        } => {
            e.u8(1);
            e.usize(*fop);
            e.usize(*index);
            e.u64(*attempt);
            e.usize(*exec);
            e.usize(*side_bytes_sent);
            e.usize(*side_bytes_saved);
            e.usize(*side_cache_misses);
        }
        JobEvent::TaskStarted {
            fop,
            index,
            attempt,
            exec,
        } => {
            e.u8(2);
            e.usize(*fop);
            e.usize(*index);
            e.u64(*attempt);
            e.usize(*exec);
        }
        JobEvent::TaskCommitted {
            fop,
            index,
            attempt,
            exec,
            speculative,
            bytes_pushed,
            preaggregated,
            cache_hit,
        } => {
            e.u8(3);
            e.usize(*fop);
            e.usize(*index);
            e.u64(*attempt);
            e.usize(*exec);
            e.bool(*speculative);
            e.usize(*bytes_pushed);
            e.usize(*preaggregated);
            e.bool(*cache_hit);
        }
        JobEvent::TaskFailed {
            fop,
            index,
            attempt,
            exec,
        } => {
            e.u8(4);
            e.usize(*fop);
            e.usize(*index);
            e.u64(*attempt);
            e.usize(*exec);
        }
        JobEvent::TaskReverted { fop, index } => {
            e.u8(5);
            e.usize(*fop);
            e.usize(*index);
        }
        JobEvent::ExecutorBlacklisted(x) => {
            e.u8(6);
            e.usize(*x);
        }
        JobEvent::StageCompleted(s) => {
            e.u8(7);
            e.usize(*s);
        }
        JobEvent::StageReopened { stage, recompute } => {
            e.u8(8);
            e.usize(*stage);
            e.bool(*recompute);
        }
        JobEvent::ContainerEvicted(x) => {
            e.u8(9);
            e.usize(*x);
        }
        JobEvent::ReservedFailed(x) => {
            e.u8(10);
            e.usize(*x);
        }
        JobEvent::ExecutorDeclaredDead(x) => {
            e.u8(11);
            e.usize(*x);
        }
        JobEvent::ContainerAdded(x) => {
            e.u8(12);
            e.usize(*x);
        }
        JobEvent::HeartbeatMissed(x) => {
            e.u8(13);
            e.usize(*x);
        }
        JobEvent::MessageRetransmitted {
            exec,
            to_master,
            seq,
        } => {
            e.u8(14);
            e.usize(*exec);
            e.bool(*to_master);
            e.u64(*seq);
        }
        JobEvent::MasterRecovered => e.u8(15),
        JobEvent::BlockAdmitted {
            exec,
            block,
            bytes,
            resident,
        } => {
            e.u8(16);
            e.usize(*exec);
            enc_block_ref(e, block);
            e.usize(*bytes);
            e.usize(*resident);
        }
        JobEvent::BlockSpilled {
            exec,
            block,
            bytes,
            raw_bytes,
            resident,
        } => {
            e.u8(17);
            e.usize(*exec);
            enc_block_ref(e, block);
            e.usize(*bytes);
            e.usize(*raw_bytes);
            e.usize(*resident);
        }
        JobEvent::BlockLoaded {
            exec,
            block,
            bytes,
            resident,
        } => {
            e.u8(18);
            e.usize(*exec);
            enc_block_ref(e, block);
            e.usize(*bytes);
            e.usize(*resident);
        }
        JobEvent::BlockReleased {
            exec,
            block,
            bytes,
            resident,
        } => {
            e.u8(19);
            e.usize(*exec);
            enc_block_ref(e, block);
            e.usize(*bytes);
            e.usize(*resident);
        }
        JobEvent::BlockPinned { exec, block } => {
            e.u8(20);
            e.usize(*exec);
            enc_block_ref(e, block);
        }
        JobEvent::BlockUnpinned { exec, block } => {
            e.u8(21);
            e.usize(*exec);
            enc_block_ref(e, block);
        }
        JobEvent::StoreBudgetChanged { exec, budget } => {
            e.u8(22);
            e.usize(*exec);
            e.usize(*budget);
        }
        JobEvent::PushDeferred {
            fop,
            index,
            exec,
            bytes,
        } => {
            e.u8(23);
            e.usize(*fop);
            e.usize(*index);
            e.usize(*exec);
            e.usize(*bytes);
        }
        JobEvent::PushResumed {
            fop,
            index,
            exec,
            bytes,
        } => {
            e.u8(24);
            e.usize(*fop);
            e.usize(*index);
            e.usize(*exec);
            e.usize(*bytes);
        }
        JobEvent::OomInjected {
            fop,
            index,
            attempt,
            exec,
        } => {
            e.u8(25);
            e.usize(*fop);
            e.usize(*index);
            e.u64(*attempt);
            e.usize(*exec);
        }
        JobEvent::CacheHit { exec, key, bytes } => {
            e.u8(26);
            e.usize(*exec);
            e.usize(*key);
            e.usize(*bytes);
        }
        JobEvent::CacheMiss { exec, key } => {
            e.u8(27);
            e.usize(*exec);
            e.usize(*key);
        }
        JobEvent::ReconfigRequested {
            reconfig,
            trigger,
            change,
        } => {
            e.u8(28);
            e.u64(*reconfig);
            enc_trigger(e, *trigger);
            enc_change(e, change);
        }
        JobEvent::ReconfigPrepared { reconfig, quiesced } => {
            e.u8(29);
            e.u64(*reconfig);
            e.usize(*quiesced);
        }
        JobEvent::ReconfigCommitted {
            reconfig,
            change,
            epoch,
        } => {
            e.u8(30);
            e.u64(*reconfig);
            enc_change(e, change);
            e.u64(*epoch);
        }
        JobEvent::ReconfigAborted { reconfig, reason } => {
            e.u8(31);
            e.u64(*reconfig);
            e.str(reason);
        }
        JobEvent::EpochAdvanced { epoch } => {
            e.u8(32);
            e.u64(*epoch);
        }
        JobEvent::StaleFrameFenced { exec, seq, epoch } => {
            e.u8(33);
            e.usize(*exec);
            e.u64(*seq);
            e.u64(*epoch);
        }
        JobEvent::WalRecovered {
            frames_replayed,
            frames_truncated,
            snapshot_restored,
        } => {
            e.u8(34);
            e.usize(*frames_replayed);
            e.usize(*frames_truncated);
            e.bool(*snapshot_restored);
        }
        JobEvent::RunAborted { reason } => {
            e.u8(35);
            e.str(reason);
        }
        JobEvent::RunStalled { waited_ms } => {
            e.u8(36);
            e.u64(*waited_ms);
        }
        JobEvent::PoolQuiesced { in_flight } => {
            e.u8(37);
            e.usize(*in_flight);
        }
        JobEvent::PoolWorkerDetached { worker } => {
            e.u8(38);
            e.usize(*worker);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn dec_event(d: &mut Dec<'_>) -> DecodeResult<JobEvent> {
    Ok(match d.u8()? {
        0 => JobEvent::TaskLaunched {
            fop: d.usize()?,
            index: d.usize()?,
            attempt: d.u64()?,
            exec: d.usize()?,
            relaunch: d.bool()?,
            side_bytes_sent: d.usize()?,
            side_bytes_saved: d.usize()?,
            side_cache_misses: d.usize()?,
        },
        1 => JobEvent::SpeculativeLaunched {
            fop: d.usize()?,
            index: d.usize()?,
            attempt: d.u64()?,
            exec: d.usize()?,
            side_bytes_sent: d.usize()?,
            side_bytes_saved: d.usize()?,
            side_cache_misses: d.usize()?,
        },
        2 => JobEvent::TaskStarted {
            fop: d.usize()?,
            index: d.usize()?,
            attempt: d.u64()?,
            exec: d.usize()?,
        },
        3 => JobEvent::TaskCommitted {
            fop: d.usize()?,
            index: d.usize()?,
            attempt: d.u64()?,
            exec: d.usize()?,
            speculative: d.bool()?,
            bytes_pushed: d.usize()?,
            preaggregated: d.usize()?,
            cache_hit: d.bool()?,
        },
        4 => JobEvent::TaskFailed {
            fop: d.usize()?,
            index: d.usize()?,
            attempt: d.u64()?,
            exec: d.usize()?,
        },
        5 => JobEvent::TaskReverted {
            fop: d.usize()?,
            index: d.usize()?,
        },
        6 => JobEvent::ExecutorBlacklisted(d.usize()?),
        7 => JobEvent::StageCompleted(d.usize()?),
        8 => JobEvent::StageReopened {
            stage: d.usize()?,
            recompute: d.bool()?,
        },
        9 => JobEvent::ContainerEvicted(d.usize()?),
        10 => JobEvent::ReservedFailed(d.usize()?),
        11 => JobEvent::ExecutorDeclaredDead(d.usize()?),
        12 => JobEvent::ContainerAdded(d.usize()?),
        13 => JobEvent::HeartbeatMissed(d.usize()?),
        14 => JobEvent::MessageRetransmitted {
            exec: d.usize()?,
            to_master: d.bool()?,
            seq: d.u64()?,
        },
        15 => JobEvent::MasterRecovered,
        16 => JobEvent::BlockAdmitted {
            exec: d.usize()?,
            block: dec_block_ref(d)?,
            bytes: d.usize()?,
            resident: d.usize()?,
        },
        17 => JobEvent::BlockSpilled {
            exec: d.usize()?,
            block: dec_block_ref(d)?,
            bytes: d.usize()?,
            raw_bytes: d.usize()?,
            resident: d.usize()?,
        },
        18 => JobEvent::BlockLoaded {
            exec: d.usize()?,
            block: dec_block_ref(d)?,
            bytes: d.usize()?,
            resident: d.usize()?,
        },
        19 => JobEvent::BlockReleased {
            exec: d.usize()?,
            block: dec_block_ref(d)?,
            bytes: d.usize()?,
            resident: d.usize()?,
        },
        20 => JobEvent::BlockPinned {
            exec: d.usize()?,
            block: dec_block_ref(d)?,
        },
        21 => JobEvent::BlockUnpinned {
            exec: d.usize()?,
            block: dec_block_ref(d)?,
        },
        22 => JobEvent::StoreBudgetChanged {
            exec: d.usize()?,
            budget: d.usize()?,
        },
        23 => JobEvent::PushDeferred {
            fop: d.usize()?,
            index: d.usize()?,
            exec: d.usize()?,
            bytes: d.usize()?,
        },
        24 => JobEvent::PushResumed {
            fop: d.usize()?,
            index: d.usize()?,
            exec: d.usize()?,
            bytes: d.usize()?,
        },
        25 => JobEvent::OomInjected {
            fop: d.usize()?,
            index: d.usize()?,
            attempt: d.u64()?,
            exec: d.usize()?,
        },
        26 => JobEvent::CacheHit {
            exec: d.usize()?,
            key: d.usize()?,
            bytes: d.usize()?,
        },
        27 => JobEvent::CacheMiss {
            exec: d.usize()?,
            key: d.usize()?,
        },
        28 => JobEvent::ReconfigRequested {
            reconfig: d.u64()?,
            trigger: dec_trigger(d)?,
            change: dec_change(d)?,
        },
        29 => JobEvent::ReconfigPrepared {
            reconfig: d.u64()?,
            quiesced: d.usize()?,
        },
        30 => JobEvent::ReconfigCommitted {
            reconfig: d.u64()?,
            change: dec_change(d)?,
            epoch: d.u64()?,
        },
        31 => JobEvent::ReconfigAborted {
            reconfig: d.u64()?,
            reason: d.str()?,
        },
        32 => JobEvent::EpochAdvanced { epoch: d.u64()? },
        33 => JobEvent::StaleFrameFenced {
            exec: d.usize()?,
            seq: d.u64()?,
            epoch: d.u64()?,
        },
        34 => JobEvent::WalRecovered {
            frames_replayed: d.usize()?,
            frames_truncated: d.usize()?,
            snapshot_restored: d.bool()?,
        },
        35 => JobEvent::RunAborted { reason: d.str()? },
        36 => JobEvent::RunStalled {
            waited_ms: d.u64()?,
        },
        37 => JobEvent::PoolQuiesced {
            in_flight: d.usize()?,
        },
        38 => JobEvent::PoolWorkerDetached { worker: d.usize()? },
        _ => return Err("bad event tag"),
    })
}

// ---------------------------------------------------------------------
// Records and snapshots
// ---------------------------------------------------------------------

/// A compacting snapshot of the master's WAL-recoverable state. Appended
/// periodically so recovery replays a bounded suffix, and the fallback
/// target when interior corruption invalidates the events after it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WalSnapshot {
    /// Reconfiguration epoch at snapshot time.
    pub epoch: u64,
    /// Next attempt id the master would issue.
    pub next_attempt: AttemptId,
    /// Attempts that had reported terminally (the idempotence log).
    pub completed_attempts: Vec<AttemptId>,
    /// Block location table: committed task → executors holding its
    /// output.
    pub committed: Vec<(FopId, usize, Vec<ExecId>)>,
    /// Per-task first-launch flags (drives the relaunch metric).
    pub first_attempted: Vec<Vec<bool>>,
    /// Live per-fop parallelism overlay (repartitions applied).
    pub parallelism: Vec<usize>,
    /// Live per-fop placement overlay (migrations applied).
    pub placement: Vec<Placement>,
    /// Per-executor store occupancy in bytes (informational; the
    /// executors re-report authoritative numbers after recovery).
    pub resident: Vec<(ExecId, u64)>,
}

fn enc_snapshot(e: &mut Enc, s: &WalSnapshot) {
    e.u64(s.epoch);
    e.u64(s.next_attempt);
    e.usize(s.completed_attempts.len());
    for a in &s.completed_attempts {
        e.u64(*a);
    }
    e.usize(s.committed.len());
    for (fop, index, locs) in &s.committed {
        e.usize(*fop);
        e.usize(*index);
        e.usize(locs.len());
        for l in locs {
            e.usize(*l);
        }
    }
    e.usize(s.first_attempted.len());
    for row in &s.first_attempted {
        e.usize(row.len());
        for &b in row {
            e.bool(b);
        }
    }
    e.usize(s.parallelism.len());
    for &p in &s.parallelism {
        e.usize(p);
    }
    e.usize(s.placement.len());
    for &p in &s.placement {
        enc_placement(e, p);
    }
    e.usize(s.resident.len());
    for (x, b) in &s.resident {
        e.usize(*x);
        e.u64(*b);
    }
}

/// Length guard for decoded collections: a corrupt count must never
/// drive an unbounded allocation.
fn checked_len(n: usize) -> DecodeResult<usize> {
    if n > 1 << 22 {
        Err("implausible collection length")
    } else {
        Ok(n)
    }
}

fn dec_snapshot(d: &mut Dec<'_>) -> DecodeResult<WalSnapshot> {
    let epoch = d.u64()?;
    let next_attempt = d.u64()?;
    let n = checked_len(d.usize()?)?;
    let mut completed_attempts = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        completed_attempts.push(d.u64()?);
    }
    let n = checked_len(d.usize()?)?;
    let mut committed = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let fop = d.usize()?;
        let index = d.usize()?;
        let m = checked_len(d.usize()?)?;
        let mut locs = Vec::with_capacity(m.min(1024));
        for _ in 0..m {
            locs.push(d.usize()?);
        }
        committed.push((fop, index, locs));
    }
    let n = checked_len(d.usize()?)?;
    let mut first_attempted = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let m = checked_len(d.usize()?)?;
        let mut row = Vec::with_capacity(m.min(1024));
        for _ in 0..m {
            row.push(d.bool()?);
        }
        first_attempted.push(row);
    }
    let n = checked_len(d.usize()?)?;
    let mut parallelism = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        parallelism.push(d.usize()?);
    }
    let n = checked_len(d.usize()?)?;
    let mut placement = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        placement.push(dec_placement(d)?);
    }
    let n = checked_len(d.usize()?)?;
    let mut resident = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        resident.push((d.usize()?, d.u64()?));
    }
    Ok(WalSnapshot {
        epoch,
        next_attempt,
        completed_attempts,
        committed,
        first_attempted,
        parallelism,
        placement,
        resident,
    })
}

/// One durable record: what a frame's payload carries.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A journal event, with the stage the emitter attributed it to.
    Event {
        /// Stage of the event, when the emitter knew it.
        stage: Option<usize>,
        /// The event itself.
        event: JobEvent,
    },
    /// A compacting state snapshot.
    Snapshot(WalSnapshot),
    /// The authoritative location list of one committed task's output.
    /// Appended at commit, on deferred-push resume, and on drain
    /// migration, so the block location table reconstructs independently
    /// of how the commit-time push resolved.
    Locations {
        /// Producing fused operator.
        fop: FopId,
        /// Task index.
        index: usize,
        /// Executors holding the output.
        locations: Vec<ExecId>,
    },
}

/// A decoded frame: a record plus the epoch it was stamped with.
#[derive(Debug, Clone, PartialEq)]
pub struct WalFrame {
    /// Reconfiguration epoch at append time.
    pub epoch: u64,
    /// The payload.
    pub record: WalRecord,
}

/// Encodes one frame (magic, length, CRC, payload) ready to append.
pub fn encode_frame(epoch: u64, record: &WalRecord) -> Vec<u8> {
    let mut e = Enc::new();
    match record {
        WalRecord::Event { stage, event } => {
            e.u8(KIND_EVENT);
            e.u64(epoch);
            e.opt_usize(*stage);
            enc_event(&mut e, event);
        }
        WalRecord::Snapshot(s) => {
            e.u8(KIND_SNAPSHOT);
            e.u64(epoch);
            enc_snapshot(&mut e, s);
        }
        WalRecord::Locations {
            fop,
            index,
            locations,
        } => {
            e.u8(KIND_LOCATIONS);
            e.u64(epoch);
            e.usize(*fop);
            e.usize(*index);
            e.usize(locations.len());
            for l in locations {
                e.usize(*l);
            }
        }
    }
    let payload = e.buf;
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&WAL_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8]) -> DecodeResult<WalFrame> {
    let mut d = Dec::new(payload);
    let kind = d.u8()?;
    let epoch = d.u64()?;
    let record = match kind {
        KIND_EVENT => WalRecord::Event {
            stage: d.opt_usize()?,
            event: dec_event(&mut d)?,
        },
        KIND_SNAPSHOT => WalRecord::Snapshot(dec_snapshot(&mut d)?),
        KIND_LOCATIONS => {
            let fop = d.usize()?;
            let index = d.usize()?;
            let n = checked_len(d.usize()?)?;
            let mut locations = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                locations.push(d.usize()?);
            }
            WalRecord::Locations {
                fop,
                index,
                locations,
            }
        }
        _ => return Err("bad frame kind"),
    };
    d.done()?;
    Ok(WalFrame { epoch, record })
}

/// Tries to parse one frame at `pos`; `Ok` returns the frame and the
/// offset just past it.
fn parse_frame_at(bytes: &[u8], pos: usize) -> Option<(WalFrame, usize)> {
    if pos + 12 > bytes.len() {
        return None;
    }
    let word = |at: usize| {
        let mut a = [0u8; 4];
        a.copy_from_slice(&bytes[at..at + 4]);
        u32::from_le_bytes(a)
    };
    if word(pos) != WAL_MAGIC {
        return None;
    }
    let len = word(pos + 4);
    if len > MAX_FRAME_LEN {
        return None;
    }
    let end = pos + 12 + len as usize;
    if end > bytes.len() {
        return None;
    }
    let payload = &bytes[pos + 12..end];
    if crc32(payload) != word(pos + 8) {
        return None;
    }
    decode_payload(payload).ok().map(|f| (f, end))
}

// ---------------------------------------------------------------------
// Scan: longest valid prefix + corruption classification
// ---------------------------------------------------------------------

/// Result of scanning a (possibly damaged) WAL image.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// The frames recovery replays: the full valid prefix for a clean or
    /// torn log, or the prefix up to (and including) the last snapshot
    /// when interior corruption invalidated the events after it.
    pub frames: Vec<WalFrame>,
    /// Byte length the file should be truncated to so the surviving log
    /// ends exactly at the last replayed frame.
    pub valid_len: u64,
    /// Frames discarded: the corrupt frame itself, parseable frames
    /// stranded beyond it, and (on snapshot fallback) valid prefix
    /// frames past the last snapshot.
    pub frames_truncated: usize,
    /// `true` when interior corruption forced the snapshot fallback.
    pub snapshot_restored: bool,
}

/// Parses the longest valid frame prefix of `bytes` and classifies the
/// damage past it (see the module docs for the torn-tail vs interior-
/// corruption distinction). Pure, so property tests can fuzz it without
/// touching the filesystem; never panics on arbitrary input.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut frames: Vec<WalFrame> = Vec::new();
    let mut ends: Vec<usize> = Vec::new();
    let mut pos = 0usize;
    while let Some((frame, end)) = parse_frame_at(bytes, pos) {
        frames.push(frame);
        ends.push(end);
        pos = end;
    }
    if pos == bytes.len() {
        // Clean: the log ends exactly at a frame boundary.
        return WalScan {
            frames,
            valid_len: pos as u64,
            frames_truncated: 0,
            snapshot_restored: false,
        };
    }
    // Resync: hunt for a parseable frame beyond the damage. Finding one
    // proves the corruption is interior (bit rot), not a torn append.
    let mut stranded = 0usize;
    let mut search = pos + 1;
    while search + 12 <= bytes.len() {
        if let Some((_, mut at)) = parse_frame_at(bytes, search) {
            stranded += 1;
            while let Some((_, next)) = parse_frame_at(bytes, at) {
                stranded += 1;
                at = next;
            }
            if at >= bytes.len() {
                break;
            }
            search = at + 1;
        } else {
            search += 1;
        }
    }
    if stranded == 0 {
        // Torn tail: truncate the garbage, keep the whole prefix.
        return WalScan {
            frames,
            valid_len: pos as u64,
            frames_truncated: 1,
            snapshot_restored: false,
        };
    }
    // Interior corruption: events between the last snapshot and the bad
    // frame may be an incomplete story — fall back to the snapshot.
    let last_snap = frames
        .iter()
        .rposition(|f| matches!(f.record, WalRecord::Snapshot(_)));
    let (kept, valid_len) = match last_snap {
        Some(i) => (i + 1, ends[i] as u64),
        None => (0, 0),
    };
    let dropped_prefix = frames.len() - kept;
    frames.truncate(kept);
    WalScan {
        frames,
        valid_len,
        frames_truncated: dropped_prefix + 1 + stranded,
        snapshot_restored: true,
    }
}

// ---------------------------------------------------------------------
// Replay: frames -> recovered master state
// ---------------------------------------------------------------------

/// Master state rebuilt from a scanned WAL: everything
/// [`Master`](crate::runtime::Master) needs to resume scheduling after a
/// crash, plus the recovery statistics the journal reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredState {
    /// Reconfiguration epoch to resume fencing at (max of every source:
    /// snapshot, frame stamps, epoch-advance events).
    pub epoch: u64,
    /// Highest attempt id ever observed; the master fences past it.
    pub max_attempt: AttemptId,
    /// Terminally-reported attempts (the idempotence log).
    pub completed_attempts: HashSet<AttemptId>,
    /// Block location table: committed task → executors believed to hold
    /// its output. Recovery refetches and reverts what it cannot reach.
    pub committed: HashMap<(FopId, usize), Vec<ExecId>>,
    /// Per-task first-launch flags.
    pub first_attempted: Vec<Vec<bool>>,
    /// Live parallelism overlay (empty when the log held no snapshot).
    pub parallelism: Vec<usize>,
    /// Live placement overlay (empty when the log held no snapshot).
    pub placement: Vec<Placement>,
    /// Committed placement migrations after the last snapshot, for the
    /// master to re-apply (they need `stage_of`, which only it knows).
    pub reconfig_changes: Vec<ReconfigChange>,
    /// Last self-reported store occupancy per executor (informational).
    pub resident: HashMap<ExecId, u64>,
    /// Frames folded into this state.
    pub frames_replayed: usize,
    /// Frames the scan discarded.
    pub frames_truncated: usize,
    /// Whether interior corruption forced the snapshot fallback.
    pub snapshot_restored: bool,
}

impl RecoveredState {
    fn apply_snapshot(&mut self, s: &WalSnapshot) {
        self.epoch = self.epoch.max(s.epoch);
        self.max_attempt = self.max_attempt.max(s.next_attempt);
        self.completed_attempts = s.completed_attempts.iter().copied().collect();
        self.committed = s
            .committed
            .iter()
            .map(|(f, i, locs)| ((*f, *i), locs.clone()))
            .collect();
        self.first_attempted = s.first_attempted.clone();
        self.parallelism = s.parallelism.clone();
        self.placement = s.placement.clone();
        self.resident = s.resident.iter().copied().collect();
        self.reconfig_changes.clear();
    }

    fn lose_executor(&mut self, exec: ExecId) {
        for locs in self.committed.values_mut() {
            locs.retain(|&l| l != exec);
        }
        self.committed.retain(|_, locs| !locs.is_empty());
        self.resident.remove(&exec);
    }

    fn apply_event(&mut self, event: &JobEvent) {
        match event {
            JobEvent::TaskLaunched {
                fop,
                index,
                attempt,
                ..
            }
            | JobEvent::SpeculativeLaunched {
                fop,
                index,
                attempt,
                ..
            } => {
                self.max_attempt = self.max_attempt.max(*attempt);
                if let Some(row) = self.first_attempted.get_mut(*fop) {
                    if let Some(slot) = row.get_mut(*index) {
                        *slot = true;
                    }
                }
            }
            JobEvent::TaskCommitted { attempt, .. } | JobEvent::TaskFailed { attempt, .. } => {
                self.max_attempt = self.max_attempt.max(*attempt);
                self.completed_attempts.insert(*attempt);
            }
            JobEvent::TaskReverted { fop, index } => {
                self.committed.remove(&(*fop, *index));
            }
            JobEvent::ContainerEvicted(x)
            | JobEvent::ReservedFailed(x)
            | JobEvent::ExecutorDeclaredDead(x) => self.lose_executor(*x),
            JobEvent::EpochAdvanced { epoch } => self.epoch = self.epoch.max(*epoch),
            JobEvent::ReconfigCommitted { change, epoch, .. } => {
                self.epoch = self.epoch.max(*epoch);
                match change {
                    ReconfigChange::Repartition { fop, parallelism } => {
                        // Self-contained: resize directly; the master
                        // rebuilds task slots from `parallelism` anyway.
                        if let Some(p) = self.parallelism.get_mut(*fop) {
                            *p = *parallelism;
                        }
                        if let Some(row) = self.first_attempted.get_mut(*fop) {
                            *row = vec![false; *parallelism];
                        }
                    }
                    ReconfigChange::MigrateStage { .. } | ReconfigChange::DrainTransient { .. } => {
                        self.reconfig_changes.push(*change);
                    }
                }
            }
            JobEvent::BlockAdmitted { exec, resident, .. }
            | JobEvent::BlockSpilled { exec, resident, .. }
            | JobEvent::BlockLoaded { exec, resident, .. }
            | JobEvent::BlockReleased { exec, resident, .. } => {
                self.resident.insert(*exec, *resident as u64);
            }
            _ => {}
        }
    }
}

/// Folds scanned frames into the master state they describe.
pub fn replay(scan: &WalScan) -> RecoveredState {
    let mut state = RecoveredState {
        frames_truncated: scan.frames_truncated,
        snapshot_restored: scan.snapshot_restored,
        ..RecoveredState::default()
    };
    for frame in &scan.frames {
        state.epoch = state.epoch.max(frame.epoch);
        match &frame.record {
            WalRecord::Snapshot(s) => state.apply_snapshot(s),
            WalRecord::Event { event, .. } => state.apply_event(event),
            WalRecord::Locations {
                fop,
                index,
                locations,
            } => {
                if locations.is_empty() {
                    state.committed.remove(&(*fop, *index));
                } else {
                    state.committed.insert((*fop, *index), locations.clone());
                }
            }
        }
        state.frames_replayed += 1;
    }
    state
}

// ---------------------------------------------------------------------
// Seeded corruption (the chaos family's file-level faults)
// ---------------------------------------------------------------------

/// Seeded WAL-file corruption applied between crash and recovery:
/// deterministic bit flips and/or a truncation, the two failure shapes a
/// real disk + page cache produce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalCorruption {
    /// Seed of the deterministic corruption draws.
    pub seed: u64,
    /// Per-byte probability of flipping one bit.
    pub bit_flip_prob: f64,
    /// Probability of truncating the file at a random offset.
    pub truncate_prob: f64,
}

/// Applies seeded corruption to a WAL image in place. Pure and
/// deterministic for a fixed seed: the draws are keyed by byte offsets
/// in the image (a file position, not an iteration counter), routed
/// through [`FaultInjector`].
pub fn inject_corruption(bytes: &mut Vec<u8>, c: &WalCorruption) {
    if bytes.is_empty() {
        return;
    }
    let inj = FaultInjector::new(c.seed);
    if c.truncate_prob > 0.0 && inj.wal_truncate().unit() < c.truncate_prob {
        let cut = (inj.wal_truncate_offset().hash() as usize) % bytes.len();
        bytes.truncate(cut);
    }
    if c.bit_flip_prob > 0.0 {
        for (i, b) in bytes.iter_mut().enumerate() {
            let d = inj.wal_bit_flip(i as u64);
            if d.unit() < c.bit_flip_prob {
                *b ^= 1 << d.index(8);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The writer
// ---------------------------------------------------------------------

/// Append-only WAL writer with simulated durability semantics: appends
/// buffer until [`WalWriter::sync`] (driven by the `wal_sync_every`
/// knob), and a crash loses the unsynced suffix — exactly what a page
/// cache would.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: File,
    /// Shared with the master so frames stamp the live epoch.
    epoch: Arc<AtomicU64>,
    written_len: u64,
    synced_len: u64,
    sync_every: usize,
    appends_since_sync: usize,
    snapshot_every: usize,
    events_since_snapshot: usize,
    total_appends: u64,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> RuntimeError {
    RuntimeError::Invariant(format!("wal {what} failed at {}: {e}", path.display()))
}

impl WalWriter {
    /// Creates (truncating) the log at `path`.
    pub fn create(
        path: &Path,
        epoch: Arc<AtomicU64>,
        sync_every: usize,
        snapshot_every: usize,
    ) -> Result<Self, RuntimeError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err("create-dir", path, e))?;
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("create", path, e))?;
        Ok(WalWriter {
            path: path.to_path_buf(),
            file,
            epoch,
            written_len: 0,
            synced_len: 0,
            sync_every: sync_every.max(1),
            appends_since_sync: 0,
            snapshot_every: snapshot_every.max(1),
            events_since_snapshot: 0,
            total_appends: 0,
        })
    }

    /// The log's path (for dumps and artifacts).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames appended over the writer's lifetime (the crash family's
    /// append clock).
    pub fn total_appends(&self) -> u64 {
        self.total_appends
    }

    /// Whether enough events accumulated since the last snapshot that
    /// the master should compact.
    pub fn snapshot_due(&self) -> bool {
        self.events_since_snapshot >= self.snapshot_every
    }

    /// Appends one record, stamped with the live epoch; syncs when the
    /// `sync_every` knob says so.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), RuntimeError> {
        let bytes = encode_frame(self.epoch.load(Ordering::SeqCst), record);
        self.file
            .seek(SeekFrom::Start(self.written_len))
            .and_then(|_| self.file.write_all(&bytes))
            .map_err(|e| io_err("append", &self.path, e))?;
        self.written_len += bytes.len() as u64;
        self.total_appends += 1;
        self.appends_since_sync += 1;
        match record {
            WalRecord::Snapshot(_) => self.events_since_snapshot = 0,
            WalRecord::Event { .. } | WalRecord::Locations { .. } => {
                self.events_since_snapshot += 1;
            }
        }
        if self.appends_since_sync >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Makes everything appended so far durable.
    pub fn sync(&mut self) -> Result<(), RuntimeError> {
        self.file
            .flush()
            .map_err(|e| io_err("sync", &self.path, e))?;
        self.synced_len = self.written_len;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Simulates a master crash and recovers: the unsynced suffix is
    /// lost (truncated to the synced length), optional seeded corruption
    /// is applied to the surviving image, the image is scanned, and the
    /// file is truncated to the scan's recovery point so post-recovery
    /// appends continue a consistent log. Returns the replayed state.
    ///
    /// File-level only — callers re-derive scheduler state from the
    /// returned [`RecoveredState`] after this returns.
    pub fn crash_and_recover(
        &mut self,
        corruption: Option<&WalCorruption>,
    ) -> Result<RecoveredState, RuntimeError> {
        // Crash: the page cache (unsynced suffix) is gone.
        self.file
            .set_len(self.synced_len)
            .map_err(|e| io_err("crash-truncate", &self.path, e))?;
        let mut bytes = Vec::new();
        self.file
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.file.read_to_end(&mut bytes))
            .map_err(|e| io_err("read", &self.path, e))?;
        if let Some(c) = corruption {
            inject_corruption(&mut bytes, c);
            // Persist the damaged image so the on-disk artifact matches
            // what recovery actually saw.
            self.file
                .set_len(0)
                .and_then(|_| self.file.seek(SeekFrom::Start(0)).map(|_| ()))
                .and_then(|_| self.file.write_all(&bytes))
                .map_err(|e| io_err("corrupt-write", &self.path, e))?;
        }
        let scanned = scan(&bytes);
        let state = replay(&scanned);
        self.file
            .set_len(scanned.valid_len)
            .map_err(|e| io_err("recover-truncate", &self.path, e))?;
        self.file
            .flush()
            .map_err(|e| io_err("recover-sync", &self.path, e))?;
        self.written_len = scanned.valid_len;
        self.synced_len = scanned.valid_len;
        self.appends_since_sync = 0;
        self.events_since_snapshot = 0;
        Ok(state)
    }

    /// Renders a human-readable dump of the on-disk log (frame kinds,
    /// epochs, event one-liners, scan classification) — the CI artifact
    /// accompanying a recovered run's Chrome trace.
    pub fn dump(&mut self) -> Result<String, RuntimeError> {
        let mut bytes = Vec::new();
        self.file
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.file.read_to_end(&mut bytes))
            .map_err(|e| io_err("read", &self.path, e))?;
        Ok(dump_image(&bytes, &self.path.display().to_string()))
    }
}

/// Renders a WAL image as a human-readable listing.
pub fn dump_image(bytes: &[u8], label: &str) -> String {
    let scanned = scan(bytes);
    let mut out = String::new();
    let _ = writeln!(out, "wal dump: {label} ({} bytes)", bytes.len());
    for (i, frame) in scanned.frames.iter().enumerate() {
        let body = match &frame.record {
            WalRecord::Event { stage, event } => {
                let s = stage.map_or("--".to_string(), |s| format!("s{s}"));
                format!("event    {s}  {event:?}")
            }
            WalRecord::Snapshot(s) => format!(
                "snapshot epoch {} next-attempt {} committed {} attempts {}",
                s.epoch,
                s.next_attempt,
                s.committed.len(),
                s.completed_attempts.len()
            ),
            WalRecord::Locations {
                fop,
                index,
                locations,
            } => format!("locations t{fop}.{index} -> {locations:?}"),
        };
        let _ = writeln!(out, "{i:>5}  epoch {:>3}  {body}", frame.epoch);
    }
    let _ = writeln!(
        out,
        "scan: {} frames replayable, {} truncated, valid {} bytes{}",
        scanned.frames.len(),
        scanned.frames_truncated,
        scanned.valid_len,
        if scanned.snapshot_restored {
            " (interior corruption: snapshot fallback)"
        } else {
            ""
        }
    );
    out
}

/// A collision-free temp path for WAL files in tests and benches.
pub fn temp_wal_path(tag: &str) -> PathBuf {
    static WAL_FILE_ID: AtomicU64 = AtomicU64::new(0);
    let id = WAL_FILE_ID.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("pado-wal-{}-{tag}-{id}.wal", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(attempt: AttemptId) -> WalRecord {
        WalRecord::Event {
            stage: Some(1),
            event: JobEvent::TaskCommitted {
                fop: 2,
                index: 3,
                attempt,
                exec: 4,
                speculative: false,
                bytes_pushed: 17,
                preaggregated: 0,
                cache_hit: true,
            },
        }
    }

    fn snap(epoch: u64) -> WalRecord {
        WalRecord::Snapshot(WalSnapshot {
            epoch,
            next_attempt: 9,
            completed_attempts: vec![1, 2, 3],
            committed: vec![(0, 0, vec![1]), (1, 2, vec![0, 3])],
            first_attempted: vec![vec![true, false], vec![true]],
            parallelism: vec![2, 1],
            placement: vec![Placement::Transient, Placement::Reserved],
            resident: vec![(0, 128), (1, 64)],
        })
    }

    #[test]
    fn frame_round_trips() {
        for record in [
            ev(7),
            snap(3),
            WalRecord::Locations {
                fop: 1,
                index: 2,
                locations: vec![3, 4],
            },
            WalRecord::Event {
                stage: None,
                event: JobEvent::ReconfigAborted {
                    reconfig: 1,
                    reason: "master restarted mid-transaction".into(),
                },
            },
            WalRecord::Event {
                stage: Some(0),
                event: JobEvent::WalRecovered {
                    frames_replayed: 10,
                    frames_truncated: 2,
                    snapshot_restored: true,
                },
            },
        ] {
            let bytes = encode_frame(5, &record);
            let scanned = scan(&bytes);
            assert_eq!(scanned.frames.len(), 1);
            assert_eq!(scanned.frames[0].epoch, 5);
            assert_eq!(scanned.frames[0].record, record);
            assert_eq!(scanned.valid_len, bytes.len() as u64);
            assert_eq!(scanned.frames_truncated, 0);
        }
    }

    #[test]
    fn torn_tail_truncates_to_prefix() {
        let mut bytes = encode_frame(0, &ev(1));
        let first = bytes.len();
        bytes.extend_from_slice(&encode_frame(0, &ev(2))[..7]); // torn append
        let scanned = scan(&bytes);
        assert_eq!(scanned.frames.len(), 1);
        assert_eq!(scanned.valid_len, first as u64);
        assert_eq!(scanned.frames_truncated, 1);
        assert!(!scanned.snapshot_restored);
    }

    #[test]
    fn interior_corruption_falls_back_to_snapshot() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(0, &snap(0)));
        let snap_end = bytes.len();
        bytes.extend_from_slice(&encode_frame(0, &ev(5)));
        let corrupt_at = bytes.len() - 3;
        bytes.extend_from_slice(&encode_frame(0, &ev(6)));
        bytes[corrupt_at] ^= 0xFF; // bit rot inside the middle frame
        let scanned = scan(&bytes);
        assert!(scanned.snapshot_restored);
        assert_eq!(scanned.frames.len(), 1, "only the snapshot survives");
        assert_eq!(scanned.valid_len, snap_end as u64);
        // The corrupt frame + the stranded good frame behind it.
        assert_eq!(scanned.frames_truncated, 2);
    }

    #[test]
    fn replay_folds_snapshot_then_events() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(1, &snap(1)));
        bytes.extend_from_slice(&encode_frame(1, &ev(50)));
        bytes.extend_from_slice(&encode_frame(
            1,
            &WalRecord::Locations {
                fop: 2,
                index: 3,
                locations: vec![4],
            },
        ));
        bytes.extend_from_slice(&encode_frame(
            2,
            &WalRecord::Event {
                stage: None,
                event: JobEvent::ContainerEvicted(1),
            },
        ));
        let state = replay(&scan(&bytes));
        assert_eq!(state.epoch, 2, "frame stamps advance the epoch");
        assert_eq!(state.max_attempt, 50);
        assert!(state.completed_attempts.contains(&50));
        assert!(state.completed_attempts.contains(&1), "from the snapshot");
        assert_eq!(state.committed.get(&(2, 3)), Some(&vec![4]));
        // Exec 1 evicted: (0,0)'s only copy is gone; (1,2) kept its
        // copies on execs 0 and 3.
        assert!(!state.committed.contains_key(&(0, 0)));
        assert_eq!(state.committed.get(&(1, 2)), Some(&vec![0, 3]));
        assert_eq!(state.frames_replayed, 4);
        assert_eq!(state.parallelism, vec![2, 1]);
    }

    #[test]
    fn repartition_replays_self_contained() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(0, &snap(0)));
        bytes.extend_from_slice(&encode_frame(
            1,
            &WalRecord::Event {
                stage: None,
                event: JobEvent::ReconfigCommitted {
                    reconfig: 1,
                    change: ReconfigChange::Repartition {
                        fop: 0,
                        parallelism: 5,
                    },
                    epoch: 1,
                },
            },
        ));
        bytes.extend_from_slice(&encode_frame(
            1,
            &WalRecord::Event {
                stage: None,
                event: JobEvent::ReconfigCommitted {
                    reconfig: 2,
                    change: ReconfigChange::MigrateStage {
                        stage: 0,
                        to: Placement::Reserved,
                    },
                    epoch: 2,
                },
            },
        ));
        let state = replay(&scan(&bytes));
        assert_eq!(state.parallelism, vec![5, 1]);
        assert_eq!(state.first_attempted[0], vec![false; 5]);
        assert_eq!(state.epoch, 2);
        assert_eq!(
            state.reconfig_changes,
            vec![ReconfigChange::MigrateStage {
                stage: 0,
                to: Placement::Reserved
            }],
            "migrations are re-applied by the master, which knows stage_of"
        );
    }

    #[test]
    fn writer_sync_gates_durability() {
        let path = temp_wal_path("sync-gate");
        let epoch = Arc::new(AtomicU64::new(0));
        let mut w = WalWriter::create(&path, epoch, 100, 100).expect("create");
        w.append(&ev(1)).expect("append");
        w.append(&ev(2)).expect("append");
        // Nothing synced: a crash loses both frames.
        let state = w.crash_and_recover(None).expect("recover");
        assert_eq!(state.frames_replayed, 0);
        w.append(&ev(3)).expect("append");
        w.sync().expect("sync");
        w.append(&ev(4)).expect("append");
        let state = w.crash_and_recover(None).expect("recover");
        assert_eq!(state.frames_replayed, 1, "synced frame survives");
        assert!(state.completed_attempts.contains(&3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_snapshot_clock() {
        let path = temp_wal_path("snap-clock");
        let epoch = Arc::new(AtomicU64::new(0));
        let mut w = WalWriter::create(&path, epoch, 1, 2).expect("create");
        assert!(!w.snapshot_due());
        w.append(&ev(1)).expect("append");
        w.append(&ev(2)).expect("append");
        assert!(w.snapshot_due());
        w.append(&snap(0)).expect("append");
        assert!(!w.snapshot_due(), "snapshot resets the clock");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_injection_is_deterministic_and_survivable() {
        let mut bytes = Vec::new();
        for a in 0..20 {
            bytes.extend_from_slice(&encode_frame(0, &ev(a)));
        }
        let c = WalCorruption {
            seed: 42,
            bit_flip_prob: 0.01,
            truncate_prob: 0.5,
        };
        let mut a = bytes.clone();
        let mut b = bytes.clone();
        inject_corruption(&mut a, &c);
        inject_corruption(&mut b, &c);
        assert_eq!(a, b, "same seed, same damage");
        let scanned = scan(&a); // must not panic, whatever happened
        assert!(scanned.valid_len as usize <= a.len());
    }

    #[test]
    fn dump_renders_frames_and_scan_line() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(0, &snap(0)));
        bytes.extend_from_slice(&encode_frame(0, &ev(1)));
        let text = dump_image(&bytes, "test");
        assert!(text.contains("snapshot epoch 0"));
        assert!(text.contains("event"));
        assert!(text.contains("2 frames replayable, 0 truncated"));
    }
}
