//! Pluggable task scheduling policies (§3.2.3).
//!
//! "With a pluggable scheduling policy, the user can schedule each task on
//! a particular executor with an available task slot. By default, the
//! policy schedules tasks in a round-robin manner, while utilizing data
//! locality information as much as possible."
//!
//! A policy picks among candidate executors (alive, right container kind,
//! free slot). The default [`RoundRobinCacheAware`] first looks for an
//! executor caching the task's input; custom policies can implement any
//! other strategy.

use std::fmt;

use crate::compiler::FopId;
use crate::runtime::cache::CacheKey;
use crate::runtime::message::ExecId;

/// What a policy knows about each candidate executor.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Executor id.
    pub exec: ExecId,
    /// Free task slots.
    pub free_slots: usize,
    /// Whether the executor caches the task's preferred input.
    pub has_cached_input: bool,
}

/// The task being placed.
#[derive(Debug, Clone, Copy)]
pub struct TaskToPlace {
    /// Fused operator.
    pub fop: FopId,
    /// Task index.
    pub index: usize,
    /// The cacheable input this task would like to find locally, if any.
    pub cache_pref: Option<CacheKey>,
}

/// A task-to-executor placement policy.
pub trait SchedulingPolicy: Send + Sync {
    /// Picks one of the candidates (all are alive with at least one free
    /// slot). Returning `None` defers the task to a later pass.
    fn pick(&mut self, task: TaskToPlace, candidates: &[Candidate]) -> Option<ExecId>;

    /// Policy name for diagnostics.
    fn name(&self) -> &'static str {
        "custom"
    }
}

impl fmt::Debug for dyn SchedulingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SchedulingPolicy({})", self.name())
    }
}

/// The paper's default policy: prefer an executor with the task's input
/// cached; otherwise round-robin.
///
/// Rotation is keyed on the last-picked [`ExecId`], not a call counter:
/// when the candidate set churns (evictions, blacklisting, replacements
/// with fresh ids), a counter-based cursor skips or repeats executors,
/// starving some of work. Advancing past the last-picked id stays fair
/// under any membership change, because candidates always arrive in
/// ascending id order.
#[derive(Debug, Default)]
pub struct RoundRobinCacheAware {
    last: Option<ExecId>,
}

impl SchedulingPolicy for RoundRobinCacheAware {
    fn pick(&mut self, task: TaskToPlace, candidates: &[Candidate]) -> Option<ExecId> {
        if candidates.is_empty() {
            return None;
        }
        if task.cache_pref.is_some() {
            if let Some(c) = candidates.iter().find(|c| c.has_cached_input) {
                // Locality picks do not move the rotation point.
                return Some(c.exec);
            }
        }
        let pick = match self.last {
            Some(last) => {
                candidates
                    .iter()
                    .find(|c| c.exec > last)
                    .unwrap_or(&candidates[0])
                    .exec
            }
            None => candidates[0].exec,
        };
        self.last = Some(pick);
        Some(pick)
    }

    fn name(&self) -> &'static str {
        "round-robin-cache-aware"
    }
}

/// Packs tasks onto the executor with the most free slots (spreads load
/// by headroom instead of rotation).
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl SchedulingPolicy for LeastLoaded {
    fn pick(&mut self, _task: TaskToPlace, candidates: &[Candidate]) -> Option<ExecId> {
        candidates
            .iter()
            .max_by_key(|c| (c.free_slots, std::cmp::Reverse(c.exec)))
            .map(|c| c.exec)
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(pref: Option<CacheKey>) -> TaskToPlace {
        TaskToPlace {
            fop: 0,
            index: 0,
            cache_pref: pref,
        }
    }

    fn cand(exec: ExecId, free: usize, cached: bool) -> Candidate {
        Candidate {
            exec,
            free_slots: free,
            has_cached_input: cached,
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut p = RoundRobinCacheAware::default();
        let cs = vec![cand(1, 1, false), cand(2, 1, false)];
        assert_eq!(p.pick(task(None), &cs), Some(1));
        assert_eq!(p.pick(task(None), &cs), Some(2));
        assert_eq!(p.pick(task(None), &cs), Some(1));
    }

    #[test]
    fn cache_preference_wins() {
        let mut p = RoundRobinCacheAware::default();
        let cs = vec![cand(1, 1, false), cand(2, 1, true)];
        assert_eq!(p.pick(task(Some(7)), &cs), Some(2));
        // Without a preference the cache flag is ignored.
        assert_eq!(p.pick(task(None), &cs), Some(1));
    }

    #[test]
    fn round_robin_stays_fair_under_churn() {
        // A call-count cursor indexes into whatever slice it is handed, so
        // membership churn makes it skip or repeat executors. Keying on the
        // last-picked id keeps the rotation fair across churn.
        let mut p = RoundRobinCacheAware::default();
        let before = vec![cand(1, 1, false), cand(2, 1, false), cand(3, 1, false)];
        assert_eq!(p.pick(task(None), &before), Some(1));
        assert_eq!(p.pick(task(None), &before), Some(2));
        // Executor 2 dies; a replacement joins with a fresh id.
        let after = vec![cand(1, 1, false), cand(3, 1, false), cand(4, 1, false)];
        // Rotation resumes after the last pick (2): 3, then 4, then wraps.
        assert_eq!(p.pick(task(None), &after), Some(3));
        assert_eq!(p.pick(task(None), &after), Some(4));
        assert_eq!(p.pick(task(None), &after), Some(1));
    }

    #[test]
    fn round_robin_wraps_when_last_pick_was_highest() {
        let mut p = RoundRobinCacheAware::default();
        let cs = vec![cand(5, 1, false), cand(9, 1, false)];
        assert_eq!(p.pick(task(None), &cs), Some(5));
        assert_eq!(p.pick(task(None), &cs), Some(9));
        // Whole set replaced by lower ids: wrap to the first candidate.
        let fresh = vec![cand(2, 1, false), cand(3, 1, false)];
        assert_eq!(p.pick(task(None), &fresh), Some(2));
    }

    #[test]
    fn empty_candidates_defer() {
        let mut p = RoundRobinCacheAware::default();
        assert_eq!(p.pick(task(None), &[]), None);
        let mut l = LeastLoaded;
        assert_eq!(l.pick(task(None), &[]), None);
    }

    #[test]
    fn least_loaded_prefers_headroom() {
        let mut p = LeastLoaded;
        let cs = vec![cand(1, 1, false), cand(2, 3, false), cand(3, 2, false)];
        assert_eq!(p.pick(task(None), &cs), Some(2));
    }

    #[test]
    fn least_loaded_breaks_ties_by_lowest_id() {
        let mut p = LeastLoaded;
        let cs = vec![cand(5, 2, false), cand(3, 2, false)];
        assert_eq!(p.pick(task(None), &cs), Some(3));
    }
}
