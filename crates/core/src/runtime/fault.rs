//! The seed-keyed fault injector: every probabilistic fault decision in
//! the runtime routed through one type.
//!
//! Before this module existed, each fault family rolled its own draw
//! inline: the task chaos plan hashed in `master.rs`, the network policy
//! in `transport.rs`, spill faults in `store.rs`, crash coins in
//! `master.rs`, WAL corruption in `wal.rs`. All of those draws were
//! already *causally* keyed — a decision depends only on the seed plus
//! identifiers of the causal event being decided (task identity + launch
//! ordinal, per-link transmission ordinal, per-store spill ordinal,
//! handled-frame ordinal, envelope sequence number) — never on sim-loop
//! iteration order, wall-clock time, or thread interleaving. That is the
//! property that lets a chaos seed inject the *same* fault schedule on
//! the deterministic [`SimBackend`](crate::runtime::SimBackend) and the
//! true-parallel [`ThreadedBackend`](crate::runtime::ThreadedBackend):
//! the causal identifiers are backend-invariant, so the draws are too.
//!
//! [`FaultInjector`] centralizes those draws behind typed methods, one
//! per decision site. Two hash shapes exist (a chained fold and a single
//! mix) because the refactor is **decision-preserving**: each method
//! reproduces its legacy inline formula bit-for-bit, so every seeded
//! suite written before the refactor replays the identical fault
//! schedule (`crates/core/tests/fault_injector.rs` pins this with
//! formula-equivalence sweeps against verbatim copies of the legacy
//! math).
//!
//! The only deliberately non-causal trigger left in the tree is the
//! crash family's `every_kth_append` clock (WAL append counts include
//! racing executor emissions, so the crash *boundary* floats across
//! backends — documented as intentional in DESIGN.md §14); its coin,
//! like everything else, draws through this module.

/// splitmix64 finalizer: one independent uniform draw per input. The
/// primary hashing primitive — task chaos, wire faults, spill faults,
/// crash coins, retransmit jitter, and transport seed derivation all
/// draw through it.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// MurmurHash3 fmix64: the WAL-corruption family's historical finalizer.
/// Kept distinct from [`mix64`] because the refactor is
/// decision-preserving — changing the corruption draws would reshuffle
/// every fixed-seed crash-recovery suite.
fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Domain salts: two decision sites sharing causal identifiers must
/// still draw independently.
const SALT_WIRE_TO_EXECUTOR: u64 = 0x7C15;
const SALT_WIRE_TO_MASTER: u64 = 0x1CE4;
const SALT_SPILL_WRITE: u64 = 0x57;
const SALT_SPILL_READ: u64 = 0x52;
const SALT_WAL_TRUNCATE: u64 = 0x7472_756e;
const SALT_WAL_CUT: u64 = 0x6375_7421;
const SALT_WAL_FLIP: u64 = 0xb17f;

/// Which side of the control wire a transmission decision is for.
///
/// Mirrors [`Direction`](crate::runtime::Direction) without depending on
/// the transport module (transport depends on this module, not the
/// reverse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireSide {
    /// Master → executor deliveries.
    ToExecutor,
    /// Executor → master deliveries.
    ToMaster,
}

/// One resolved fault draw: a hash keyed by `(seed, domain, causal
/// ids)`. Consumers read it as a uniform `[0, 1)` threshold coordinate
/// ([`unit`](FaultDraw::unit)) and/or as deterministic magnitudes
/// ([`index`](FaultDraw::index) / [`span`](FaultDraw::span) /
/// [`coin`](FaultDraw::coin)) — the magnitude taps re-mix so they stay
/// independent of the threshold bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDraw {
    hash: u64,
}

impl FaultDraw {
    /// The uniform `[0, 1)` coordinate compared against fault
    /// probabilities (53 mantissa bits of the hash).
    pub fn unit(self) -> f64 {
        (self.hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A deterministic pick in `[0, modulus)` straight from the hash
    /// (correlated with [`unit`](Self::unit) — use for magnitudes whose
    /// draw already passed its threshold test, e.g. retransmit jitter).
    pub fn index(self, modulus: u64) -> u64 {
        self.hash % modulus.max(1)
    }

    /// A deterministic pick in `[0, modulus)` from a re-mixed hash —
    /// independent of the threshold bits (delay magnitudes).
    pub fn span(self, modulus: u64) -> u64 {
        mix64(self.hash) % modulus.max(1)
    }

    /// A salted fair coin independent of the threshold bits (e.g. the
    /// pre-compute vs post-compute stall placement choice).
    pub fn coin(self, salt: u64) -> bool {
        mix64(self.hash ^ salt) & 1 == 0
    }

    /// The raw hash (seed derivation and tests).
    pub fn hash(self) -> u64 {
        self.hash
    }
}

/// A seeded source of causally-keyed fault decisions. Copy-cheap: every
/// decision site constructs one from its plan's seed at the point of
/// use; there is no hidden state, so decision N does not depend on
/// decisions 1..N-1 having been made (or on which backend interleaving
/// asked for them first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    /// An injector drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed }
    }

    /// The seed the decisions key off.
    pub fn seed(self) -> u64 {
        self.seed
    }

    /// Chained fold over causal identifiers: `h = seed ^ salt`, then
    /// `h = mix64(h ^ id)` per id. The legacy shape of the task-chaos
    /// and wire draws.
    fn chain(self, salt: u64, ids: &[u64]) -> FaultDraw {
        let mut h = self.seed ^ salt;
        for &v in ids {
            h = mix64(h ^ v);
        }
        FaultDraw { hash: h }
    }

    /// Single-mix draw: `mix64(seed ^ key)`. The legacy shape of the
    /// spill, crash, jitter, and WAL-corruption draws.
    fn once(self, key: u64) -> FaultDraw {
        FaultDraw {
            hash: mix64(self.seed ^ key),
        }
    }

    /// The chaos draw for the `ordinal`-th launch of task
    /// `(fop, index)` — error/panic/OOM/delay thresholds and the delay
    /// magnitude all read this one draw.
    pub fn task_launch(self, fop: u64, index: u64, ordinal: u64) -> FaultDraw {
        self.chain(0, &[fop, index, ordinal])
    }

    /// The network-fault draw for the `ordinal`-th transmission on the
    /// link to/from `exec`. Retransmissions of one message are distinct
    /// transmissions with fresh ordinals, so a retried message always
    /// gets through eventually.
    pub fn wire(self, side: WireSide, exec: u64, ordinal: u64) -> FaultDraw {
        let salt = match side {
            WireSide::ToExecutor => SALT_WIRE_TO_EXECUTOR,
            WireSide::ToMaster => SALT_WIRE_TO_MASTER,
        };
        self.chain(salt, &[exec, ordinal])
    }

    /// The disk-fault draw for executor `exec`'s `ordinal`-th spill
    /// write.
    pub fn spill_write(self, exec: u64, ordinal: u64) -> FaultDraw {
        self.once(mix64(exec ^ SALT_SPILL_WRITE) ^ ordinal)
    }

    /// The disk-fault draw for executor `exec`'s `ordinal`-th spill
    /// read.
    pub fn spill_read(self, exec: u64, ordinal: u64) -> FaultDraw {
        self.once(mix64(exec ^ SALT_SPILL_READ) ^ ordinal)
    }

    /// The crash family's coin at the `handled_frames`-th handler
    /// boundary.
    pub fn crash_boundary(self, handled_frames: u64) -> FaultDraw {
        self.once(mix64(handled_frames))
    }

    /// Retransmission jitter for envelope `seq` on its
    /// `transmissions`-th transmission (keyed by the causal envelope
    /// sequence number, not by any link-global counter).
    pub fn retransmit_jitter(self, seq: u64, transmissions: u64) -> FaultDraw {
        self.once(mix64(seq) ^ transmissions)
    }

    /// The WAL corruption family's truncation coin.
    pub fn wal_truncate(self) -> FaultDraw {
        FaultDraw {
            hash: fmix64(self.seed ^ SALT_WAL_TRUNCATE),
        }
    }

    /// The WAL corruption family's truncation offset draw.
    pub fn wal_truncate_offset(self) -> FaultDraw {
        FaultDraw {
            hash: fmix64(self.seed ^ SALT_WAL_CUT),
        }
    }

    /// The WAL corruption family's per-byte bit-flip draw (keyed by the
    /// byte offset in the image — a file position, not an iteration
    /// counter). [`FaultDraw::index`]`(8)` picks the bit to flip.
    pub fn wal_bit_flip(self, offset: u64) -> FaultDraw {
        FaultDraw {
            hash: fmix64(self.seed ^ SALT_WAL_FLIP ^ (offset << 16)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions_of_seed_and_causal_ids() {
        let a = FaultInjector::new(42);
        let b = FaultInjector::new(42);
        // Two independently-constructed injectors (as the two backends
        // construct them) agree on every decision, regardless of the
        // order decisions are asked for.
        let forward: Vec<u64> = (0..64)
            .map(|i| a.task_launch(i % 5, i % 7, i).hash())
            .collect();
        let backward: Vec<u64> = (0..64)
            .rev()
            .map(|i| b.task_launch(i % 5, i % 7, i).hash())
            .collect();
        let backward: Vec<u64> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
    }

    #[test]
    fn domains_draw_independently() {
        let inj = FaultInjector::new(7);
        // Same causal ids, different domains: decisions must differ
        // (identical hashes would correlate fault families).
        let hashes = [
            inj.wire(WireSide::ToExecutor, 3, 9).hash(),
            inj.wire(WireSide::ToMaster, 3, 9).hash(),
            inj.spill_write(3, 9).hash(),
            inj.spill_read(3, 9).hash(),
        ];
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "domains {i} and {j} collide");
            }
        }
    }

    #[test]
    fn unit_is_a_probability() {
        let inj = FaultInjector::new(0xDEAD_BEEF);
        for i in 0..1000 {
            let u = inj.task_launch(0, 0, i).unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn span_and_index_respect_the_modulus() {
        let inj = FaultInjector::new(11);
        for i in 0..100 {
            let d = inj.wire(WireSide::ToMaster, 1, i);
            assert!(d.index(10) < 10);
            assert!(d.span(3) < 3);
            // Degenerate modulus never panics.
            assert_eq!(d.index(0), 0);
            assert_eq!(d.span(0), 0);
        }
    }
}
