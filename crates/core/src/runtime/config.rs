//! Runtime configuration.

/// Tunables of the in-process Pado runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Task slots (worker threads) per executor (§3.2.3).
    pub slots_per_executor: usize,
    /// Capacity of each executor's task-input cache in bytes (§3.2.7).
    /// The cache lives *inside* the executor store budget, so this must
    /// not exceed `executor_memory_bytes`.
    pub cache_capacity_bytes: usize,
    /// Byte budget of each executor's block store — preserved outputs,
    /// pushed partitions, and the input cache combined. `usize::MAX`
    /// (the default) disables accounting; anything smaller makes the
    /// store spill unpinned blocks to disk under pressure, defers
    /// pushes without headroom, and refuses launches whose inputs
    /// cannot be pinned.
    pub executor_memory_bytes: usize,
    /// Whether transient tasks pre-aggregate their combine-bound outputs
    /// before pushing (task output partial aggregation, §3.2.7).
    pub partial_aggregation: bool,
    /// Milliseconds the master waits for any event before declaring the
    /// job wedged (defensive; never reached in healthy runs).
    pub event_timeout_ms: u64,
    /// Take a progress-metadata snapshot every this many task completions
    /// (master fault tolerance, §3.2.6).
    pub snapshot_every: usize,
    /// Retry budget per task: total attempts (first launch included) a
    /// task may consume through user-code failures before the job fails
    /// terminally with [`crate::RuntimeError::TaskFailed`]. Eviction- and
    /// reserved-failure-driven relaunches do not count against it.
    pub max_task_attempts: usize,
    /// User-code failures on one executor before the master blacklists it
    /// (stops scheduling onto it) and spawns a replacement container.
    pub executor_fault_threshold: usize,
    /// Whether the master launches speculative duplicates of straggling
    /// task attempts (first-commit-wins).
    pub speculation: bool,
    /// An attempt is a straggler when its elapsed time exceeds this
    /// multiple of the fop's median attempt duration.
    pub speculation_multiplier: f64,
    /// Attempts are never speculated before running at least this long,
    /// whatever the median says (guards against duplicating sub-millisecond
    /// tasks whose median rounds to zero).
    pub speculation_floor_ms: u64,
    /// Completed attempt durations required per fop before its median is
    /// trusted for speculation.
    pub speculation_min_samples: usize,
    /// Master scheduling-loop tick in milliseconds: the granularity at
    /// which straggler checks and the wedge timeout are evaluated.
    pub tick_ms: u64,
    /// Milliseconds between executor heartbeats.
    pub heartbeat_interval_ms: u64,
    /// Heartbeat silence after which the master declares an executor dead
    /// and relaunches its uncommitted tasks (its committed blocks stay
    /// served). Must leave room for several retransmission rounds, so a
    /// lossy-but-connected executor is never mistaken for a dead one.
    pub dead_executor_timeout_ms: u64,
    /// Initial retransmission backoff for an unacknowledged control
    /// message, in milliseconds; doubles per retry.
    pub retransmit_base_ms: u64,
    /// Ceiling of the exponential retransmission backoff, in milliseconds.
    pub retransmit_max_ms: u64,
    /// Maximum unacknowledged control messages in flight per link
    /// direction; further sends queue in order behind the window.
    pub transport_inflight_cap: usize,
    /// Receiver-side dedup window: out-of-order sequence numbers tracked
    /// per link direction. Must be at least the in-flight cap, or fresh
    /// messages could evict dedup state for live ones.
    pub transport_dedup_window: usize,
    /// Milliseconds a reconfiguration transaction may spend in its
    /// prepare phase (quiescing in-flight attempts) before it aborts and
    /// rolls back to the old placement.
    pub reconfig_prepare_timeout_ms: u64,
    /// Eviction-storm policy hook: after this many transient evictions
    /// the master requests a reconfiguration migrating the lowest
    /// still-incomplete transient stage to the reserved pool. `0` (the
    /// default) disables the hook.
    pub reconfig_storm_threshold: usize,
    /// Path of the master's durable write-ahead log. `None` (the
    /// default) disables the WAL: master restarts fall back to the
    /// in-memory progress snapshot and crash-injection chaos is
    /// rejected at validation.
    pub wal_path: Option<String>,
    /// Sync (make durable) the WAL after this many appends. `1` syncs
    /// every frame — the strongest guarantee and the default; larger
    /// values batch, accepting that a crash loses the unsynced suffix.
    pub wal_sync_every: usize,
    /// Append a compacting state snapshot after this many event frames,
    /// bounding the suffix recovery must replay and providing the
    /// fallback target for interior corruption.
    pub wal_snapshot_every: usize,
    /// Worker threads in the threaded backend's shared pool (ignored by
    /// the sim backend, which gives each executor dedicated slot
    /// threads).
    pub threaded_workers: usize,
    /// Capacity of the threaded backend's bounded pool job queue. The
    /// master submits eager routing work with a non-blocking try-send
    /// against this bound; executor task bodies queue behind it.
    pub threaded_channel_capacity: usize,
    /// Wall-clock milliseconds the threaded backend waits for the master
    /// thread before aborting the job (the backstop against a deadlock
    /// in the parallel plumbing). Must exceed `event_timeout_ms` so the
    /// master's own wedge detector always fires first on a merely-idle
    /// job.
    pub threaded_wallclock_timeout_ms: u64,
    /// Whether the threaded backend runs a hang watchdog: a supervisor
    /// thread sampling progress (journal length, pool in-flight count,
    /// outstanding attempts) that cancels a stalled run and surfaces
    /// `RuntimeError::Stalled` with a diagnostics snapshot. Only
    /// meaningful on the threaded backend; rejected on the sim backend
    /// (whose loop is the progress detector already).
    pub stall_watchdog: bool,
    /// Milliseconds between watchdog progress samples. Must stay below
    /// `threaded_wallclock_timeout_ms`, or the wall-clock abort always
    /// fires first and the watchdog's diagnostics never materialize.
    pub stall_sample_interval_ms: u64,
    /// Consecutive no-progress samples (with work outstanding) before
    /// the watchdog declares the run stalled.
    pub stall_samples: u64,
    /// Milliseconds a cancelled run gets to unwind cooperatively —
    /// master loop observing the token, executor control threads
    /// exiting, pool quiescing — before its threads are detached as a
    /// last resort. Also bounds how long the pool's `Drop` joins wedged
    /// workers.
    pub cancel_grace_ms: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            slots_per_executor: 4,
            cache_capacity_bytes: 64 << 20,
            executor_memory_bytes: usize::MAX,
            partial_aggregation: true,
            event_timeout_ms: 30_000,
            snapshot_every: 16,
            max_task_attempts: 4,
            executor_fault_threshold: 3,
            speculation: true,
            speculation_multiplier: 3.0,
            speculation_floor_ms: 200,
            speculation_min_samples: 3,
            tick_ms: 25,
            heartbeat_interval_ms: 50,
            dead_executor_timeout_ms: 1_500,
            retransmit_base_ms: 80,
            retransmit_max_ms: 640,
            transport_inflight_cap: 64,
            transport_dedup_window: 1_024,
            reconfig_prepare_timeout_ms: 1_000,
            reconfig_storm_threshold: 0,
            wal_path: None,
            wal_sync_every: 1,
            wal_snapshot_every: 64,
            threaded_workers: 4,
            threaded_channel_capacity: 256,
            threaded_wallclock_timeout_ms: 60_000,
            stall_watchdog: false,
            stall_sample_interval_ms: 500,
            stall_samples: 6,
            cancel_grace_ms: 2_000,
        }
    }
}

impl RuntimeConfig {
    /// Rejects configurations whose interactions are nonsensical — e.g. a
    /// retransmission backoff that outlives the dead-executor timeout
    /// would declare every executor dead before a single lost message
    /// could be retried. Called by the cluster harness before a job runs.
    pub fn validate(&self) -> Result<(), String> {
        if self.tick_ms == 0 {
            return Err("tick_ms must be at least 1".into());
        }
        if self.tick_ms >= self.event_timeout_ms {
            return Err(format!(
                "tick_ms ({}) must be below event_timeout_ms ({}) or the wedge \
                 timeout never fires",
                self.tick_ms, self.event_timeout_ms
            ));
        }
        if self.transport_dedup_window == 0 {
            return Err("transport_dedup_window must be at least 1".into());
        }
        if self.transport_inflight_cap == 0 {
            return Err("transport_inflight_cap must be at least 1".into());
        }
        if self.transport_inflight_cap > self.transport_dedup_window {
            return Err(format!(
                "transport_inflight_cap ({}) must not exceed transport_dedup_window \
                 ({}): more in-flight messages than dedup slots lets fresh sends \
                 evict dedup state for live ones",
                self.transport_inflight_cap, self.transport_dedup_window
            ));
        }
        if self.retransmit_base_ms == 0 {
            return Err("retransmit_base_ms must be at least 1".into());
        }
        if self.retransmit_base_ms > self.retransmit_max_ms {
            return Err(format!(
                "retransmit_base_ms ({}) must not exceed retransmit_max_ms ({})",
                self.retransmit_base_ms, self.retransmit_max_ms
            ));
        }
        if self.retransmit_base_ms >= self.dead_executor_timeout_ms {
            return Err(format!(
                "retransmit_base_ms ({}) must be below dead_executor_timeout_ms \
                 ({}): a lost message must get at least one retry before its \
                 executor can be declared dead",
                self.retransmit_base_ms, self.dead_executor_timeout_ms
            ));
        }
        if self.executor_memory_bytes == 0 {
            return Err(
                "executor_memory_bytes must be at least 1 (use usize::MAX for \
                        unlimited)"
                    .into(),
            );
        }
        if self.cache_capacity_bytes > self.executor_memory_bytes {
            return Err(format!(
                "cache_capacity_bytes ({}) must not exceed executor_memory_bytes \
                 ({}): the input cache lives inside the executor store budget",
                self.cache_capacity_bytes, self.executor_memory_bytes
            ));
        }
        if self.heartbeat_interval_ms == 0 {
            return Err("heartbeat_interval_ms must be at least 1".into());
        }
        if self.heartbeat_interval_ms >= self.dead_executor_timeout_ms {
            return Err(format!(
                "heartbeat_interval_ms ({}) must be below dead_executor_timeout_ms \
                 ({}) or every executor is declared dead before its first beat",
                self.heartbeat_interval_ms, self.dead_executor_timeout_ms
            ));
        }
        if self.reconfig_prepare_timeout_ms == 0 {
            return Err(
                "reconfig_prepare_timeout_ms must be at least 1: a zero prepare \
                 window aborts every reconfiguration before it can quiesce a \
                 single in-flight attempt"
                    .into(),
            );
        }
        if self.reconfig_prepare_timeout_ms >= self.event_timeout_ms {
            return Err(format!(
                "reconfig_prepare_timeout_ms ({}) must be below event_timeout_ms \
                 ({}): a prepare phase pauses scheduling, so it must resolve \
                 before the wedge detector can mistake it for a stuck job",
                self.reconfig_prepare_timeout_ms, self.event_timeout_ms
            ));
        }
        if self.wal_sync_every == 0 {
            return Err(
                "wal_sync_every must be at least 1: a zero sync interval would \
                 never make any appended frame durable"
                    .into(),
            );
        }
        if self.wal_path.is_some() {
            if self.wal_snapshot_every == 0 {
                return Err(
                    "wal_snapshot_every must be at least 1 when a WAL path is set: \
                     a zero snapshot interval demands a compaction after every \
                     event, which degenerates the log into snapshot spam with no \
                     replayable suffix"
                        .into(),
                );
            }
            if self.wal_sync_every > self.wal_snapshot_every {
                return Err(format!(
                    "wal_sync_every ({}) must not exceed wal_snapshot_every ({}): \
                     batching syncs past a snapshot boundary could make a \
                     compacting snapshot durable before the events it compacts, \
                     leaving the recovery scan a hole the simulated backend \
                     cannot order around",
                    self.wal_sync_every, self.wal_snapshot_every
                ));
            }
            if let Some(p) = &self.wal_path {
                if p.is_empty() {
                    return Err("wal_path must not be an empty string".into());
                }
            }
        }
        if self.threaded_workers == 0 {
            return Err("threaded_workers must be at least 1".into());
        }
        if self.threaded_channel_capacity == 0 {
            return Err("threaded_channel_capacity must be at least 1".into());
        }
        if self.threaded_wallclock_timeout_ms <= self.event_timeout_ms {
            return Err(format!(
                "threaded_wallclock_timeout_ms ({}) must exceed event_timeout_ms \
                 ({}): the wall-clock abort is a deadlock backstop and must never \
                 fire before the master's own wedge detector can report a stuck \
                 job with its diagnostics",
                self.threaded_wallclock_timeout_ms, self.event_timeout_ms
            ));
        }
        if self.cancel_grace_ms == 0 {
            return Err(
                "cancel_grace_ms must be at least 1: a zero grace period detaches \
                 every cancelled run's threads immediately instead of letting \
                 them unwind cooperatively"
                    .into(),
            );
        }
        if self.stall_watchdog {
            if self.stall_sample_interval_ms == 0 {
                return Err("stall_sample_interval_ms must be at least 1 when the \
                            stall watchdog is enabled"
                    .into());
            }
            if self.stall_samples == 0 {
                return Err("stall_samples must be at least 1 when the stall \
                            watchdog is enabled"
                    .into());
            }
            if self.stall_sample_interval_ms >= self.threaded_wallclock_timeout_ms {
                return Err(format!(
                    "stall_sample_interval_ms ({}) must be below \
                     threaded_wallclock_timeout_ms ({}): a watchdog that cannot \
                     complete one sample before the wall-clock abort fires can \
                     never produce its diagnostics",
                    self.stall_sample_interval_ms, self.threaded_wallclock_timeout_ms
                ));
            }
        }
        Ok(())
    }

    /// Validates settings whose sanity depends on the execution backend,
    /// on top of [`RuntimeConfig::validate`]. Called by the cluster
    /// harness once the backend is chosen.
    pub fn validate_for_backend(
        &self,
        backend: crate::runtime::backend::BackendKind,
    ) -> Result<(), String> {
        self.validate()?;
        if self.stall_watchdog && backend == crate::runtime::backend::BackendKind::Sim {
            return Err(
                "stall_watchdog requires the threaded backend: the sim backend \
                 runs the master inline on the caller's thread, where the \
                 master's own wedge detector is the progress watchdog"
                    .into(),
            );
        }
        Ok(())
    }

    /// Validates settings whose sanity depends on the cluster shape, on
    /// top of [`RuntimeConfig::validate`]. Called by the cluster harness
    /// with the total executor count.
    pub fn validate_with_cluster(&self, n_executors: usize) -> Result<(), String> {
        self.validate()?;
        if self.reconfig_storm_threshold > 0 && n_executors < 2 {
            return Err(format!(
                "reconfig_storm_threshold ({}) is set but the cluster has only \
                 {} executor(s): migrating a stage off the transient pool needs \
                 somewhere else to put it",
                self.reconfig_storm_threshold, n_executors
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = RuntimeConfig::default();
        assert!(c.slots_per_executor >= 1);
        assert!(c.cache_capacity_bytes > 0);
        assert!(c.partial_aggregation);
        assert!(c.max_task_attempts >= 1);
        assert!(c.executor_fault_threshold >= 1);
        assert!(c.speculation_multiplier > 1.0);
        assert!(c.tick_ms >= 1);
        // Ticks must subdivide the wedge timeout, or it never fires.
        assert!(c.tick_ms < c.event_timeout_ms);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_tick() {
        let c = RuntimeConfig {
            tick_ms: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("tick_ms"));
    }

    #[test]
    fn validate_rejects_tick_at_or_above_event_timeout() {
        let c = RuntimeConfig {
            tick_ms: 500,
            event_timeout_ms: 500,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("event_timeout_ms"));
    }

    #[test]
    fn validate_rejects_zero_dedup_window() {
        let c = RuntimeConfig {
            transport_dedup_window: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("transport_dedup_window"));
    }

    #[test]
    fn validate_rejects_inflight_cap_beyond_dedup_window() {
        let c = RuntimeConfig {
            transport_inflight_cap: 128,
            transport_dedup_window: 64,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("transport_inflight_cap"));
    }

    #[test]
    fn validate_rejects_backoff_at_or_above_dead_timeout() {
        let c = RuntimeConfig {
            retransmit_base_ms: 2_000,
            retransmit_max_ms: 4_000,
            dead_executor_timeout_ms: 1_500,
            ..RuntimeConfig::default()
        };
        assert!(c
            .validate()
            .unwrap_err()
            .contains("dead_executor_timeout_ms"));
    }

    #[test]
    fn validate_rejects_inverted_backoff_bounds() {
        let c = RuntimeConfig {
            retransmit_base_ms: 100,
            retransmit_max_ms: 50,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("retransmit_max_ms"));
    }

    #[test]
    fn validate_rejects_cache_beyond_executor_budget() {
        let c = RuntimeConfig {
            cache_capacity_bytes: 2 << 20,
            executor_memory_bytes: 1 << 20,
            ..RuntimeConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("cache_capacity_bytes"));
        assert!(err.contains("executor_memory_bytes"));
    }

    #[test]
    fn validate_rejects_zero_executor_budget() {
        let c = RuntimeConfig {
            executor_memory_bytes: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("executor_memory_bytes"));
    }

    #[test]
    fn validate_rejects_zero_reconfig_prepare_timeout() {
        let c = RuntimeConfig {
            reconfig_prepare_timeout_ms: 0,
            ..RuntimeConfig::default()
        };
        assert!(c
            .validate()
            .unwrap_err()
            .contains("reconfig_prepare_timeout_ms"));
    }

    #[test]
    fn validate_rejects_prepare_timeout_at_or_above_event_timeout() {
        let c = RuntimeConfig {
            reconfig_prepare_timeout_ms: 30_000,
            event_timeout_ms: 30_000,
            ..RuntimeConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("reconfig_prepare_timeout_ms"));
        assert!(err.contains("event_timeout_ms"));
    }

    #[test]
    fn validate_rejects_storm_threshold_on_single_executor_cluster() {
        let c = RuntimeConfig {
            reconfig_storm_threshold: 2,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().is_ok(), "shape-independent checks still pass");
        let err = c.validate_with_cluster(1).unwrap_err();
        assert!(err.contains("reconfig_storm_threshold"));
        assert!(c.validate_with_cluster(2).is_ok());
    }

    #[test]
    fn validate_rejects_zero_wal_sync_interval() {
        let c = RuntimeConfig {
            wal_sync_every: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("wal_sync_every"));
    }

    #[test]
    fn validate_rejects_zero_wal_snapshot_interval() {
        let c = RuntimeConfig {
            wal_path: Some("/tmp/pado-test.wal".into()),
            wal_snapshot_every: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("wal_snapshot_every"));
        // Without a WAL path the snapshot interval is inert and ignored.
        let c = RuntimeConfig {
            wal_snapshot_every: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_sync_interval_beyond_snapshot_interval() {
        let c = RuntimeConfig {
            wal_path: Some("/tmp/pado-test.wal".into()),
            wal_sync_every: 128,
            wal_snapshot_every: 64,
            ..RuntimeConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("wal_sync_every"));
        assert!(err.contains("wal_snapshot_every"));
    }

    #[test]
    fn validate_rejects_empty_wal_path() {
        let c = RuntimeConfig {
            wal_path: Some(String::new()),
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("wal_path"));
    }

    #[test]
    fn validate_rejects_zero_threaded_workers() {
        let c = RuntimeConfig {
            threaded_workers: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("threaded_workers"));
    }

    #[test]
    fn validate_rejects_zero_threaded_channel_capacity() {
        let c = RuntimeConfig {
            threaded_channel_capacity: 0,
            ..RuntimeConfig::default()
        };
        assert!(c
            .validate()
            .unwrap_err()
            .contains("threaded_channel_capacity"));
    }

    #[test]
    fn validate_rejects_wallclock_timeout_at_or_below_event_timeout() {
        let c = RuntimeConfig {
            threaded_wallclock_timeout_ms: 30_000,
            event_timeout_ms: 30_000,
            ..RuntimeConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("threaded_wallclock_timeout_ms"));
        assert!(err.contains("event_timeout_ms"));
    }

    #[test]
    fn validate_rejects_zero_cancel_grace() {
        let c = RuntimeConfig {
            cancel_grace_ms: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("cancel_grace_ms"));
    }

    #[test]
    fn validate_rejects_zero_watchdog_knobs_only_when_armed() {
        // Disarmed: zero watchdog knobs are inert and ignored.
        let c = RuntimeConfig {
            stall_sample_interval_ms: 0,
            stall_samples: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().is_ok());
        let c = RuntimeConfig {
            stall_watchdog: true,
            stall_sample_interval_ms: 0,
            ..RuntimeConfig::default()
        };
        assert!(c
            .validate()
            .unwrap_err()
            .contains("stall_sample_interval_ms"));
        let c = RuntimeConfig {
            stall_watchdog: true,
            stall_samples: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("stall_samples"));
    }

    #[test]
    fn validate_rejects_sample_interval_at_or_above_wallclock_timeout() {
        let c = RuntimeConfig {
            stall_watchdog: true,
            stall_sample_interval_ms: 60_000,
            threaded_wallclock_timeout_ms: 60_000,
            ..RuntimeConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("stall_sample_interval_ms"));
        assert!(err.contains("threaded_wallclock_timeout_ms"));
    }

    #[test]
    fn validate_rejects_watchdog_on_the_sim_backend() {
        use crate::runtime::backend::BackendKind;
        let c = RuntimeConfig {
            stall_watchdog: true,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().is_ok(), "backend-independent checks pass");
        let err = c.validate_for_backend(BackendKind::Sim).unwrap_err();
        assert!(err.contains("stall_watchdog"));
        assert!(c.validate_for_backend(BackendKind::Threaded).is_ok());
    }

    #[test]
    fn validate_rejects_heartbeat_at_or_above_dead_timeout() {
        let c = RuntimeConfig {
            heartbeat_interval_ms: 1_500,
            dead_executor_timeout_ms: 1_500,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("heartbeat_interval_ms"));
    }
}
