//! Runtime configuration.

/// Tunables of the in-process Pado runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Task slots (worker threads) per executor (§3.2.3).
    pub slots_per_executor: usize,
    /// Capacity of each executor's task-input cache in bytes (§3.2.7).
    pub cache_capacity_bytes: usize,
    /// Whether transient tasks pre-aggregate their combine-bound outputs
    /// before pushing (task output partial aggregation, §3.2.7).
    pub partial_aggregation: bool,
    /// Milliseconds the master waits for any event before declaring the
    /// job wedged (defensive; never reached in healthy runs).
    pub event_timeout_ms: u64,
    /// Take a progress-metadata snapshot every this many task completions
    /// (master fault tolerance, §3.2.6).
    pub snapshot_every: usize,
    /// Retry budget per task: total attempts (first launch included) a
    /// task may consume through user-code failures before the job fails
    /// terminally with [`crate::RuntimeError::TaskFailed`]. Eviction- and
    /// reserved-failure-driven relaunches do not count against it.
    pub max_task_attempts: usize,
    /// User-code failures on one executor before the master blacklists it
    /// (stops scheduling onto it) and spawns a replacement container.
    pub executor_fault_threshold: usize,
    /// Whether the master launches speculative duplicates of straggling
    /// task attempts (first-commit-wins).
    pub speculation: bool,
    /// An attempt is a straggler when its elapsed time exceeds this
    /// multiple of the fop's median attempt duration.
    pub speculation_multiplier: f64,
    /// Attempts are never speculated before running at least this long,
    /// whatever the median says (guards against duplicating sub-millisecond
    /// tasks whose median rounds to zero).
    pub speculation_floor_ms: u64,
    /// Completed attempt durations required per fop before its median is
    /// trusted for speculation.
    pub speculation_min_samples: usize,
    /// Master scheduling-loop tick in milliseconds: the granularity at
    /// which straggler checks and the wedge timeout are evaluated.
    pub tick_ms: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            slots_per_executor: 4,
            cache_capacity_bytes: 64 << 20,
            partial_aggregation: true,
            event_timeout_ms: 30_000,
            snapshot_every: 16,
            max_task_attempts: 4,
            executor_fault_threshold: 3,
            speculation: true,
            speculation_multiplier: 3.0,
            speculation_floor_ms: 200,
            speculation_min_samples: 3,
            tick_ms: 25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = RuntimeConfig::default();
        assert!(c.slots_per_executor >= 1);
        assert!(c.cache_capacity_bytes > 0);
        assert!(c.partial_aggregation);
        assert!(c.max_task_attempts >= 1);
        assert!(c.executor_fault_threshold >= 1);
        assert!(c.speculation_multiplier > 1.0);
        assert!(c.tick_ms >= 1);
        // Ticks must subdivide the wedge timeout, or it never fires.
        assert!(c.tick_ms < c.event_timeout_ms);
    }
}
