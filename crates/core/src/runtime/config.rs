//! Runtime configuration.

/// Tunables of the in-process Pado runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Task slots (worker threads) per executor (§3.2.3).
    pub slots_per_executor: usize,
    /// Capacity of each executor's task-input cache in bytes (§3.2.7).
    pub cache_capacity_bytes: usize,
    /// Whether transient tasks pre-aggregate their combine-bound outputs
    /// before pushing (task output partial aggregation, §3.2.7).
    pub partial_aggregation: bool,
    /// Milliseconds the master waits for any event before declaring the
    /// job wedged (defensive; never reached in healthy runs).
    pub event_timeout_ms: u64,
    /// Take a progress-metadata snapshot every this many task completions
    /// (master fault tolerance, §3.2.6).
    pub snapshot_every: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            slots_per_executor: 4,
            cache_capacity_bytes: 64 << 20,
            partial_aggregation: true,
            event_timeout_ms: 30_000,
            snapshot_every: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = RuntimeConfig::default();
        assert!(c.slots_per_executor >= 1);
        assert!(c.cache_capacity_bytes > 0);
        assert!(c.partial_aggregation);
    }
}
