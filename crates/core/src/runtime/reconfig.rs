//! Epoch-fenced live reconfiguration: transactional placement changes.
//!
//! Pado's physical plan is frozen at compile time, but the transient pool
//! it runs on is not: containers appear and vanish minute by minute. This
//! module defines the vocabulary for changing a *running* job's placement
//! as a two-phase transaction driven by the master:
//!
//! 1. **prepare** — the master stops launching new attempts and waits
//!    until every in-flight attempt reaches a terminal state (quiesce).
//!    If an eviction, OOM, master restart, or the prepare timeout lands
//!    first, the transaction **aborts**: nothing was applied, the old
//!    placement is still runnable, and the job continues unchanged.
//! 2. **commit** — the change is applied (placement overlay, partition
//!    rebuild, or executor drain with block migration), the global
//!    *reconfiguration epoch* advances by one, and the new epoch is
//!    broadcast. Every transport envelope carries the epoch its payload
//!    was first sent under; the master rejects (but still acknowledges)
//!    payload frames stamped with an older epoch, so no pre-commit
//!    message can commit a task into the post-commit world.
//!
//! The journal records the transaction (`ReconfigRequested` /
//! `ReconfigPrepared` / `ReconfigCommitted` / `ReconfigAborted` plus
//! `EpochAdvanced`), and invariant law 9 replays it: epochs advance by
//! exactly one, no task commits under a stale epoch, and every prepared
//! transaction resolves.

use std::fmt;

use crate::compiler::{FopId, Placement};

/// One placement change a reconfiguration transaction applies at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigChange {
    /// Move every fused operator of `stage` to the `to` pool. Affects
    /// future launches and commits; already-resident outputs stay where
    /// they are (the master's location table keeps serving them).
    MigrateStage {
        /// The stage whose operators move.
        stage: usize,
        /// The destination pool.
        to: Placement,
    },
    /// Change the partition count of a *pending* fused operator: every
    /// task of `fop` must still be pending and never attempted, and none
    /// of its producers may have committed (their outputs are bucketed
    /// with the consumer's parallelism at producer-commit time).
    Repartition {
        /// The fused operator to repartition.
        fop: FopId,
        /// The new task count.
        parallelism: usize,
    },
    /// Drain the `nth` alive transient executor (by id order, modulo the
    /// alive count) ahead of a predicted eviction: its resident blocks
    /// migrate to reserved stores, and no new attempt lands on it. The
    /// container stays up — a later real eviction then destroys nothing
    /// of value.
    DrainTransient {
        /// Ordinal among alive, not-yet-drained transient executors.
        nth: usize,
    },
}

impl fmt::Display for ReconfigChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigChange::MigrateStage { stage, to } => {
                write!(f, "migrate stage {stage} to {}", to.label())
            }
            ReconfigChange::Repartition { fop, parallelism } => {
                write!(f, "repartition fop {fop} to {parallelism} tasks")
            }
            ReconfigChange::DrainTransient { nth } => {
                write!(f, "drain transient #{nth}")
            }
        }
    }
}

/// A requested reconfiguration: what to change. Wrapped so future knobs
/// (per-transaction timeouts, dry-run) extend without touching callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigPlan {
    /// The placement change to apply at commit.
    pub change: ReconfigChange,
}

impl From<ReconfigChange> for ReconfigPlan {
    fn from(change: ReconfigChange) -> Self {
        ReconfigPlan { change }
    }
}

/// Who asked for a reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigTrigger {
    /// The explicit [`LocalCluster`](crate::runtime::LocalCluster) API.
    Api,
    /// The eviction-storm policy hook (degrade to reserved-only).
    Policy,
    /// The chaos fault family (random reconfigs mid-job).
    Chaos,
}

impl fmt::Display for ReconfigTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigTrigger::Api => write!(f, "api"),
            ReconfigTrigger::Policy => write!(f, "policy"),
            ReconfigTrigger::Chaos => write!(f, "chaos"),
        }
    }
}

/// A reconfiguration scheduled against the job's progress clock: fired
/// when `after_done_events` terminal task reports have been handled.
/// Rides on [`FaultPlan`](crate::runtime::FaultPlan) like every other
/// deterministic injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledReconfig {
    /// Fire after this many terminal task reports.
    pub after_done_events: usize,
    /// The change to request.
    pub plan: ReconfigPlan,
    /// Attribution recorded on the journal.
    pub trigger: ReconfigTrigger,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn changes_render_compactly() {
        assert_eq!(
            ReconfigChange::MigrateStage {
                stage: 1,
                to: Placement::Reserved
            }
            .to_string(),
            "migrate stage 1 to reserved"
        );
        assert_eq!(
            ReconfigChange::Repartition {
                fop: 2,
                parallelism: 5
            }
            .to_string(),
            "repartition fop 2 to 5 tasks"
        );
        assert_eq!(
            ReconfigChange::DrainTransient { nth: 0 }.to_string(),
            "drain transient #0"
        );
        assert_eq!(ReconfigTrigger::Policy.to_string(), "policy");
    }
}
