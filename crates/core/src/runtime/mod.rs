//! The Pado Runtime (§3.2): master, executors, scheduling, eviction and
//! fault tolerance, and the in-process cluster harness.

pub mod backend;
pub mod cache;
pub mod clock;
pub mod config;
pub mod executor;
pub mod fault;
pub mod invariants;
pub mod journal;
pub mod local;
pub mod master;
pub mod message;
pub mod metrics;
pub mod policy;
pub mod reconfig;
pub mod store;
pub mod transport;
pub mod wal;

pub use backend::{
    BackendKind, CancelToken, ExecBackend, SimBackend, StallDiagnostics, StallProbe,
    ThreadedBackend, WorkerPool, WorkerState,
};
pub use cache::{CacheKey, LruCache};
pub use clock::Clock;
pub use config::RuntimeConfig;
pub use executor::{ExecutorHandle, JobContext};
pub use fault::{FaultDraw, FaultInjector, WireSide};
pub use invariants::{assert_clean, check, Violation};
pub use journal::{EventJournal, JobEvent, Journal, JournalMeta, JournalRecord};
pub use local::LocalCluster;
pub use master::{ChaosPlan, CrashPlan, FaultPlan, Injector, JobResult, Master};
pub use message::{AttemptId, ExecId, InjectedFault, MasterMsg};
pub use metrics::JobMetrics;
pub use policy::{Candidate, LeastLoaded, RoundRobinCacheAware, SchedulingPolicy, TaskToPlace};
pub use reconfig::{ReconfigChange, ReconfigPlan, ReconfigTrigger, ScheduledReconfig};
pub use store::{
    block_bytes, BlockRef, BlockStore, ExecutorStore, SpillFaultPlan, StoreError, StoreHandle,
};
pub use transport::{DirectionFaults, NetworkFault, PartitionSpec};
pub use wal::{
    encode_frame, inject_corruption, replay, scan, temp_wal_path, RecoveredState, WalCorruption,
    WalFrame, WalRecord, WalScan, WalSnapshot, WalWriter,
};
