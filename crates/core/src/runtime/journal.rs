//! Structured execution journal: the single source of truth for what
//! happened during a job.
//!
//! Every runtime component — the master's scheduler and commit protocol,
//! executor worker slots, and the retransmitting transport endpoints —
//! emits [`JobEvent`]s through a shared [`Journal`] handle. Each record
//! carries a raw emission sequence number, a microsecond timestamp from
//! the job epoch, and its causal keys (stage / task / attempt / executor
//! ids live on the event variants themselves). A frozen [`EventJournal`]
//! is attached to every [`JobResult`](crate::runtime::JobResult) and is
//! what the rest of the system consumes:
//!
//! - [`EventJournal::derive_metrics`] folds the journal into
//!   [`JobMetrics`] — counters are *derived* from events, never mirrored
//!   by hand, so the metrics cannot drift from the log;
//! - [`crate::runtime::invariants::check`] replays a journal and asserts
//!   the runtime's protocol laws (commit-once, inputs-before-launch, …);
//! - [`EventJournal::render_timeline`] prints a human-readable timeline;
//! - [`EventJournal::chrome_trace`] exports `chrome://tracing` JSON.
//!
//! # Canonical order
//!
//! The master is single-threaded, so its emissions form a causal total
//! order by raw sequence number. Executor worker slots emit
//! [`JobEvent::TaskStarted`] concurrently, and transport endpoints emit
//! [`JobEvent::MessageRetransmitted`] from both sides of the wire;
//! freezing sorts each `TaskStarted` to sit directly after the launch of
//! the same attempt, which makes the canonical order deterministic for a
//! fixed seed whenever execution is serial (the golden-timeline
//! configuration) and keeps "launch happens-before start" a structural
//! fact the invariant checker can rely on.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::compiler::FopId;
use crate::runtime::message::{AttemptId, ExecId};
use crate::runtime::metrics::JobMetrics;
use crate::runtime::reconfig::{ReconfigChange, ReconfigTrigger};
use crate::runtime::store::BlockRef;

/// Per-message retransmission bound the invariant checker enforces: with
/// a healthy ack path every message eventually lands, and even under
/// heavy loss no single frame should need anywhere near this many tries.
pub const MAX_RETRANSMISSIONS_PER_MESSAGE: usize = 64;

/// One entry of the execution journal — the progress record a deployment
/// would surface in a UI and replicate for master fault tolerance.
///
/// Task events carry their attempt id and executor; together with the
/// record-level stage and timestamp every event is causally keyed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    /// A task attempt was sent to an executor.
    TaskLaunched {
        /// Fused operator.
        fop: FopId,
        /// Task index.
        index: usize,
        /// The attempt id this launch was fenced with.
        attempt: AttemptId,
        /// Executor chosen.
        exec: ExecId,
        /// Whether this is a relaunch (not the first attempt).
        relaunch: bool,
        /// Side-input bytes shipped with this launch (cache misses).
        side_bytes_sent: usize,
        /// Side-input bytes served from the executor cache instead.
        side_bytes_saved: usize,
        /// Cacheable side inputs this launch had to ship.
        side_cache_misses: usize,
    },
    /// A speculative duplicate of a straggling attempt was launched.
    SpeculativeLaunched {
        /// Fused operator.
        fop: FopId,
        /// Task index.
        index: usize,
        /// The duplicate's attempt id.
        attempt: AttemptId,
        /// Executor running the duplicate.
        exec: ExecId,
        /// Side-input bytes shipped with this launch (cache misses).
        side_bytes_sent: usize,
        /// Side-input bytes served from the executor cache instead.
        side_bytes_saved: usize,
        /// Cacheable side inputs this launch had to ship.
        side_cache_misses: usize,
    },
    /// An executor worker slot began executing an attempt (emitted from
    /// the executor, not the master).
    TaskStarted {
        /// Fused operator.
        fop: FopId,
        /// Task index.
        index: usize,
        /// The attempt now running.
        attempt: AttemptId,
        /// The executor it runs on.
        exec: ExecId,
    },
    /// A task's output was pushed and committed.
    TaskCommitted {
        /// Fused operator.
        fop: FopId,
        /// Task index.
        index: usize,
        /// The committing attempt.
        attempt: AttemptId,
        /// Executor the attempt ran on.
        exec: ExecId,
        /// Whether the committing attempt was the speculative duplicate.
        speculative: bool,
        /// Output bytes pushed from a transient container to reserved
        /// executors by this commit (0 when kept locally).
        bytes_pushed: usize,
        /// Records removed by transient-side partial aggregation.
        preaggregated: usize,
        /// Whether the attempt served its side input from the cache.
        cache_hit: bool,
    },
    /// A task attempt failed in user code (error or caught panic).
    TaskFailed {
        /// Fused operator.
        fop: FopId,
        /// Task index.
        index: usize,
        /// The failed attempt.
        attempt: AttemptId,
        /// Executor the attempt ran on.
        exec: ExecId,
    },
    /// A committed task's output was lost (container loss or master
    /// recovery) and the task reverted to pending.
    TaskReverted {
        /// Fused operator.
        fop: FopId,
        /// Task index.
        index: usize,
    },
    /// An executor was blacklisted after repeated user-code failures.
    ExecutorBlacklisted(ExecId),
    /// A Pado Stage finished (all its tasks committed).
    StageCompleted(usize),
    /// A completed stage re-opened.
    StageReopened {
        /// The stage that reverted to incomplete.
        stage: usize,
        /// `true` when a container loss destroyed the stage's preserved
        /// outputs (the §3.2.6 recomputation path); `false` when a master
        /// restart merely rolled the stage back to an older snapshot.
        recompute: bool,
    },
    /// A transient container was evicted.
    ContainerEvicted(ExecId),
    /// A reserved executor failed.
    ReservedFailed(ExecId),
    /// The heartbeat failure detector declared an executor dead (treated
    /// like an eviction: uncommitted work relaunches, committed blocks on
    /// other executors keep serving).
    ExecutorDeclaredDead(ExecId),
    /// A replacement container was provisioned.
    ContainerAdded(ExecId),
    /// The failure detector flagged an executor as silent past the
    /// heartbeat-miss threshold (slow, not yet dead).
    HeartbeatMissed(ExecId),
    /// A transport endpoint retransmitted an unacknowledged message
    /// (emitted from the sending side of the wire).
    MessageRetransmitted {
        /// The executor endpoint of the link.
        exec: ExecId,
        /// `true` for the executor→master direction.
        to_master: bool,
        /// The link-level sequence number being retried.
        seq: u64,
    },
    /// The master restarted from its replicated progress snapshot.
    MasterRecovered,
    /// A block was admitted into an executor's byte-accounted store.
    BlockAdmitted {
        /// The executor whose store admitted the block.
        exec: ExecId,
        /// The admitted block.
        block: BlockRef,
        /// Bytes of the block.
        bytes: usize,
        /// Store occupancy (blocks + cache) after the admission.
        resident: usize,
    },
    /// An unpinned block was spilled to the executor's disk tier to
    /// make headroom.
    BlockSpilled {
        /// The executor whose store spilled the block.
        exec: ExecId,
        /// The spilled block.
        block: BlockRef,
        /// Bytes of the block (freed from memory; the compressed
        /// column-codec size, which is also what the spill file holds).
        bytes: usize,
        /// Bytes the same records would occupy in the row (per-record)
        /// encoding — the uncompressed baseline, kept so the journal can
        /// report how much the column codecs saved.
        raw_bytes: usize,
        /// Store occupancy after the spill.
        resident: usize,
    },
    /// A spilled block was reloaded from disk before use.
    BlockLoaded {
        /// The executor whose store reloaded the block.
        exec: ExecId,
        /// The reloaded block.
        block: BlockRef,
        /// Bytes brought back into memory.
        bytes: usize,
        /// Store occupancy after the reload.
        resident: usize,
    },
    /// A block was released from an executor's store (its output was
    /// invalidated or superseded).
    BlockReleased {
        /// The executor whose store released the block.
        exec: ExecId,
        /// The released block.
        block: BlockRef,
        /// Bytes freed.
        bytes: usize,
        /// Store occupancy after the release.
        resident: usize,
    },
    /// A launching attempt pinned one of its input blocks (pinned
    /// blocks are never spillable).
    BlockPinned {
        /// The executor whose store holds the pin.
        exec: ExecId,
        /// The pinned block.
        block: BlockRef,
    },
    /// A terminal attempt report dropped one pin of an input block.
    BlockUnpinned {
        /// The executor whose store held the pin.
        exec: ExecId,
        /// The unpinned block.
        block: BlockRef,
    },
    /// An executor store's byte budget changed (chaos budget shrink);
    /// carries the *applied* budget, clamped up to the unspillable
    /// occupancy when pinned bytes exceed the request.
    StoreBudgetChanged {
        /// The executor whose budget changed.
        exec: ExecId,
        /// The applied budget in bytes.
        budget: usize,
    },
    /// A `TaskDone` push to a reserved executor was deferred because
    /// its store lacked headroom (push backpressure).
    PushDeferred {
        /// Fused operator of the produced output.
        fop: FopId,
        /// Task index of the produced output.
        index: usize,
        /// The reserved executor that refused the push.
        exec: ExecId,
        /// Bytes of the deferred output.
        bytes: usize,
    },
    /// A previously deferred push was admitted on retry.
    PushResumed {
        /// Fused operator of the pushed output.
        fop: FopId,
        /// Task index of the pushed output.
        index: usize,
        /// The reserved executor that finally admitted the push.
        exec: ExecId,
        /// Bytes of the pushed output.
        bytes: usize,
    },
    /// Chaos injected an allocation failure into a running attempt
    /// (the OOM fault family); the attempt must fail, never abort.
    OomInjected {
        /// Fused operator.
        fop: FopId,
        /// Task index.
        index: usize,
        /// The attempt the allocation failure hit.
        attempt: AttemptId,
        /// The executor it ran on.
        exec: ExecId,
    },
    /// A task served a side input from the executor's §3.2.7 cache
    /// (emitted from the executor).
    CacheHit {
        /// The executor whose cache hit.
        exec: ExecId,
        /// The cache key (producing fop).
        key: usize,
        /// Bytes served from the cache.
        bytes: usize,
    },
    /// A task looked up a side input the executor's cache did not hold.
    CacheMiss {
        /// The executor whose cache missed.
        exec: ExecId,
        /// The cache key (producing fop).
        key: usize,
    },
    /// A reconfiguration transaction was requested (by the explicit API,
    /// the eviction-storm policy, or the chaos fault family).
    ReconfigRequested {
        /// Transaction id, unique within the job.
        reconfig: u64,
        /// Who asked.
        trigger: ReconfigTrigger,
        /// The placement change to apply at commit.
        change: ReconfigChange,
    },
    /// The prepare phase finished: every in-flight attempt reached a
    /// terminal state and the transaction may commit.
    ReconfigPrepared {
        /// The prepared transaction.
        reconfig: u64,
        /// In-flight attempts the quiesce had to wait out.
        quiesced: usize,
    },
    /// The transaction committed: the change is applied and the epoch it
    /// advanced to is live.
    ReconfigCommitted {
        /// The committed transaction.
        reconfig: u64,
        /// The applied change.
        change: ReconfigChange,
        /// The epoch the commit advanced to.
        epoch: u64,
    },
    /// The transaction rolled back (timeout, eviction, OOM, master
    /// restart, or an infeasible change): nothing was applied and the old
    /// placement remains runnable.
    ReconfigAborted {
        /// The aborted transaction.
        reconfig: u64,
        /// Why it rolled back.
        reason: String,
    },
    /// The global reconfiguration epoch advanced (always by exactly one;
    /// law 9 checks it).
    EpochAdvanced {
        /// The new epoch.
        epoch: u64,
    },
    /// The master rejected a payload frame stamped with a pre-commit
    /// epoch (the frame was still acknowledged so the sender drains).
    StaleFrameFenced {
        /// The executor whose frame was fenced.
        exec: ExecId,
        /// The link-level sequence number of the fenced frame.
        seq: u64,
        /// The stale epoch stamped on the frame.
        epoch: u64,
    },
    /// The master rebuilt its state from the durable write-ahead log
    /// (always paired with a [`JobEvent::MasterRecovered`]); carries the
    /// recovery statistics.
    WalRecovered {
        /// WAL frames folded into the recovered state.
        frames_replayed: usize,
        /// Frames the recovery scan discarded (torn tail, corrupt frame,
        /// frames stranded beyond interior corruption).
        frames_truncated: usize,
        /// Whether interior corruption forced the fallback to the last
        /// good snapshot instead of the full valid prefix.
        snapshot_restored: bool,
    },
    /// The master loop observed its cancel token and abandoned the run
    /// (an abort marker for law 11: the run must still quiesce the pool
    /// and freeze the journal).
    RunAborted {
        /// What initiated the cancellation (wall-clock expiry, watchdog
        /// trip, external cancel).
        reason: String,
    },
    /// The hang watchdog observed no progress (journal length, pool
    /// in-flight count, and outstanding attempts all static with work
    /// outstanding) across its full sample window and cancelled the run
    /// (an abort marker for law 11).
    RunStalled {
        /// How long the watchdog watched a static run before tripping.
        waited_ms: u64,
    },
    /// The worker pool quiesced at master shutdown: emitted on every run
    /// — clean, aborted, or stalled — with the in-flight count observed
    /// after the quiesce wait (law 11 requires zero).
    PoolQuiesced {
        /// Jobs still queued or running when the quiesce wait returned.
        in_flight: usize,
    },
    /// A pool worker thread did not exit within the shutdown grace
    /// period and was detached instead of joined (law 11 treats this as
    /// a leak: never legal on a clean run, and on aborted runs only
    /// before the pool quiesced).
    PoolWorkerDetached {
        /// Index of the detached worker thread.
        worker: usize,
    },
}

impl JobEvent {
    /// The event's variant name — the unit the cross-backend differential
    /// suite compares on (per-kind counts are placement-sensitive for some
    /// kinds, but the set of kinds a plan can produce is not).
    pub fn kind(&self) -> &'static str {
        match self {
            JobEvent::TaskLaunched { .. } => "TaskLaunched",
            JobEvent::SpeculativeLaunched { .. } => "SpeculativeLaunched",
            JobEvent::TaskStarted { .. } => "TaskStarted",
            JobEvent::TaskCommitted { .. } => "TaskCommitted",
            JobEvent::TaskFailed { .. } => "TaskFailed",
            JobEvent::TaskReverted { .. } => "TaskReverted",
            JobEvent::ExecutorBlacklisted(_) => "ExecutorBlacklisted",
            JobEvent::StageCompleted(_) => "StageCompleted",
            JobEvent::StageReopened { .. } => "StageReopened",
            JobEvent::ContainerEvicted(_) => "ContainerEvicted",
            JobEvent::ReservedFailed(_) => "ReservedFailed",
            JobEvent::ExecutorDeclaredDead(_) => "ExecutorDeclaredDead",
            JobEvent::ContainerAdded(_) => "ContainerAdded",
            JobEvent::HeartbeatMissed(_) => "HeartbeatMissed",
            JobEvent::MessageRetransmitted { .. } => "MessageRetransmitted",
            JobEvent::MasterRecovered => "MasterRecovered",
            JobEvent::BlockAdmitted { .. } => "BlockAdmitted",
            JobEvent::BlockSpilled { .. } => "BlockSpilled",
            JobEvent::BlockLoaded { .. } => "BlockLoaded",
            JobEvent::BlockReleased { .. } => "BlockReleased",
            JobEvent::BlockPinned { .. } => "BlockPinned",
            JobEvent::BlockUnpinned { .. } => "BlockUnpinned",
            JobEvent::StoreBudgetChanged { .. } => "StoreBudgetChanged",
            JobEvent::PushDeferred { .. } => "PushDeferred",
            JobEvent::PushResumed { .. } => "PushResumed",
            JobEvent::OomInjected { .. } => "OomInjected",
            JobEvent::CacheHit { .. } => "CacheHit",
            JobEvent::CacheMiss { .. } => "CacheMiss",
            JobEvent::ReconfigRequested { .. } => "ReconfigRequested",
            JobEvent::ReconfigPrepared { .. } => "ReconfigPrepared",
            JobEvent::ReconfigCommitted { .. } => "ReconfigCommitted",
            JobEvent::ReconfigAborted { .. } => "ReconfigAborted",
            JobEvent::EpochAdvanced { .. } => "EpochAdvanced",
            JobEvent::StaleFrameFenced { .. } => "StaleFrameFenced",
            JobEvent::WalRecovered { .. } => "WalRecovered",
            JobEvent::RunAborted { .. } => "RunAborted",
            JobEvent::RunStalled { .. } => "RunStalled",
            JobEvent::PoolQuiesced { .. } => "PoolQuiesced",
            JobEvent::PoolWorkerDetached { .. } => "PoolWorkerDetached",
        }
    }
}

/// One journal record: an event plus its emission order, timestamp, and
/// the stage it belongs to (when the emitter knows it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Raw emission sequence number (order the record entered the
    /// journal; unique, monotone).
    pub seq: u64,
    /// Microseconds since the job epoch.
    pub at_us: u64,
    /// The Pado stage this event belongs to, when known.
    pub stage: Option<usize>,
    /// The event itself.
    pub event: JobEvent,
}

/// Static plan facts embedded in every frozen journal so it replays
/// self-contained: the invariant checker needs no access to the plan,
/// only the journal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JournalMeta {
    /// Number of stages in the physical plan.
    pub n_stages: usize,
    /// Stage of each fused operator.
    pub stage_of: Vec<usize>,
    /// Task count of each fused operator.
    pub parallelism: Vec<usize>,
    /// For each task `(fop, index)`, the producer tasks whose outputs
    /// must be locatable before it may launch.
    pub required: Vec<Vec<Vec<(FopId, usize)>>>,
    /// The configured per-task retry budget.
    pub max_task_attempts: usize,
    /// The per-message retransmission bound the checker enforces.
    pub retransmit_bound: usize,
    /// The per-executor store byte budget the job ran under. `0` (the
    /// `Default`, for journals predating memory accounting) and
    /// `usize::MAX` both mean unlimited.
    pub executor_memory_bytes: usize,
}

impl JournalMeta {
    /// Tasks in the physical plan.
    pub fn original_tasks(&self) -> usize {
        self.parallelism.iter().sum()
    }
}

/// Cloneable writer handle to the shared journal. The master, every
/// executor worker slot, and every transport endpoint hold one.
///
/// When a durable sink is armed (WAL-backed runs), every emission is
/// also appended to the write-ahead log; arming must happen before the
/// handle is cloned out to executors so all emitters share the sink.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    inner: Arc<Mutex<Vec<JournalRecord>>>,
    epoch: Option<Instant>,
    sink: Option<Arc<Mutex<crate::runtime::wal::WalWriter>>>,
}

impl Journal {
    /// An empty journal whose epoch is now.
    pub fn new() -> Self {
        Journal {
            inner: Arc::new(Mutex::new(Vec::new())),
            epoch: Some(Instant::now()),
            sink: None,
        }
    }

    /// Arms the durable WAL sink: every subsequent emission through this
    /// handle (and every clone taken *after* this call) is appended to
    /// the log as an event frame.
    pub fn arm_wal(&mut self, sink: Arc<Mutex<crate::runtime::wal::WalWriter>>) {
        self.sink = Some(sink);
    }

    /// Appends one event, stamping its sequence number and timestamp.
    /// With a WAL sink armed the event is also made durable; the journal
    /// lock is released before the WAL lock is taken, so emitters may
    /// hold unrelated locks (e.g. a store mutex) without ordering cycles.
    pub fn emit(&self, stage: Option<usize>, event: JobEvent) {
        let at_us = self
            .epoch
            .map_or(0, |e| e.elapsed().as_micros().min(u64::MAX as u128) as u64);
        let durable = self.sink.as_ref().map(|sink| {
            (
                sink,
                crate::runtime::wal::WalRecord::Event {
                    stage,
                    event: event.clone(),
                },
            )
        });
        {
            let mut records = self.inner.lock();
            let seq = records.len() as u64;
            records.push(JournalRecord {
                seq,
                at_us,
                stage,
                event,
            });
        }
        if let Some((sink, record)) = durable {
            // Best effort: a failing append (e.g. a full disk) must not
            // panic an emitter; the master's own append path surfaces
            // WAL errors through its Result-returning handlers.
            let _ = sink.lock().append(&record);
        }
    }

    /// Snapshots the journal into its canonical, replayable form.
    pub fn freeze(&self, meta: JournalMeta) -> EventJournal {
        let records = self.inner.lock().clone();
        EventJournal::from_parts(meta, records)
    }

    /// Number of records emitted so far — the hang watchdog's progress
    /// counter (a static length across a full sample window means no
    /// emitter anywhere in the runtime is making progress).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// The last `n` events in raw emission order — the stall
    /// diagnostics' "what was the runtime doing when it wedged" tail.
    pub fn tail(&self, n: usize) -> Vec<JobEvent> {
        let records = self.inner.lock();
        let start = records.len().saturating_sub(n);
        records[start..].iter().map(|r| r.event.clone()).collect()
    }
}

/// A frozen, canonically-ordered journal: what a [`JobResult`] carries
/// and what the invariant checker and exporters consume.
///
/// [`JobResult`]: crate::runtime::JobResult
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventJournal {
    meta: JournalMeta,
    records: Vec<JournalRecord>,
}

impl EventJournal {
    /// Builds a journal from raw parts, applying the canonical order:
    /// records sort by their raw sequence number, except that each
    /// `TaskStarted` is anchored directly after the launch of the same
    /// attempt (the executor's emission races the master's otherwise).
    pub fn from_parts(meta: JournalMeta, mut records: Vec<JournalRecord>) -> Self {
        let mut launch_seq: HashMap<AttemptId, u64> = HashMap::new();
        for r in &records {
            match &r.event {
                JobEvent::TaskLaunched { attempt, .. }
                | JobEvent::SpeculativeLaunched { attempt, .. } => {
                    launch_seq.entry(*attempt).or_insert(r.seq);
                }
                _ => {}
            }
        }
        records.sort_by_key(|r| match &r.event {
            JobEvent::TaskStarted { attempt, .. } => (
                launch_seq.get(attempt).copied().unwrap_or(r.seq),
                1u8,
                r.seq,
            ),
            _ => (r.seq, 0, r.seq),
        });
        EventJournal { meta, records }
    }

    /// The embedded plan facts.
    pub fn meta(&self) -> &JournalMeta {
        &self.meta
    }

    /// The canonical record sequence.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// The canonical event sequence (records without their keys).
    pub fn events(&self) -> impl Iterator<Item = &JobEvent> + '_ {
        self.records.iter().map(|r| &r.event)
    }

    /// The canonical event sequence as an owned log (for error payloads).
    pub fn to_events(&self) -> Vec<JobEvent> {
        self.events().cloned().collect()
    }

    /// Counts records per event kind (see [`JobEvent::kind`]). Sorted map
    /// so differential assertions print deterministically.
    pub fn kind_counts(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for e in self.events() {
            *counts.entry(e.kind()).or_insert(0) += 1;
        }
        counts
    }

    /// Derives the event-sourced [`JobMetrics`] counters by folding the
    /// journal. Wire-level drop/duplicate/dedup counts happen below the
    /// journal's causal horizon (inside the simulated network) and are
    /// folded in from [`TransportCounters`] by the master; every other
    /// counter is computed here, so it cannot disagree with the log.
    ///
    /// [`TransportCounters`]: crate::runtime::transport::TransportCounters
    pub fn derive_metrics(&self) -> JobMetrics {
        let mut m = JobMetrics {
            original_tasks: self.meta.original_tasks(),
            ..JobMetrics::default()
        };
        for r in &self.records {
            match &r.event {
                JobEvent::TaskLaunched {
                    relaunch,
                    side_bytes_sent,
                    side_bytes_saved,
                    side_cache_misses,
                    ..
                } => {
                    m.tasks_launched += 1;
                    if *relaunch {
                        m.relaunched_tasks += 1;
                    }
                    m.side_bytes_sent += side_bytes_sent;
                    m.side_bytes_saved += side_bytes_saved;
                    m.cache_misses += side_cache_misses;
                }
                JobEvent::SpeculativeLaunched {
                    side_bytes_sent,
                    side_bytes_saved,
                    side_cache_misses,
                    ..
                } => {
                    m.tasks_launched += 1;
                    m.speculative_launches += 1;
                    m.side_bytes_sent += side_bytes_sent;
                    m.side_bytes_saved += side_bytes_saved;
                    m.cache_misses += side_cache_misses;
                }
                JobEvent::TaskStarted { .. } => {}
                JobEvent::TaskCommitted {
                    speculative,
                    bytes_pushed,
                    preaggregated,
                    cache_hit,
                    ..
                } => {
                    if *speculative {
                        m.speculative_wins += 1;
                    }
                    m.bytes_pushed += bytes_pushed;
                    m.records_preaggregated += preaggregated;
                    if *cache_hit {
                        m.cache_hits += 1;
                    }
                }
                JobEvent::TaskFailed { .. } => m.task_failures += 1,
                JobEvent::TaskReverted { .. } => {}
                JobEvent::ExecutorBlacklisted(_) => m.blacklisted_executors += 1,
                JobEvent::StageCompleted(_) => {}
                JobEvent::StageReopened { recompute, .. } => {
                    if *recompute {
                        m.stage_recomputations += 1;
                    }
                }
                JobEvent::ContainerEvicted(_) => m.evictions += 1,
                JobEvent::ReservedFailed(_) => m.reserved_failures += 1,
                JobEvent::ExecutorDeclaredDead(_) => m.executors_declared_dead += 1,
                JobEvent::ContainerAdded(_) => {}
                JobEvent::HeartbeatMissed(_) => m.heartbeats_missed += 1,
                JobEvent::MessageRetransmitted { .. } => m.messages_retransmitted += 1,
                JobEvent::MasterRecovered => {}
                JobEvent::BlockAdmitted { resident, .. } => {
                    m.peak_store_bytes = m.peak_store_bytes.max(*resident);
                }
                JobEvent::BlockSpilled {
                    bytes,
                    raw_bytes,
                    resident,
                    ..
                } => {
                    m.blocks_spilled += 1;
                    m.spill_bytes += bytes;
                    m.spill_raw_bytes += raw_bytes;
                    m.peak_store_bytes = m.peak_store_bytes.max(*resident);
                }
                JobEvent::BlockLoaded { resident, .. } => {
                    m.blocks_loaded += 1;
                    m.peak_store_bytes = m.peak_store_bytes.max(*resident);
                }
                JobEvent::BlockReleased { resident, .. } => {
                    m.peak_store_bytes = m.peak_store_bytes.max(*resident);
                }
                JobEvent::BlockPinned { .. } | JobEvent::BlockUnpinned { .. } => {}
                JobEvent::StoreBudgetChanged { .. } => {}
                JobEvent::PushDeferred { .. } => m.pushes_deferred += 1,
                JobEvent::PushResumed { .. } => m.pushes_resumed += 1,
                JobEvent::OomInjected { .. } => m.oom_injected += 1,
                JobEvent::CacheHit { .. } => m.store_cache_hits += 1,
                JobEvent::CacheMiss { .. } => m.store_cache_misses += 1,
                JobEvent::ReconfigRequested { .. } | JobEvent::ReconfigPrepared { .. } => {}
                JobEvent::ReconfigCommitted { .. } => m.reconfigs_committed += 1,
                JobEvent::ReconfigAborted { .. } => m.reconfigs_aborted += 1,
                JobEvent::EpochAdvanced { epoch } => {
                    m.final_epoch = m.final_epoch.max(*epoch);
                }
                JobEvent::StaleFrameFenced { .. } => m.frames_fenced += 1,
                JobEvent::WalRecovered {
                    frames_replayed,
                    frames_truncated,
                    snapshot_restored,
                } => {
                    m.wal_recoveries += 1;
                    m.wal_frames_replayed += frames_replayed;
                    m.wal_frames_truncated += frames_truncated;
                    if *snapshot_restored {
                        m.wal_snapshot_restores += 1;
                    }
                }
                JobEvent::RunAborted { .. }
                | JobEvent::RunStalled { .. }
                | JobEvent::PoolQuiesced { .. }
                | JobEvent::PoolWorkerDetached { .. } => {}
            }
        }
        m
    }

    /// Renders a human-readable timeline, one line per canonical record.
    /// With `show_times` false the (wall-clock) timestamp column is
    /// elided, making the output byte-stable for a fixed seed under
    /// serial execution — the golden-test form.
    pub fn render_timeline(&self, show_times: bool) -> String {
        let mut out = String::new();
        for (pos, r) in self.records.iter().enumerate() {
            out.push_str(&format!("{pos:>5}  "));
            if show_times {
                out.push_str(&format!("[{:>9} us]  ", r.at_us));
            }
            match r.stage {
                Some(s) => out.push_str(&format!("s{s}  ")),
                None => out.push_str("--  "),
            }
            out.push_str(&describe(&r.event));
            out.push('\n');
        }
        out
    }

    /// Exports the journal as Chrome-trace (`chrome://tracing` /
    /// Perfetto) JSON: one duration event per task attempt (launch or
    /// start → terminal report), plus instant events for faults and
    /// recovery actions. Rows (`tid`) are executors.
    pub fn chrome_trace(&self) -> String {
        let end_us = self.records.iter().map(|r| r.at_us).max().unwrap_or(0);
        // attempt -> (fop, index, exec, stage, start_us, speculative)
        type OpenSlice = (FopId, usize, ExecId, Option<usize>, u64, bool);
        let mut open: HashMap<AttemptId, OpenSlice> = HashMap::new();
        let mut parts: Vec<String> = Vec::new();
        #[allow(clippy::too_many_arguments)]
        fn slice(
            parts: &mut Vec<String>,
            name: &str,
            cat: &str,
            ts: u64,
            dur: u64,
            tid: ExecId,
            fop: FopId,
            index: usize,
            attempt: AttemptId,
            stage: Option<usize>,
        ) {
            parts.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\
                 \"dur\":{dur},\"pid\":0,\"tid\":{tid},\"args\":{{\"fop\":{fop},\
                 \"index\":{index},\"attempt\":{attempt},\"stage\":{}}}}}",
                stage.map_or("null".to_string(), |s| s.to_string())
            ));
        }
        for r in &self.records {
            match &r.event {
                JobEvent::TaskLaunched {
                    fop,
                    index,
                    attempt,
                    exec,
                    ..
                } => {
                    open.insert(*attempt, (*fop, *index, *exec, r.stage, r.at_us, false));
                }
                JobEvent::SpeculativeLaunched {
                    fop,
                    index,
                    attempt,
                    exec,
                    ..
                } => {
                    open.insert(*attempt, (*fop, *index, *exec, r.stage, r.at_us, true));
                }
                JobEvent::TaskStarted { attempt, .. } => {
                    if let Some(o) = open.get_mut(attempt) {
                        o.4 = r.at_us; // Refine the slice start to actual execution.
                    }
                }
                JobEvent::TaskCommitted { attempt, .. } => {
                    if let Some((fop, index, exec, stage, t0, spec)) = open.remove(attempt) {
                        let name = format!("t{fop}.{index} a{attempt}");
                        let cat = if spec { "speculative" } else { "task" };
                        slice(
                            &mut parts,
                            &name,
                            cat,
                            t0,
                            r.at_us.saturating_sub(t0),
                            exec,
                            fop,
                            index,
                            *attempt,
                            stage,
                        );
                    }
                }
                JobEvent::TaskFailed { attempt, .. } => {
                    if let Some((fop, index, exec, stage, t0, _)) = open.remove(attempt) {
                        let name = format!("t{fop}.{index} a{attempt} FAILED");
                        slice(
                            &mut parts,
                            &name,
                            "failed",
                            t0,
                            r.at_us.saturating_sub(t0),
                            exec,
                            fop,
                            index,
                            *attempt,
                            stage,
                        );
                    }
                }
                _ => {}
            }
            if let Some((name, tid)) = instant_of(&r.event) {
                parts.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{},\
                     \"pid\":0,\"tid\":{tid},\"s\":\"g\"}}",
                    r.at_us
                ));
            }
        }
        // Attempts that never reported terminally (discarded losers,
        // attempts stranded on lost executors) stretch to the job end.
        let mut leftovers: Vec<_> = open.into_iter().collect();
        leftovers.sort_by_key(|&(a, _)| a);
        for (attempt, (fop, index, exec, stage, t0, _)) in leftovers {
            let name = format!("t{fop}.{index} a{attempt} (abandoned)");
            slice(
                &mut parts,
                &name,
                "abandoned",
                t0,
                end_us.saturating_sub(t0),
                exec,
                fop,
                index,
                attempt,
                stage,
            );
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
            parts.join(",")
        )
    }
}

/// Instant-event rendering for the Chrome trace: fault and topology
/// events pinned to the executor row they concern (row 0 for the master).
fn instant_of(event: &JobEvent) -> Option<(String, ExecId)> {
    match event {
        JobEvent::ContainerEvicted(e) => Some((format!("evicted exec {e}"), *e)),
        JobEvent::ReservedFailed(e) => Some((format!("reserved failure exec {e}"), *e)),
        JobEvent::ExecutorDeclaredDead(e) => Some((format!("declared dead exec {e}"), *e)),
        JobEvent::ExecutorBlacklisted(e) => Some((format!("blacklisted exec {e}"), *e)),
        JobEvent::ContainerAdded(e) => Some((format!("container added exec {e}"), *e)),
        JobEvent::HeartbeatMissed(e) => Some((format!("heartbeat missed exec {e}"), *e)),
        JobEvent::TaskReverted { fop, index } => Some((format!("revert t{fop}.{index}"), 0)),
        JobEvent::StageCompleted(s) => Some((format!("stage {s} complete"), 0)),
        JobEvent::StageReopened { stage, recompute } => Some((
            if *recompute {
                format!("stage {stage} reopened (recompute)")
            } else {
                format!("stage {stage} reopened (rollback)")
            },
            0,
        )),
        JobEvent::MasterRecovered => Some(("master recovered".to_string(), 0)),
        JobEvent::BlockSpilled { exec, block, .. } => Some((format!("spill {block}"), *exec)),
        JobEvent::BlockLoaded { exec, block, .. } => Some((format!("load {block}"), *exec)),
        JobEvent::StoreBudgetChanged { exec, budget } => {
            Some((format!("budget {budget} B exec {exec}"), *exec))
        }
        JobEvent::PushDeferred {
            fop, index, exec, ..
        } => Some((format!("push deferred t{fop}.{index}"), *exec)),
        JobEvent::PushResumed {
            fop, index, exec, ..
        } => Some((format!("push resumed t{fop}.{index}"), *exec)),
        JobEvent::OomInjected {
            fop, index, exec, ..
        } => Some((format!("oom injected t{fop}.{index}"), *exec)),
        JobEvent::ReconfigRequested {
            reconfig,
            trigger,
            change,
        } => Some((
            format!("reconfig {reconfig} requested ({trigger}): {change}"),
            0,
        )),
        JobEvent::ReconfigPrepared { reconfig, .. } => {
            Some((format!("reconfig {reconfig} prepared"), 0))
        }
        JobEvent::ReconfigCommitted {
            reconfig, epoch, ..
        } => Some((format!("reconfig {reconfig} committed (epoch {epoch})"), 0)),
        JobEvent::ReconfigAborted { reconfig, reason } => {
            Some((format!("reconfig {reconfig} aborted: {reason}"), 0))
        }
        JobEvent::EpochAdvanced { epoch } => Some((format!("epoch {epoch}"), 0)),
        JobEvent::StaleFrameFenced { exec, seq, epoch } => Some((
            format!("fenced stale frame seq {seq} (epoch {epoch}) from exec {exec}"),
            *exec,
        )),
        JobEvent::WalRecovered {
            frames_replayed,
            frames_truncated,
            snapshot_restored,
        } => Some((
            format!(
                "wal recovered: {frames_replayed} frames replayed, {frames_truncated} \
                 truncated{}",
                if *snapshot_restored {
                    ", snapshot fallback"
                } else {
                    ""
                }
            ),
            0,
        )),
        _ => None,
    }
}

/// One-line human description of an event (the timeline body).
fn describe(event: &JobEvent) -> String {
    match event {
        JobEvent::TaskLaunched {
            fop,
            index,
            attempt,
            exec,
            relaunch,
            ..
        } => {
            let tag = if *relaunch { " (relaunch)" } else { "" };
            format!("launch        task {fop}.{index} attempt {attempt} on exec {exec}{tag}")
        }
        JobEvent::SpeculativeLaunched {
            fop,
            index,
            attempt,
            exec,
            ..
        } => format!("speculate     task {fop}.{index} attempt {attempt} on exec {exec}"),
        JobEvent::TaskStarted {
            fop,
            index,
            attempt,
            exec,
        } => format!("start         task {fop}.{index} attempt {attempt} on exec {exec}"),
        JobEvent::TaskCommitted {
            fop,
            index,
            attempt,
            exec,
            speculative,
            bytes_pushed,
            ..
        } => {
            let mut line =
                format!("commit        task {fop}.{index} attempt {attempt} on exec {exec}");
            if *speculative {
                line.push_str(" [speculative]");
            }
            if *bytes_pushed > 0 {
                line.push_str(&format!(" (pushed {bytes_pushed} B)"));
            }
            line
        }
        JobEvent::TaskFailed {
            fop,
            index,
            attempt,
            exec,
        } => format!("fail          task {fop}.{index} attempt {attempt} on exec {exec}"),
        JobEvent::TaskReverted { fop, index } => {
            format!("revert        task {fop}.{index}")
        }
        JobEvent::ExecutorBlacklisted(e) => format!("blacklist     exec {e}"),
        JobEvent::StageCompleted(s) => format!("stage-done    stage {s}"),
        JobEvent::StageReopened { stage, recompute } => {
            if *recompute {
                format!("stage-reopen  stage {stage} (recompute)")
            } else {
                format!("stage-reopen  stage {stage} (rollback)")
            }
        }
        JobEvent::ContainerEvicted(e) => format!("evict         exec {e}"),
        JobEvent::ReservedFailed(e) => format!("reserved-fail exec {e}"),
        JobEvent::ExecutorDeclaredDead(e) => format!("declared-dead exec {e}"),
        JobEvent::ContainerAdded(e) => format!("container-add exec {e}"),
        JobEvent::HeartbeatMissed(e) => format!("hb-miss       exec {e}"),
        JobEvent::MessageRetransmitted {
            exec,
            to_master,
            seq,
        } => {
            let dir = if *to_master { "to-master" } else { "to-exec" };
            format!("retransmit    {dir} link of exec {exec}, seq {seq}")
        }
        JobEvent::MasterRecovered => "master-recovered".to_string(),
        JobEvent::BlockAdmitted {
            exec,
            block,
            bytes,
            resident,
        } => format!("block-admit   {block} on exec {exec} ({bytes} B, resident {resident} B)"),
        JobEvent::BlockSpilled {
            exec,
            block,
            bytes,
            raw_bytes,
            resident,
        } => format!(
            "spill         {block} on exec {exec} ({bytes} B of {raw_bytes} B raw, \
             resident {resident} B)"
        ),
        JobEvent::BlockLoaded {
            exec,
            block,
            bytes,
            resident,
        } => format!("load          {block} on exec {exec} ({bytes} B, resident {resident} B)"),
        JobEvent::BlockReleased {
            exec,
            block,
            bytes,
            resident,
        } => format!("block-release {block} on exec {exec} ({bytes} B, resident {resident} B)"),
        JobEvent::BlockPinned { exec, block } => format!("pin           {block} on exec {exec}"),
        JobEvent::BlockUnpinned { exec, block } => {
            format!("unpin         {block} on exec {exec}")
        }
        JobEvent::StoreBudgetChanged { exec, budget } => {
            format!("store-budget  exec {exec} now {budget} B")
        }
        JobEvent::PushDeferred {
            fop,
            index,
            exec,
            bytes,
        } => format!("push-defer    output {fop}.{index} to exec {exec} ({bytes} B)"),
        JobEvent::PushResumed {
            fop,
            index,
            exec,
            bytes,
        } => format!("push-resume   output {fop}.{index} to exec {exec} ({bytes} B)"),
        JobEvent::OomInjected {
            fop,
            index,
            attempt,
            exec,
        } => format!("oom-inject    task {fop}.{index} attempt {attempt} on exec {exec}"),
        JobEvent::CacheHit { exec, key, bytes } => {
            format!("cache-hit     side {key} on exec {exec} ({bytes} B)")
        }
        JobEvent::CacheMiss { exec, key } => format!("cache-miss    side {key} on exec {exec}"),
        JobEvent::ReconfigRequested {
            reconfig,
            trigger,
            change,
        } => format!("reconfig-req  reconfig {reconfig} ({trigger}): {change}"),
        JobEvent::ReconfigPrepared { reconfig, quiesced } => {
            format!("reconfig-prep reconfig {reconfig} (quiesced {quiesced} attempts)")
        }
        JobEvent::ReconfigCommitted {
            reconfig,
            change,
            epoch,
        } => format!("reconfig-done reconfig {reconfig}: {change} (epoch {epoch})"),
        JobEvent::ReconfigAborted { reconfig, reason } => {
            format!("reconfig-abrt reconfig {reconfig}: {reason}")
        }
        JobEvent::EpochAdvanced { epoch } => format!("epoch-advance epoch {epoch}"),
        JobEvent::StaleFrameFenced { exec, seq, epoch } => {
            format!("fence-stale   seq {seq} (epoch {epoch}) from exec {exec}")
        }
        JobEvent::WalRecovered {
            frames_replayed,
            frames_truncated,
            snapshot_restored,
        } => {
            let tail = if *snapshot_restored {
                " [snapshot fallback]"
            } else {
                ""
            };
            format!(
                "wal-recovered replayed {frames_replayed} frames, truncated \
                 {frames_truncated}{tail}"
            )
        }
        JobEvent::RunAborted { reason } => format!("run-aborted   {reason}"),
        JobEvent::RunStalled { waited_ms } => {
            format!("run-stalled   no progress for {waited_ms} ms")
        }
        JobEvent::PoolQuiesced { in_flight } => {
            format!("pool-quiesced {in_flight} jobs in flight")
        }
        JobEvent::PoolWorkerDetached { worker } => {
            format!("pool-detached worker {worker} leaked past shutdown grace")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, event: JobEvent) -> JournalRecord {
        JournalRecord {
            seq,
            at_us: seq * 10,
            stage: Some(0),
            event,
        }
    }

    fn launched(attempt: AttemptId, relaunch: bool) -> JobEvent {
        JobEvent::TaskLaunched {
            fop: 0,
            index: 0,
            attempt,
            exec: 1,
            relaunch,
            side_bytes_sent: 8,
            side_bytes_saved: 0,
            side_cache_misses: 1,
        }
    }

    fn committed(attempt: AttemptId) -> JobEvent {
        JobEvent::TaskCommitted {
            fop: 0,
            index: 0,
            attempt,
            exec: 1,
            speculative: false,
            bytes_pushed: 64,
            preaggregated: 3,
            cache_hit: true,
        }
    }

    #[test]
    fn task_started_anchors_after_its_launch() {
        // Raw order: launch a1, commit a1, (late-arriving) start a1.
        let records = vec![
            rec(0, launched(1, false)),
            rec(1, committed(1)),
            rec(
                2,
                JobEvent::TaskStarted {
                    fop: 0,
                    index: 0,
                    attempt: 1,
                    exec: 1,
                },
            ),
        ];
        let ej = EventJournal::from_parts(JournalMeta::default(), records);
        let kinds: Vec<&'static str> = ej
            .events()
            .map(|e| match e {
                JobEvent::TaskLaunched { .. } => "launch",
                JobEvent::TaskStarted { .. } => "start",
                JobEvent::TaskCommitted { .. } => "commit",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["launch", "start", "commit"]);
    }

    #[test]
    fn derive_metrics_folds_every_event_kind() {
        let records = vec![
            rec(0, launched(1, false)),
            rec(
                1,
                JobEvent::TaskFailed {
                    fop: 0,
                    index: 0,
                    attempt: 1,
                    exec: 1,
                },
            ),
            rec(2, launched(2, true)),
            rec(3, committed(2)),
            rec(4, JobEvent::ContainerEvicted(1)),
            rec(5, JobEvent::TaskReverted { fop: 0, index: 0 }),
            rec(6, JobEvent::ContainerAdded(2)),
            rec(
                7,
                JobEvent::StageReopened {
                    stage: 0,
                    recompute: true,
                },
            ),
            rec(8, JobEvent::HeartbeatMissed(2)),
            rec(
                9,
                JobEvent::MessageRetransmitted {
                    exec: 2,
                    to_master: true,
                    seq: 4,
                },
            ),
        ];
        let meta = JournalMeta {
            parallelism: vec![1],
            ..JournalMeta::default()
        };
        let m = EventJournal::from_parts(meta, records).derive_metrics();
        assert_eq!(m.original_tasks, 1);
        assert_eq!(m.tasks_launched, 2);
        assert_eq!(m.relaunched_tasks, 1);
        assert_eq!(m.task_failures, 1);
        assert_eq!(m.evictions, 1);
        assert_eq!(m.stage_recomputations, 1);
        assert_eq!(m.heartbeats_missed, 1);
        assert_eq!(m.messages_retransmitted, 1);
        assert_eq!(m.bytes_pushed, 64);
        assert_eq!(m.records_preaggregated, 3);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 2);
        assert_eq!(m.side_bytes_sent, 16);
    }

    #[test]
    fn timeline_elides_times_when_asked() {
        let j = Journal::new();
        j.emit(Some(0), launched(1, false));
        let ej = j.freeze(JournalMeta::default());
        let with = ej.render_timeline(true);
        let without = ej.render_timeline(false);
        assert!(with.contains("us]"));
        assert!(!without.contains("us]"));
        assert!(without.contains("launch"));
        assert!(without.contains("task 0.0 attempt 1 on exec 1"));
    }

    #[test]
    fn chrome_trace_emits_duration_per_attempt() {
        let j = Journal::new();
        j.emit(Some(0), launched(1, false));
        j.emit(
            Some(0),
            JobEvent::TaskStarted {
                fop: 0,
                index: 0,
                attempt: 1,
                exec: 1,
            },
        );
        j.emit(Some(0), committed(1));
        j.emit(Some(0), JobEvent::ContainerEvicted(1));
        let trace = j.freeze(JournalMeta::default()).chrome_trace();
        assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
        assert!(trace.contains("\"ph\":\"X\""), "one slice per attempt");
        assert!(trace.contains("t0.0 a1"));
        assert!(trace.contains("evicted exec 1"));
        assert!(trace.contains("\"ph\":\"i\""), "instant for the eviction");
    }
}
