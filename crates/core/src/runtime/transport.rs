//! Control-plane transport: at-least-once delivery over an adversarial
//! wire.
//!
//! The master↔executor channels stop being perfectly reliable here. Every
//! control message crosses a [`FaultyLink`], which consults a seeded
//! [`NetworkFault`] policy and may drop, duplicate, reorder, or delay the
//! frame — or black-hole it entirely while its executor is partitioned.
//! On top of the lossy link, a [`ReliableSender`]/[`DedupWindow`] pair
//! implements an at-least-once protocol:
//!
//! - the sender stamps each payload with a per-peer monotone sequence
//!   number and keeps it buffered until the peer acknowledges that exact
//!   sequence number;
//! - unacknowledged messages are retransmitted with exponential backoff
//!   plus deterministic jitter (derived from the seed and the sequence
//!   number, so a seeded chaos run replays the same schedule);
//! - the sender caps its in-flight window; excess sends queue in order
//!   behind it, which bounds the receiver's dedup window;
//! - the receiver acknowledges every delivery (including duplicates —
//!   the first ack may have been lost) and suppresses replays through a
//!   sequence-number window.
//!
//! The protocol upgrades the wire to *at-least-once, unordered* delivery.
//! Exactly-once semantics are then restored one layer up: the master's
//! message handlers are idempotent keyed on [`AttemptId`], so even a
//! replay that slips past the dedup window (or a reordering across an
//! eviction) cannot double-commit a task or double-count a retry.
//!
//! [`AttemptId`]: crate::runtime::message::AttemptId

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;

use crate::error::RuntimeError;
use crate::runtime::fault::{FaultInjector, WireSide};
use crate::runtime::journal::{JobEvent, Journal};
use crate::runtime::message::{ExecId, ExecutorMsg, MasterMsg};

/// Per-peer monotone sequence number; the unit of acknowledgement.
pub type Seq = u64;

/// Which way a frame travels; fault probabilities are per-direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Master → executor (task launches, acks of executor reports).
    ToExecutor,
    /// Executor → master (task reports, acks of launches, heartbeats).
    ToMaster,
}

/// Fault probabilities for one direction of the wire. Each transmission
/// draws once; at most one fault applies per frame.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DirectionFaults {
    /// Probability the frame is silently dropped.
    pub drop_prob: f64,
    /// Probability the frame is delivered twice.
    pub dup_prob: f64,
    /// Probability the frame is held briefly so later frames overtake it.
    pub reorder_prob: f64,
    /// Probability the frame is delayed by up to `delay_ms`.
    pub delay_prob: f64,
    /// Maximum injected latency in milliseconds (uniform in `1..=delay_ms`).
    pub delay_ms: u64,
}

/// A timed full partition of one executor: while active, every frame to
/// or from that executor is dropped, in both directions. Heals at
/// `start_ms + duration_ms` after job start; a partition longer than the
/// dead-executor timeout gets the executor declared dead first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// The partitioned executor.
    pub exec: ExecId,
    /// Milliseconds after job start the partition begins.
    pub start_ms: u64,
    /// How long the partition lasts, in milliseconds.
    pub duration_ms: u64,
}

/// Seeded network-fault policy for one job: the chaos harness's network
/// dimension. `Default` is a perfectly quiet network.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkFault {
    /// Seed for every per-transmission fault draw and backoff jitter.
    pub seed: u64,
    /// Faults on master → executor frames.
    pub to_executor: DirectionFaults,
    /// Faults on executor → master frames.
    pub to_master: DirectionFaults,
    /// Timed full partitions of individual executors.
    pub partitions: Vec<PartitionSpec>,
}

/// Shared transport counters, aggregated into
/// [`JobMetrics`](crate::runtime::metrics::JobMetrics) when the job
/// completes. Atomics because executor control threads and the master
/// thread both transmit.
#[derive(Debug, Default)]
pub struct TransportCounters {
    /// Frames the network dropped (including partition black-holes).
    pub dropped: AtomicU64,
    /// Frames the network delivered twice.
    pub duplicated: AtomicU64,
    /// Retransmissions of unacknowledged messages.
    pub retransmitted: AtomicU64,
    /// Received duplicates suppressed by a dedup window.
    pub deduplicated: AtomicU64,
    /// Highest transmission count any single message needed.
    pub max_transmissions: AtomicU64,
}

impl TransportCounters {
    fn note_transmissions(&self, n: u64) {
        self.max_transmissions.fetch_max(n, Ordering::Relaxed);
    }
}

/// The envelope layer: what actually crosses the wire in either
/// direction. `T` is the direction's payload type.
#[derive(Debug, Clone)]
pub enum Wire<T> {
    /// A sequence-numbered payload under the at-least-once protocol.
    Msg {
        /// The executor endpoint of the link (sender toward the master,
        /// receiver away from it).
        from: ExecId,
        /// Sequence number within that link direction.
        seq: Seq,
        /// Reconfiguration epoch the sender held when the payload was
        /// first transmitted. Retransmissions keep the original stamp, so
        /// a frame sent before an epoch advance is still recognizably
        /// stale when it finally lands (see `runtime::reconfig`).
        epoch: u64,
        /// The control message.
        payload: T,
    },
    /// Acknowledges receipt of `seq` on the opposite direction.
    Ack {
        /// The executor endpoint of the link.
        from: ExecId,
        /// The acknowledged sequence number.
        seq: Seq,
    },
    /// Unreliable executor liveness beacon (never retransmitted; the next
    /// one supersedes it).
    Heartbeat {
        /// The executor asserting liveness.
        from: ExecId,
    },
    /// Out-of-band message that bypasses the network entirely: the
    /// resource manager's eviction/failure notices ride here, modeling
    /// the RM's direct channel to the master.
    Direct(T),
}

/// Everything an executor's control thread multiplexes over one inbox.
#[derive(Debug, Clone)]
pub enum ExecIn {
    /// A frame from the master, subject to network faults.
    Net(Wire<ExecutorMsg>),
    /// A finished attempt reported by a local worker slot (in-process,
    /// reliable).
    Out(MasterMsg),
    /// Resource-manager kill: tear down the container. Bypasses the
    /// network, so a partitioned executor can still be destroyed.
    Kill,
}

/// What the fault policy decided for one transmission.
enum Action {
    Deliver,
    Drop,
    Duplicate,
    Hold(Duration),
}

/// The runtime view of a [`NetworkFault`] plan, shared by the master and
/// every executor control thread.
#[derive(Debug)]
pub struct NetPolicy {
    fault: NetworkFault,
    epoch: Instant,
}

impl NetPolicy {
    /// Starts the policy clock; partitions are timed from this instant.
    pub fn new(fault: NetworkFault) -> Arc<Self> {
        Arc::new(NetPolicy {
            fault,
            epoch: Instant::now(),
        })
    }

    /// The fault seed (used for retransmission jitter).
    pub fn seed(&self) -> u64 {
        self.fault.seed
    }

    /// Whether `exec` is inside a partition window at `now`.
    fn partitioned(&self, exec: ExecId, now: Instant) -> bool {
        let ms = now.duration_since(self.epoch).as_millis() as u64;
        self.fault
            .partitions
            .iter()
            .any(|p| p.exec == exec && ms >= p.start_ms && ms < p.start_ms + p.duration_ms)
    }

    /// One independent fault draw for the `ordinal`-th transmission on a
    /// link. Retransmissions of the same message get fresh draws (they
    /// are distinct transmissions), so a retried message always gets
    /// through eventually. The draw keys off `(seed, direction, peer,
    /// transmission ordinal)` only — all causal, backend-invariant
    /// identifiers — via the central [`FaultInjector`].
    fn decide(&self, dir: Direction, exec: ExecId, ordinal: u64) -> Action {
        let f = match dir {
            Direction::ToExecutor => &self.fault.to_executor,
            Direction::ToMaster => &self.fault.to_master,
        };
        let side = match dir {
            Direction::ToExecutor => WireSide::ToExecutor,
            Direction::ToMaster => WireSide::ToMaster,
        };
        let d = FaultInjector::new(self.fault.seed).wire(side, exec as u64, ordinal);
        let u = d.unit();
        if u < f.drop_prob {
            return Action::Drop;
        }
        if u < f.drop_prob + f.dup_prob {
            return Action::Duplicate;
        }
        if u < f.drop_prob + f.dup_prob + f.reorder_prob {
            // Held just long enough for frames sent after it to overtake.
            return Action::Hold(Duration::from_millis(1 + d.span(3)));
        }
        if u < f.drop_prob + f.dup_prob + f.reorder_prob + f.delay_prob {
            return Action::Hold(Duration::from_millis(1 + d.span(f.delay_ms)));
        }
        Action::Deliver
    }
}

/// One direction of the wire to one executor: a channel sender behind the
/// fault policy. Without a policy it is transparent.
#[derive(Debug)]
pub struct FaultyLink<W> {
    tx: Sender<W>,
    peer: ExecId,
    dir: Direction,
    policy: Option<Arc<NetPolicy>>,
    counters: Arc<TransportCounters>,
    /// Transmission ordinal on this link (drives independent fault draws).
    ordinal: u64,
    /// Frames held back by delay/reorder faults, with release deadlines.
    held: Vec<(Instant, W)>,
}

impl<W: Clone> FaultyLink<W> {
    /// Wraps `tx` as the `dir` side of the wire to `peer`.
    pub fn new(
        tx: Sender<W>,
        peer: ExecId,
        dir: Direction,
        policy: Option<Arc<NetPolicy>>,
        counters: Arc<TransportCounters>,
    ) -> Self {
        FaultyLink {
            tx,
            peer,
            dir,
            policy,
            counters,
            ordinal: 0,
            held: Vec::new(),
        }
    }

    /// Transmits one frame, subject to the fault policy. Failures to send
    /// (the peer is gone) are ignored like a lost datagram.
    pub fn send(&mut self, frame: W) {
        let now = Instant::now();
        self.release_due(now);
        let Some(policy) = &self.policy else {
            let _ = self.tx.send(frame);
            return;
        };
        if policy.partitioned(self.peer, now) {
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ordinal = self.ordinal;
        self.ordinal += 1;
        match policy.decide(self.dir, self.peer, ordinal) {
            Action::Deliver => {
                let _ = self.tx.send(frame);
            }
            Action::Drop => {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Action::Duplicate => {
                self.counters.duplicated.fetch_add(1, Ordering::Relaxed);
                let _ = self.tx.send(frame.clone());
                let _ = self.tx.send(frame);
            }
            Action::Hold(d) => {
                self.held.push((now + d, frame));
            }
        }
    }

    /// Releases held frames whose deadline has passed.
    pub fn pump(&mut self) {
        self.release_due(Instant::now());
    }

    /// Releases held frames due at an explicit instant — the master's
    /// path, which passes its [`Clock`](crate::runtime::clock::Clock)
    /// reading so wire timers and scheduling timers share one time
    /// source on every backend.
    pub fn pump_at(&mut self, now: Instant) {
        self.release_due(now);
    }

    fn release_due(&mut self, now: Instant) {
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= now {
                let (_, frame) = self.held.swap_remove(i);
                let _ = self.tx.send(frame);
            } else {
                i += 1;
            }
        }
    }

    /// Earliest deadline of a held frame, if any (for pump scheduling).
    pub fn next_deadline(&self) -> Option<Instant> {
        self.held.iter().map(|(t, _)| *t).min()
    }
}

/// Sender-side state of one message under the reliability protocol.
#[derive(Debug)]
struct Pending<T> {
    payload: T,
    /// Epoch stamped on the first transmission; retransmissions reuse it.
    epoch: u64,
    transmissions: u64,
    next_at: Instant,
    backoff: Duration,
}

/// The at-least-once sending endpoint of one link direction: sequence
/// numbering, ack bookkeeping, retransmission with exponential backoff
/// and deterministic jitter, and an in-flight cap with an ordered
/// backlog behind it.
#[derive(Debug)]
pub struct ReliableSender<T, W> {
    peer: ExecId,
    wrap: fn(ExecId, Seq, u64, T) -> W,
    link: FaultyLink<W>,
    next_seq: Seq,
    cap: usize,
    base: Duration,
    max: Duration,
    seed: u64,
    /// Shared reconfiguration epoch; every first transmission stamps the
    /// cell's current value onto its envelope.
    epoch: Arc<AtomicU64>,
    unacked: BTreeMap<Seq, Pending<T>>,
    backlog: VecDeque<T>,
    counters: Arc<TransportCounters>,
    /// The job's execution journal plus this endpoint's direction
    /// (`to_master`); when set, every retransmission is logged so the
    /// invariant checker can bound per-message retries.
    journal: Option<(Journal, bool)>,
}

impl<T: Clone, W: Clone> ReliableSender<T, W> {
    /// Creates the endpoint. `wrap` builds the wire frame for a stamped
    /// payload; `cap` bounds in-flight messages (and therefore the peer's
    /// dedup window occupancy); `base`/`max` bound the backoff schedule.
    pub fn new(
        link: FaultyLink<W>,
        peer: ExecId,
        wrap: fn(ExecId, Seq, u64, T) -> W,
        cap: usize,
        base: Duration,
        max: Duration,
        seed: u64,
    ) -> Self {
        let counters = Arc::clone(&link.counters);
        ReliableSender {
            peer,
            wrap,
            link,
            next_seq: 1,
            cap: cap.max(1),
            base: base.max(Duration::from_millis(1)),
            max,
            seed,
            epoch: Arc::new(AtomicU64::new(0)),
            unacked: BTreeMap::new(),
            backlog: VecDeque::new(),
            counters,
            journal: None,
        }
    }

    /// Shares the reconfiguration epoch cell with this endpoint. All
    /// endpoints of one process share one cell; the master advances it at
    /// reconfiguration commit and executors follow the envelopes.
    #[must_use]
    pub fn with_epoch(mut self, epoch: Arc<AtomicU64>) -> Self {
        self.epoch = epoch;
        self
    }

    /// Attaches the job's execution journal: each retransmission emits a
    /// [`JobEvent::MessageRetransmitted`] record. `to_master` marks the
    /// executor→master direction.
    #[must_use]
    pub fn with_journal(mut self, journal: Journal, to_master: bool) -> Self {
        self.journal = Some((journal, to_master));
        self
    }

    /// Sends a payload reliably: transmits now if an in-flight slot is
    /// free, otherwise queues it in order behind the window.
    pub fn send(&mut self, payload: T) {
        if self.unacked.len() >= self.cap {
            self.backlog.push_back(payload);
            return;
        }
        self.transmit(payload);
    }

    fn transmit(&mut self, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let epoch = self.epoch.load(Ordering::Relaxed);
        let frame = (self.wrap)(self.peer, seq, epoch, payload.clone());
        self.link.send(frame);
        self.counters.note_transmissions(1);
        let backoff = self.base + self.jitter(seq, 1);
        self.unacked.insert(
            seq,
            Pending {
                payload,
                epoch,
                transmissions: 1,
                next_at: Instant::now() + backoff,
                backoff,
            },
        );
    }

    /// Deterministic jitter: up to half the base backoff, derived from
    /// the seed, the sequence number, and the transmission count, so
    /// retransmission storms de-synchronize identically on every replay.
    fn jitter(&self, seq: Seq, transmissions: u64) -> Duration {
        let base_ms = self.base.as_millis() as u64;
        // Keyed by the envelope's causal sequence number and its
        // per-message transmission count — never a link-global counter —
        // so jitter replays identically on both backends.
        let d = FaultInjector::new(self.seed).retransmit_jitter(seq, transmissions);
        Duration::from_millis(d.index(base_ms / 2 + 1))
    }

    /// Processes an acknowledgement, freeing its in-flight slot and
    /// transmitting from the backlog into the freed window.
    pub fn on_ack(&mut self, seq: Seq) {
        if self.unacked.remove(&seq).is_none() {
            return; // Duplicate ack.
        }
        while self.unacked.len() < self.cap {
            let Some(next) = self.backlog.pop_front() else {
                break;
            };
            self.transmit(next);
        }
    }

    /// Retransmits every message whose backoff deadline has passed and
    /// releases link-held frames.
    ///
    /// A due sequence number vanishing from the unacked window mid-pump
    /// is a transport bookkeeping bug: it surfaces as a positioned
    /// [`RuntimeError::Invariant`] that fails the job, instead of a
    /// panic poisoning the pumping thread.
    pub fn pump(&mut self, now: Instant) -> Result<(), RuntimeError> {
        let due: Vec<Seq> = self
            .unacked
            .iter()
            .filter(|(_, p)| p.next_at <= now)
            .map(|(&s, _)| s)
            .collect();
        for seq in due {
            let (frame, transmissions, backoff) = {
                let p = self.unacked.get_mut(&seq).ok_or_else(|| {
                    RuntimeError::Invariant(format!(
                        "transport pump: due seq {seq} missing from the unacked \
                         window of the link to exec {} while collecting its frame",
                        self.peer
                    ))
                })?;
                p.transmissions += 1;
                p.backoff = (p.backoff * 2).min(self.max);
                (
                    (self.wrap)(self.peer, seq, p.epoch, p.payload.clone()),
                    p.transmissions,
                    p.backoff,
                )
            };
            let delay = backoff + self.jitter(seq, transmissions);
            self.unacked
                .get_mut(&seq)
                .ok_or_else(|| {
                    RuntimeError::Invariant(format!(
                        "transport pump: due seq {seq} missing from the unacked \
                         window of the link to exec {} while rescheduling its \
                         backoff",
                        self.peer
                    ))
                })?
                .next_at = now + delay;
            self.counters.retransmitted.fetch_add(1, Ordering::Relaxed);
            self.counters.note_transmissions(transmissions);
            if let Some((journal, to_master)) = &self.journal {
                journal.emit(
                    None,
                    JobEvent::MessageRetransmitted {
                        exec: self.peer,
                        to_master: *to_master,
                        seq,
                    },
                );
            }
            self.link.send(frame);
        }
        // Share the caller's time source instead of re-reading the wall
        // clock: under a manual test clock the two readings would
        // otherwise disagree and release held frames out of timer order.
        self.link.pump_at(now);
        Ok(())
    }

    /// Direct access to the underlying link, e.g. to send unreliable
    /// frames (acks, heartbeats) on the same wire.
    pub fn link(&mut self) -> &mut FaultyLink<W> {
        &mut self.link
    }

    /// Earliest instant at which `pump` has work: the soonest retransmit
    /// deadline or link-held frame release.
    pub fn next_deadline(&self) -> Option<Instant> {
        let retransmit = self.unacked.values().map(|p| p.next_at).min();
        match (retransmit, self.link.next_deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Messages currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }
}

/// Receiver-side duplicate suppression: a sequence-number window.
///
/// `floor` is the lowest sequence number not yet known-delivered; every
/// seq below it was delivered (or force-skipped on overflow). The set
/// holds delivered seqs at or above the floor. The sender's in-flight
/// cap keeps the set no larger than the window, so the defensive trim
/// below never fires under a validated configuration.
#[derive(Debug)]
pub struct DedupWindow {
    floor: Seq,
    seen: BTreeSet<Seq>,
    window: usize,
}

impl DedupWindow {
    /// A window admitting at most `window` out-of-order seqs.
    pub fn new(window: usize) -> Self {
        DedupWindow {
            floor: 1,
            seen: BTreeSet::new(),
            window: window.max(1),
        }
    }

    /// Whether `seq` is a first delivery. Records it as seen either way;
    /// callers must acknowledge even stale deliveries (the first ack may
    /// have been lost).
    pub fn fresh(&mut self, seq: Seq) -> bool {
        if seq < self.floor || self.seen.contains(&seq) {
            return false;
        }
        self.seen.insert(seq);
        while self.seen.remove(&self.floor) {
            self.floor += 1;
        }
        // Defensive bound: a mis-configured sender overrunning the window
        // costs dedup coverage (idempotent handlers absorb the replays),
        // never unbounded memory.
        while self.seen.len() > self.window {
            if let Some(&lo) = self.seen.iter().next() {
                self.seen.remove(&lo);
                self.floor = self.floor.max(lo + 1);
            }
        }
        true
    }
}

/// splitmix64 finalizer, now owned by the central fault module (kept
/// re-exported here for the transport-seed-derivation call sites).
pub(crate) use crate::runtime::fault::mix64;

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn wrap(from: ExecId, seq: Seq, epoch: u64, payload: u32) -> Wire<u32> {
        Wire::Msg {
            from,
            seq,
            epoch,
            payload,
        }
    }

    fn reliable(
        tx: Sender<Wire<u32>>,
        policy: Option<Arc<NetPolicy>>,
        cap: usize,
    ) -> ReliableSender<u32, Wire<u32>> {
        let counters = Arc::new(TransportCounters::default());
        let link = FaultyLink::new(tx, 0, Direction::ToMaster, policy, counters);
        ReliableSender::new(
            link,
            0,
            wrap,
            cap,
            Duration::from_millis(5),
            Duration::from_millis(40),
            7,
        )
    }

    fn payloads(rx: &crossbeam::channel::Receiver<Wire<u32>>) -> Vec<(Seq, u32)> {
        let mut out = Vec::new();
        while let Some(f) = rx.try_recv() {
            if let Wire::Msg { seq, payload, .. } = f {
                out.push((seq, payload));
            }
        }
        out
    }

    #[test]
    fn dedup_window_suppresses_replays_and_advances() {
        let mut w = DedupWindow::new(16);
        assert!(w.fresh(1));
        assert!(!w.fresh(1), "replay suppressed");
        assert!(w.fresh(3), "out-of-order delivery is fresh");
        assert!(w.fresh(2));
        assert!(!w.fresh(2));
        assert!(!w.fresh(1));
        assert_eq!(w.floor, 4, "contiguous prefix collapsed");
        assert!(w.seen.is_empty());
    }

    #[test]
    fn dedup_window_overflow_stays_bounded() {
        let mut w = DedupWindow::new(4);
        // Seqs 2..=10 without 1: the set can never collapse to the floor.
        for s in 2..=10 {
            assert!(w.fresh(s));
        }
        assert!(w.seen.len() <= 4);
        // Seq 1 fell below the force-advanced floor: treated as stale.
        assert!(!w.fresh(1));
    }

    #[test]
    fn reliable_sender_retransmits_until_acked() {
        let (tx, rx) = unbounded();
        let mut s = reliable(tx, None, 8);
        s.send(42);
        assert_eq!(payloads(&rx), vec![(1, 42)]);
        // Past the backoff deadline: the unacked message goes out again.
        std::thread::sleep(Duration::from_millis(12));
        s.pump(Instant::now()).unwrap();
        assert_eq!(payloads(&rx), vec![(1, 42)], "retransmission");
        s.on_ack(1);
        std::thread::sleep(Duration::from_millis(60));
        s.pump(Instant::now()).unwrap();
        assert!(payloads(&rx).is_empty(), "acked: no more retransmissions");
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn retransmissions_keep_the_original_epoch_stamp() {
        let (tx, rx) = unbounded();
        let epoch = Arc::new(AtomicU64::new(0));
        let mut s = reliable(tx, None, 8).with_epoch(Arc::clone(&epoch));
        s.send(1);
        epoch.store(3, Ordering::Relaxed);
        s.send(2);
        let stamps = |rx: &crossbeam::channel::Receiver<Wire<u32>>| {
            let mut out = Vec::new();
            while let Some(f) = rx.try_recv() {
                if let Wire::Msg { epoch, payload, .. } = f {
                    out.push((payload, epoch));
                }
            }
            out
        };
        assert_eq!(stamps(&rx), vec![(1, 0), (2, 3)], "first transmissions");
        std::thread::sleep(Duration::from_millis(12));
        s.pump(Instant::now()).unwrap();
        // Payload 1 was first sent under epoch 0: its retransmission must
        // still say so, or a fenced receiver could mistake it for fresh.
        let retx = stamps(&rx);
        assert!(retx.contains(&(1, 0)), "stale stamp preserved: {retx:?}");
        assert!(!retx.contains(&(1, 3)));
    }

    #[test]
    fn in_flight_cap_queues_and_drains_in_order() {
        let (tx, rx) = unbounded();
        let mut s = reliable(tx, None, 2);
        for v in [10, 11, 12, 13] {
            s.send(v);
        }
        assert_eq!(payloads(&rx), vec![(1, 10), (2, 11)], "cap holds at 2");
        assert_eq!(s.in_flight(), 2);
        s.on_ack(1);
        assert_eq!(payloads(&rx), vec![(3, 12)], "ack admits the backlog head");
        s.on_ack(2);
        s.on_ack(3);
        assert_eq!(payloads(&rx), vec![(4, 13)]);
    }

    #[test]
    fn duplicate_acks_are_harmless() {
        let (tx, _rx) = unbounded();
        let mut s = reliable(tx, None, 4);
        s.send(1);
        s.on_ack(1);
        s.on_ack(1);
        s.on_ack(99);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn dropping_link_loses_frames_but_retransmission_recovers() {
        let policy = NetPolicy::new(NetworkFault {
            seed: 3,
            to_master: DirectionFaults {
                drop_prob: 1.0,
                ..Default::default()
            },
            ..Default::default()
        });
        let (tx, rx) = unbounded();
        let counters = Arc::new(TransportCounters::default());
        let mut link = FaultyLink::new(tx, 0, Direction::ToMaster, Some(policy), counters);
        link.send(Wire::Msg {
            from: 0,
            seq: 1,
            epoch: 0,
            payload: 5u32,
        });
        assert!(rx.try_recv().is_none(), "always-drop link delivers nothing");
        assert_eq!(link.counters.dropped.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn partition_black_holes_then_heals() {
        let policy = NetPolicy::new(NetworkFault {
            seed: 1,
            partitions: vec![PartitionSpec {
                exec: 4,
                start_ms: 0,
                duration_ms: 30,
            }],
            ..Default::default()
        });
        let (tx, rx) = unbounded::<Wire<u32>>();
        let counters = Arc::new(TransportCounters::default());
        let mut link = FaultyLink::new(tx, 4, Direction::ToExecutor, Some(policy), counters);
        link.send(Wire::Heartbeat { from: 4 });
        assert!(rx.try_recv().is_none(), "partitioned: dropped");
        std::thread::sleep(Duration::from_millis(40));
        link.send(Wire::Heartbeat { from: 4 });
        assert!(rx.try_recv().is_some(), "healed: delivered");
    }

    #[test]
    fn delayed_frames_release_on_pump() {
        let policy = NetPolicy::new(NetworkFault {
            seed: 9,
            to_master: DirectionFaults {
                delay_prob: 1.0,
                delay_ms: 10,
                ..Default::default()
            },
            ..Default::default()
        });
        let (tx, rx) = unbounded::<Wire<u32>>();
        let counters = Arc::new(TransportCounters::default());
        let mut link = FaultyLink::new(tx, 2, Direction::ToMaster, Some(policy), counters);
        link.send(Wire::Heartbeat { from: 2 });
        assert!(rx.try_recv().is_none(), "held");
        assert!(link.next_deadline().is_some());
        std::thread::sleep(Duration::from_millis(12));
        link.pump();
        assert!(rx.try_recv().is_some(), "released after its deadline");
    }
}
