//! The Pado master: container manager, task scheduler, eviction and fault
//! tolerance (§3.2.1, §3.2.3, §3.2.5, §3.2.6).
//!
//! The master executes the stage DAG stage-by-stage in topological order.
//! When a stage becomes runnable it first *assigns* the stage's
//! reserved-side tasks to reserved executors (so transient tasks know their
//! push destinations), then launches tasks as their inputs become
//! available. A transient task's completed output is immediately pushed to
//! the reserved executors hosting its consumer tasks and committed —
//! recorded in the master's location table — so it escapes the threat of
//! evictions.
//!
//! On a transient container eviction, only the evicted executor's
//! uncommitted work is relaunched: running attempts and any outputs whose
//! sole location was the evicted container. Committed stage outputs on
//! reserved executors are never recomputed. On a (rare) reserved executor
//! failure, the master pauses descendant stages, walks ancestor stages in
//! topological order, and relaunches exactly the tasks whose preserved
//! outputs were lost.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};
use pado_dag::{DepType, Value};

use crate::compiler::{FopId, InputSlot, Placement, PlanEdge};
use crate::error::RuntimeError;
use crate::exec::route;
use crate::runtime::cache::CacheKey;
use crate::runtime::executor::{combine_consumer, ExecutorHandle, JobContext};
use crate::runtime::message::{AttemptId, ExecId, MasterMsg, SideData, TaskSpec};
use crate::runtime::metrics::JobMetrics;
use crate::runtime::policy::{Candidate, RoundRobinCacheAware, SchedulingPolicy, TaskToPlace};

/// Scheduled faults injected deterministically while a job runs.
///
/// Thresholds count *processed task completions*: `(n, k)` fires when the
/// master has handled `n` valid task completions, targeting the `k`-th
/// alive executor of the relevant kind (in id order).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Transient container evictions.
    pub evictions: Vec<(usize, usize)>,
    /// Reserved executor machine failures.
    pub reserved_failures: Vec<(usize, usize)>,
    /// Simulate a master crash/restart after this many completions,
    /// resuming from the last progress snapshot.
    pub master_failure_after: Option<usize>,
}

/// One entry of the master's execution event log — the progress record a
/// deployment would surface in a UI and replicate for master fault
/// tolerance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    /// A task attempt was sent to an executor.
    TaskLaunched {
        /// Fused operator.
        fop: FopId,
        /// Task index.
        index: usize,
        /// Executor chosen.
        exec: ExecId,
        /// Whether this is a relaunch (not the first attempt).
        relaunch: bool,
    },
    /// A task's output was pushed and committed.
    TaskCommitted {
        /// Fused operator.
        fop: FopId,
        /// Task index.
        index: usize,
    },
    /// A Pado Stage finished (all its tasks committed).
    StageCompleted(usize),
    /// A completed stage re-opened (a reserved failure destroyed its
    /// preserved outputs).
    StageReopened(usize),
    /// A transient container was evicted.
    ContainerEvicted(ExecId),
    /// A reserved executor failed.
    ReservedFailed(ExecId),
    /// A replacement container was provisioned.
    ContainerAdded(ExecId),
    /// The master restarted from its replicated progress snapshot.
    MasterRecovered,
}

/// The result of a completed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Output records per terminal operator (keyed by operator name),
    /// concatenated in task-index order.
    pub outputs: BTreeMap<String, Vec<Value>>,
    /// Execution counters.
    pub metrics: JobMetrics,
    /// The ordered execution event log.
    pub events: Vec<JobEvent>,
}

#[derive(Debug, Clone)]
enum TaskState {
    Pending,
    Running { attempt: AttemptId, exec: ExecId },
    Done { locations: Vec<ExecId> },
}

#[derive(Debug)]
struct ExecInfo {
    handle: ExecutorHandle,
    alive: bool,
    busy: usize,
    cached: HashSet<CacheKey>,
}

/// Progress metadata replicated for master fault tolerance (§3.2.6): the
/// record of finished tasks and where their outputs live. Intermediate
/// records themselves live on executors; the in-process stand-in keeps
/// them alongside via shared `Arc`s.
#[derive(Debug, Clone)]
struct ProgressSnapshot {
    tasks: Vec<Vec<TaskState>>,
    outputs: HashMap<(FopId, usize), Arc<Vec<Value>>>,
    result_parts: BTreeMap<(FopId, usize), Vec<Value>>,
    first_attempted: Vec<Vec<bool>>,
    next_attempt: AttemptId,
    metrics: JobMetrics,
}

/// The master event loop for one job.
pub struct Master {
    job: Arc<JobContext>,
    tx: Sender<MasterMsg>,
    rx: Receiver<MasterMsg>,
    executors: BTreeMap<ExecId, ExecInfo>,
    next_exec_id: ExecId,
    policy: Box<dyn SchedulingPolicy>,

    tasks: Vec<Vec<TaskState>>,
    first_attempted: Vec<Vec<bool>>,
    outputs: HashMap<(FopId, usize), Arc<Vec<Value>>>,
    result_parts: BTreeMap<(FopId, usize), Vec<Value>>,
    assigned: HashMap<(FopId, usize), ExecId>,
    attempt_of: HashMap<AttemptId, (FopId, usize)>,
    next_attempt: AttemptId,

    metrics: JobMetrics,
    events: Vec<JobEvent>,
    stage_completed: Vec<bool>,
    done_events: usize,
    faults: FaultPlan,
    fault_cursor_evict: usize,
    fault_cursor_fail: usize,
    master_failed: bool,
    snapshot: Option<ProgressSnapshot>,
}

impl Master {
    /// Creates a master and spawns the initial containers.
    pub fn new(
        job: Arc<JobContext>,
        n_transient: usize,
        n_reserved: usize,
        faults: FaultPlan,
    ) -> Self {
        let (tx, rx) = crossbeam::channel::unbounded();
        let n_fops = job.plan.fops.len();
        let tasks = (0..n_fops)
            .map(|f| vec![TaskState::Pending; job.plan.fops[f].parallelism])
            .collect::<Vec<_>>();
        let first_attempted = (0..n_fops)
            .map(|f| vec![false; job.plan.fops[f].parallelism])
            .collect();
        let n_stages = job.plan.stage_dag.stages.len();
        let mut master = Master {
            job,
            tx,
            rx,
            executors: BTreeMap::new(),
            next_exec_id: 0,
            policy: Box::new(RoundRobinCacheAware::default()),
            tasks,
            first_attempted,
            outputs: HashMap::new(),
            result_parts: BTreeMap::new(),
            assigned: HashMap::new(),
            attempt_of: HashMap::new(),
            next_attempt: 1,
            metrics: JobMetrics::default(),
            events: Vec::new(),
            stage_completed: vec![false; n_stages],
            done_events: 0,
            faults,
            fault_cursor_evict: 0,
            fault_cursor_fail: 0,
            master_failed: false,
            snapshot: None,
        };
        master.metrics.original_tasks = master.job.plan.total_tasks();
        for _ in 0..n_reserved {
            master.spawn_executor(Placement::Reserved);
        }
        for _ in 0..n_transient {
            master.spawn_executor(Placement::Transient);
        }
        master
    }

    /// A sender evictions and failures can be injected through externally.
    pub fn injector(&self) -> Sender<MasterMsg> {
        self.tx.clone()
    }

    /// Replaces the task scheduling policy (§3.2.3's pluggable policy).
    pub fn set_policy(&mut self, policy: Box<dyn SchedulingPolicy>) {
        self.policy = policy;
    }

    fn spawn_executor(&mut self, kind: Placement) -> ExecId {
        let id = self.next_exec_id;
        self.next_exec_id += 1;
        let handle = ExecutorHandle::spawn(id, kind, Arc::clone(&self.job), self.tx.clone());
        self.executors.insert(
            id,
            ExecInfo {
                handle,
                alive: true,
                busy: 0,
                cached: HashSet::new(),
            },
        );
        id
    }

    /// Runs the job to completion.
    ///
    /// # Errors
    ///
    /// Fails if no event arrives within the configured timeout (a wedged
    /// job) or if every executor of a required kind is gone.
    pub fn run(mut self) -> Result<JobResult, RuntimeError> {
        self.schedule();
        while !self.complete() {
            let msg = self
                .rx
                .recv_timeout(Duration::from_millis(self.job.config.event_timeout_ms))
                .map_err(|_| RuntimeError::Aborted("no progress within timeout".into()))?;
            self.handle(msg);
            self.note_stage_transitions();
            self.schedule();
        }
        let result = self.collect_result();
        self.shutdown();
        Ok(result)
    }

    fn complete(&self) -> bool {
        (0..self.job.plan.stage_dag.stages.len()).all(|s| self.stage_complete(s))
    }

    fn stage_complete(&self, stage: usize) -> bool {
        self.job.plan.stage_fops(stage).iter().all(|&f| {
            self.tasks[f]
                .iter()
                .all(|t| matches!(t, TaskState::Done { .. }))
        })
    }

    fn stage_runnable(&self, stage: usize) -> bool {
        !self.stage_complete(stage)
            && self.job.plan.stage_dag.stages[stage]
                .parents
                .iter()
                .all(|&p| self.stage_complete(p))
    }

    /// Emits `StageCompleted` / `StageReopened` events on transitions.
    fn note_stage_transitions(&mut self) {
        for stage in 0..self.stage_completed.len() {
            let now = self.stage_complete(stage);
            if now != self.stage_completed[stage] {
                self.events.push(if now {
                    JobEvent::StageCompleted(stage)
                } else {
                    JobEvent::StageReopened(stage)
                });
                self.stage_completed[stage] = now;
            }
        }
    }

    fn handle(&mut self, msg: MasterMsg) {
        match msg {
            MasterMsg::TaskDone {
                exec,
                attempt,
                output,
                preaggregated,
                cache_hit,
                cached_keys,
            } => self.on_task_done(exec, attempt, output, preaggregated, cache_hit, cached_keys),
            MasterMsg::Evict { exec } => self.on_executor_lost(exec, false),
            MasterMsg::FailReserved { exec } => self.on_executor_lost(exec, true),
        }
    }

    fn on_task_done(
        &mut self,
        exec: ExecId,
        attempt: AttemptId,
        output: Vec<Value>,
        preaggregated: usize,
        cache_hit: bool,
        cached_keys: Vec<CacheKey>,
    ) {
        // Refresh the container manager's view of the executor cache.
        if let Some(info) = self.executors.get_mut(&exec) {
            if info.alive {
                info.cached = cached_keys.into_iter().collect();
                info.busy = info.busy.saturating_sub(1);
            }
        }
        // The commit protocol: an output is processed exactly once, and
        // only for the attempt the master considers current (a stale
        // attempt from an evicted container is discarded).
        let Some(&(fop, index)) = self.attempt_of.get(&attempt) else {
            return;
        };
        let valid = matches!(
            self.tasks[fop][index],
            TaskState::Running { attempt: a, .. } if a == attempt
        );
        if !valid {
            return;
        }
        self.attempt_of.remove(&attempt);
        if cache_hit {
            self.metrics.cache_hits += 1;
        }
        self.metrics.records_preaggregated += preaggregated;

        let locations = self.commit_locations(fop, exec, &output);
        let bytes: usize = output.iter().map(Value::size_bytes).sum();
        if self.job.plan.fops[fop].placement == Placement::Transient
            && locations.iter().any(|l| l != &exec)
        {
            self.metrics.bytes_pushed += bytes;
        }
        if self.job.plan.out_edges(fop).is_empty() {
            // Terminal operator: the output is written to the job sink and
            // is safe regardless of container fate.
            self.result_parts.insert((fop, index), output.clone());
        }
        self.outputs.insert((fop, index), Arc::new(output));
        self.tasks[fop][index] = TaskState::Done { locations };
        self.events.push(JobEvent::TaskCommitted { fop, index });

        self.done_events += 1;
        if self.job.config.snapshot_every > 0
            && self
                .done_events
                .is_multiple_of(self.job.config.snapshot_every)
        {
            self.take_snapshot();
        }
        self.fire_due_faults();
    }

    /// Where a completed task's output now lives: reserved anchors keep it
    /// locally; transient tasks push it to the reserved executors assigned
    /// to their consumer tasks (escaping evictions); transient tasks with
    /// only transient consumers keep it locally, still at risk.
    fn commit_locations(&self, fop: FopId, exec: ExecId, _output: &[Value]) -> Vec<ExecId> {
        if self.job.plan.fops[fop].placement == Placement::Reserved {
            return vec![exec];
        }
        let mut dests: Vec<ExecId> = Vec::new();
        for e in self.job.plan.out_edges(fop) {
            let dst = &self.job.plan.fops[e.dst];
            if dst.placement != Placement::Reserved {
                continue;
            }
            for di in 0..dst.parallelism {
                if let Some(&d) = self.assigned.get(&(e.dst, di)) {
                    if !dests.contains(&d) {
                        dests.push(d);
                    }
                }
            }
        }
        if dests.is_empty() {
            vec![exec]
        } else {
            dests
        }
    }

    fn fire_due_faults(&mut self) {
        while self.fault_cursor_evict < self.faults.evictions.len()
            && self.faults.evictions[self.fault_cursor_evict].0 <= self.done_events
        {
            let (_, k) = self.faults.evictions[self.fault_cursor_evict];
            self.fault_cursor_evict += 1;
            if let Some(victim) = self.nth_alive(Placement::Transient, k) {
                self.on_executor_lost(victim, false);
            }
        }
        while self.fault_cursor_fail < self.faults.reserved_failures.len()
            && self.faults.reserved_failures[self.fault_cursor_fail].0 <= self.done_events
        {
            let (_, k) = self.faults.reserved_failures[self.fault_cursor_fail];
            self.fault_cursor_fail += 1;
            if let Some(victim) = self.nth_alive(Placement::Reserved, k) {
                self.on_executor_lost(victim, true);
            }
        }
        if let Some(n) = self.faults.master_failure_after {
            if !self.master_failed && self.done_events >= n {
                self.master_failed = true;
                self.simulate_master_failure();
            }
        }
    }

    fn nth_alive(&self, kind: Placement, k: usize) -> Option<ExecId> {
        let alive: Vec<ExecId> = self
            .executors
            .iter()
            .filter(|(_, e)| e.alive && e.handle.kind == kind)
            .map(|(&id, _)| id)
            .collect();
        if alive.is_empty() {
            None
        } else {
            Some(alive[k % alive.len()])
        }
    }

    /// Handles the loss of a container: eviction (transient) or machine
    /// failure (reserved). Uncommitted attempts revert to pending; outputs
    /// whose only location died are reverted, which for reserved failures
    /// re-opens completed ancestor stages exactly as §3.2.6 prescribes.
    fn on_executor_lost(&mut self, exec: ExecId, reserved_failure: bool) {
        let Some(info) = self.executors.get_mut(&exec) else {
            return;
        };
        if !info.alive {
            return;
        }
        info.alive = false;
        info.cached.clear();
        info.handle.stop();
        let kind = info.handle.kind;
        if reserved_failure {
            self.metrics.reserved_failures += 1;
            self.events.push(JobEvent::ReservedFailed(exec));
        } else {
            self.metrics.evictions += 1;
            self.events.push(JobEvent::ContainerEvicted(exec));
        }

        let complete_before: Vec<bool> = (0..self.job.plan.stage_dag.stages.len())
            .map(|s| self.stage_complete(s))
            .collect();

        // Revert running attempts scheduled on the lost executor.
        for f in 0..self.tasks.len() {
            for i in 0..self.tasks[f].len() {
                if let TaskState::Running { attempt, exec: e } = self.tasks[f][i] {
                    if e == exec {
                        self.attempt_of.remove(&attempt);
                        self.tasks[f][i] = TaskState::Pending;
                    }
                }
            }
        }
        // Destroy data whose only copy lived on the lost executor.
        for f in 0..self.tasks.len() {
            for i in 0..self.tasks[f].len() {
                let lost = if let TaskState::Done { locations } = &mut self.tasks[f][i] {
                    locations.retain(|&l| l != exec);
                    locations.is_empty() && !self.result_parts.contains_key(&(f, i))
                } else {
                    false
                };
                if lost {
                    self.outputs.remove(&(f, i));
                    self.tasks[f][i] = TaskState::Pending;
                }
            }
        }
        // Invalidate receiver assignments pointing at the lost executor.
        self.assigned.retain(|_, &mut e| e != exec);

        // Count completed stages that re-opened (reserved-failure
        // recomputation, §3.2.6).
        for (s, was_complete) in complete_before.iter().enumerate() {
            if *was_complete && !self.stage_complete(s) {
                self.metrics.stage_recomputations += 1;
            }
        }

        // The resource manager immediately provides a replacement.
        let replacement = self.spawn_executor(kind);
        self.events.push(JobEvent::ContainerAdded(replacement));
    }

    /// Simulates a master crash: all in-memory progress is lost and the
    /// replacement master resumes from the replicated snapshot.
    fn simulate_master_failure(&mut self) {
        self.events.push(JobEvent::MasterRecovered);
        let snap = self.snapshot.clone().unwrap_or_else(|| ProgressSnapshot {
            tasks: self
                .tasks
                .iter()
                .map(|ts| vec![TaskState::Pending; ts.len()])
                .collect(),
            outputs: HashMap::new(),
            result_parts: BTreeMap::new(),
            first_attempted: self
                .first_attempted
                .iter()
                .map(|ts| vec![false; ts.len()])
                .collect(),
            next_attempt: self.next_attempt,
            metrics: self.metrics.clone(),
        });
        self.tasks = snap.tasks;
        self.outputs = snap.outputs;
        self.result_parts = snap.result_parts;
        self.first_attempted = snap.first_attempted;
        self.metrics = snap.metrics;
        // Fence all attempts issued by the failed master.
        self.next_attempt = snap.next_attempt.max(self.next_attempt) + 1_000_000;
        self.attempt_of.clear();
        self.assigned.clear();
        for info in self.executors.values_mut() {
            if info.alive {
                info.busy = 0;
            }
        }
        // Reconcile the restored metadata with the resource manager's view
        // of which containers are still alive: data on since-evicted
        // containers is gone.
        let alive: HashSet<ExecId> = self
            .executors
            .iter()
            .filter(|(_, e)| e.alive)
            .map(|(&id, _)| id)
            .collect();
        for f in 0..self.tasks.len() {
            for i in 0..self.tasks[f].len() {
                let lost = if let TaskState::Done { locations } = &mut self.tasks[f][i] {
                    locations.retain(|l| alive.contains(l));
                    locations.is_empty() && !self.result_parts.contains_key(&(f, i))
                } else {
                    false
                };
                if lost {
                    self.outputs.remove(&(f, i));
                    self.tasks[f][i] = TaskState::Pending;
                }
            }
        }
    }

    fn take_snapshot(&mut self) {
        // Running attempts are not part of progress metadata: a restarted
        // master re-launches them.
        let tasks = self
            .tasks
            .iter()
            .map(|ts| {
                ts.iter()
                    .map(|t| match t {
                        TaskState::Done { locations } => TaskState::Done {
                            locations: locations.clone(),
                        },
                        _ => TaskState::Pending,
                    })
                    .collect()
            })
            .collect();
        self.snapshot = Some(ProgressSnapshot {
            tasks,
            outputs: self.outputs.clone(),
            result_parts: self.result_parts.clone(),
            first_attempted: self.first_attempted.clone(),
            next_attempt: self.next_attempt,
            metrics: self.metrics.clone(),
        });
    }

    /// One scheduling pass: over every runnable stage, assign reserved
    /// receivers first, then launch every ready pending task with the
    /// round-robin, cache-aware policy.
    fn schedule(&mut self) {
        for stage in self.job.plan.stage_dag.topo_order() {
            if !self.stage_runnable(stage) {
                continue;
            }
            self.assign_receivers(stage);
            // Reserved receivers launch as soon as their inputs are ready;
            // transient tasks fill free slots round-robin.
            let fops = self.job.plan.stage_fops(stage);
            let mut ordered: Vec<FopId> = fops
                .iter()
                .copied()
                .filter(|&f| self.job.plan.fops[f].placement == Placement::Reserved)
                .collect();
            ordered.extend(
                fops.iter()
                    .copied()
                    .filter(|&f| self.job.plan.fops[f].placement == Placement::Transient),
            );
            for f in ordered {
                for i in 0..self.tasks[f].len() {
                    if matches!(self.tasks[f][i], TaskState::Pending) && self.task_ready(f, i) {
                        self.launch(f, i);
                    }
                }
            }
        }
    }

    /// Pre-assigns each reserved task of the stage to a reserved executor
    /// so transient producers know their push destinations (§3.2.3: "the
    /// task scheduler first schedules and sets up the tasks placed on
    /// reserved executors").
    fn assign_receivers(&mut self, stage: usize) {
        let reserved: Vec<ExecId> = self
            .executors
            .iter()
            .filter(|(_, e)| e.alive && e.handle.kind == Placement::Reserved)
            .map(|(&id, _)| id)
            .collect();
        if reserved.is_empty() {
            return;
        }
        let mut cursor = 0usize;
        for f in self.job.plan.stage_fops(stage) {
            if self.job.plan.fops[f].placement != Placement::Reserved {
                continue;
            }
            for i in 0..self.job.plan.fops[f].parallelism {
                self.assigned.entry((f, i)).or_insert_with(|| {
                    let e = reserved[cursor % reserved.len()];
                    cursor += 1;
                    e
                });
            }
        }
    }

    /// Whether all of a task's inputs are available.
    fn task_ready(&self, fop: FopId, index: usize) -> bool {
        for e in self.job.plan.in_edges(fop) {
            let src_par = self.job.plan.fops[e.src].parallelism;
            let dst_par = self.job.plan.fops[fop].parallelism;
            for si in required_src_indices(&e, index, src_par, dst_par) {
                if !matches!(self.tasks[e.src][si], TaskState::Done { .. }) {
                    return false;
                }
            }
        }
        true
    }

    fn launch(&mut self, fop: FopId, index: usize) {
        let placement = self.job.plan.fops[fop].placement;
        let cache_pref = self.cache_preference(fop);
        let Some(exec) = self.pick_executor(placement, fop, index, cache_pref) else {
            return; // No free executor; retry on the next event.
        };

        let attempt = self.next_attempt;
        self.next_attempt += 1;

        let (mains, sides) = self.assemble_inputs(fop, index, exec);
        let preaggregate = placement == Placement::Transient
            && self.job.config.partial_aggregation
            && combine_consumer(&self.job.dag, &self.job.plan, fop).is_some();

        // Launch accounting.
        self.metrics.tasks_launched += 1;
        let relaunch = self.first_attempted[fop][index];
        if relaunch {
            self.metrics.relaunched_tasks += 1;
        } else {
            self.first_attempted[fop][index] = true;
        }
        self.events.push(JobEvent::TaskLaunched {
            fop,
            index,
            exec,
            relaunch,
        });
        self.attempt_of.insert(attempt, (fop, index));
        self.tasks[fop][index] = TaskState::Running { attempt, exec };
        let info = self.executors.get_mut(&exec).expect("picked executor");
        info.busy += 1;
        info.handle.run(TaskSpec {
            attempt,
            fop,
            index,
            mains,
            sides,
            preaggregate,
        });
    }

    /// A cacheable side-input key of this fop, if any (used for
    /// cache-aware scheduling).
    fn cache_preference(&self, fop: FopId) -> Option<CacheKey> {
        self.job
            .plan
            .in_edges(fop)
            .iter()
            .find(|e| e.slot == InputSlot::Side && e.cache)
            .map(|e| e.src)
    }

    /// The default scheduling policy (§3.2.3): prefer an executor that
    /// caches the task's input; otherwise round-robin over alive
    /// executors with a free task slot. Reserved tasks go to their
    /// pre-assigned receiver.
    fn pick_executor(
        &mut self,
        kind: Placement,
        fop: FopId,
        index: usize,
        cache_pref: Option<CacheKey>,
    ) -> Option<ExecId> {
        if kind == Placement::Reserved {
            if let Some(&e) = self.assigned.get(&(fop, index)) {
                if self.executors.get(&e).map(|i| i.alive) == Some(true) {
                    return Some(e);
                }
            }
            // The assigned receiver died; fall through to any reserved.
        }
        let slots = self.job.config.slots_per_executor.max(1);
        let candidates: Vec<Candidate> = self
            .executors
            .iter()
            .filter(|(_, e)| e.alive && e.handle.kind == kind && e.busy < slots)
            .map(|(&id, e)| Candidate {
                exec: id,
                free_slots: slots - e.busy,
                has_cached_input: cache_pref.map(|k| e.cached.contains(&k)).unwrap_or(false),
            })
            .collect();
        self.policy.pick(
            TaskToPlace {
                fop,
                index,
                cache_pref,
            },
            &candidates,
        )
    }

    /// Routes and packages a task's inputs.
    fn assemble_inputs(
        &mut self,
        fop: FopId,
        index: usize,
        exec: ExecId,
    ) -> (Vec<Vec<Value>>, BTreeMap<usize, SideData>) {
        let dst_par = self.job.plan.fops[fop].parallelism;
        let mut mains: Vec<Vec<Value>> = Vec::new();
        let mut sides: BTreeMap<usize, SideData> = BTreeMap::new();
        for e in self.job.plan.in_edges(fop) {
            let src_par = self.job.plan.fops[e.src].parallelism;
            match e.slot {
                InputSlot::Main(_) => {
                    let mut part: Vec<Value> = Vec::new();
                    for si in required_src_indices(&e, index, src_par, dst_par) {
                        let records = self
                            .outputs
                            .get(&(e.src, si))
                            .expect("task launched before inputs ready");
                        match e.dep {
                            DepType::ManyToMany => {
                                let routed = route(records, e.dep, si, dst_par);
                                part.extend(routed[index].iter().cloned());
                            }
                            _ => part.extend(records.iter().cloned()),
                        }
                    }
                    mains.push(part);
                }
                InputSlot::Side => {
                    let records = self.side_records(e.src, src_par);
                    let bytes: usize = records.iter().map(Value::size_bytes).sum();
                    let key = e.cache.then_some(e.src);
                    let expect_cached = key
                        .map(|k| self.executors[&exec].cached.contains(&k))
                        .unwrap_or(false);
                    if expect_cached {
                        self.metrics.side_bytes_saved += bytes;
                    } else {
                        self.metrics.side_bytes_sent += bytes;
                        if key.is_some() {
                            self.metrics.cache_misses += 1;
                        }
                    }
                    sides.insert(
                        e.member,
                        SideData {
                            key,
                            records,
                            expect_cached,
                        },
                    );
                }
            }
        }
        (mains, sides)
    }

    /// Materializes the full broadcast dataset of a producer fop.
    fn side_records(&self, src: FopId, src_par: usize) -> Arc<Vec<Value>> {
        if src_par == 1 {
            if let Some(r) = self.outputs.get(&(src, 0)) {
                return Arc::clone(r);
            }
        }
        let mut all = Vec::new();
        for si in 0..src_par {
            if let Some(r) = self.outputs.get(&(src, si)) {
                all.extend(r.iter().cloned());
            }
        }
        Arc::new(all)
    }

    fn collect_result(&self) -> JobResult {
        let mut outputs: BTreeMap<String, Vec<Value>> = BTreeMap::new();
        for ((fop, _idx), records) in &self.result_parts {
            let name = self
                .job
                .dag
                .op(self.job.plan.fops[*fop].tail())
                .name
                .clone();
            outputs
                .entry(name)
                .or_default()
                .extend(records.iter().cloned());
        }
        JobResult {
            outputs,
            metrics: self.metrics.clone(),
            events: self.events.clone(),
        }
    }

    fn shutdown(self) {
        for (_, info) in self.executors {
            info.handle.stop();
            info.handle.join();
        }
    }
}

/// Which producer task indices a consumer task needs along an edge.
pub fn required_src_indices(
    edge: &PlanEdge,
    dst_index: usize,
    src_par: usize,
    dst_par: usize,
) -> Vec<usize> {
    match edge.dep {
        DepType::OneToOne => {
            if dst_index < src_par {
                vec![dst_index]
            } else {
                Vec::new()
            }
        }
        DepType::OneToMany | DepType::ManyToMany => (0..src_par).collect(),
        DepType::ManyToOne => (0..src_par)
            .filter(|si| si % dst_par.max(1) == dst_index)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::InputSlot;

    fn edge(dep: DepType) -> PlanEdge {
        PlanEdge {
            src: 0,
            dst: 1,
            dep,
            slot: InputSlot::Main(0),
            cache: false,
            cross_stage: false,
            member: 0,
        }
    }

    #[test]
    fn required_indices_one_to_one() {
        assert_eq!(
            required_src_indices(&edge(DepType::OneToOne), 2, 4, 4),
            vec![2]
        );
        assert!(required_src_indices(&edge(DepType::OneToOne), 5, 4, 8).is_empty());
    }

    #[test]
    fn required_indices_wide_edges_need_all() {
        assert_eq!(
            required_src_indices(&edge(DepType::ManyToMany), 0, 3, 2),
            vec![0, 1, 2]
        );
        assert_eq!(
            required_src_indices(&edge(DepType::OneToMany), 1, 2, 5),
            vec![0, 1]
        );
    }

    #[test]
    fn required_indices_many_to_one_partitions_by_modulo() {
        assert_eq!(
            required_src_indices(&edge(DepType::ManyToOne), 0, 5, 2),
            vec![0, 2, 4]
        );
        assert_eq!(
            required_src_indices(&edge(DepType::ManyToOne), 1, 5, 2),
            vec![1, 3]
        );
    }
}
