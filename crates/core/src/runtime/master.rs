//! The Pado master: container manager, task scheduler, eviction and fault
//! tolerance (§3.2.1, §3.2.3, §3.2.5, §3.2.6).
//!
//! The master executes the stage DAG stage-by-stage in topological order.
//! When a stage becomes runnable it first *assigns* the stage's
//! reserved-side tasks to reserved executors (so transient tasks know their
//! push destinations), then launches tasks as their inputs become
//! available. A transient task's completed output is immediately pushed to
//! the reserved executors hosting its consumer tasks and committed —
//! recorded in the master's location table — so it escapes the threat of
//! evictions.
//!
//! On a transient container eviction, only the evicted executor's
//! uncommitted work is relaunched: running attempts and any outputs whose
//! sole location was the evicted container. Committed stage outputs on
//! reserved executors are never recomputed. On a (rare) reserved executor
//! failure, the master pauses descendant stages, walks ancestor stages in
//! topological order, and relaunches exactly the tasks whose preserved
//! outputs were lost.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use pado_dag::{block_from_vec, Block, DepType, MainSlot, Value};
use parking_lot::Mutex;

use crate::compiler::{FopId, InputSlot, Placement, PlanEdge};
use crate::error::RuntimeError;
use crate::exec::route;
use crate::runtime::backend::{CancelToken, ExecBackend, SimBackend, StallProbe, WorkerPool};
use crate::runtime::cache::CacheKey;
use crate::runtime::clock::Clock;
use crate::runtime::executor::{combine_consumer, ExecutorHandle, JobContext};
use crate::runtime::fault::FaultInjector;
use crate::runtime::journal::{
    EventJournal, Journal, JournalMeta, MAX_RETRANSMISSIONS_PER_MESSAGE,
};
use crate::runtime::message::{
    AttemptId, ExecId, ExecutorMsg, InjectedFault, MasterMsg, SideData, TaskSpec,
};
use crate::runtime::metrics::JobMetrics;
use crate::runtime::policy::{Candidate, RoundRobinCacheAware, SchedulingPolicy, TaskToPlace};
use crate::runtime::reconfig::{ReconfigChange, ReconfigPlan, ReconfigTrigger, ScheduledReconfig};
use crate::runtime::store::{
    block_bytes, BlockRef, ExecutorStore, SpillFaultPlan, StoreError, StoreHandle,
};
use crate::runtime::transport::{
    mix64, DedupWindow, Direction, ExecIn, FaultyLink, NetPolicy, NetworkFault, ReliableSender,
    TransportCounters, Wire,
};
use crate::runtime::wal::{RecoveredState, WalCorruption, WalRecord, WalSnapshot, WalWriter};

/// Probabilistic user-code fault injection, decided deterministically per
/// `(seed, task, launch ordinal)` so every chaos run is exactly
/// reproducible from its seed.
///
/// Faults count against the per-task cap `max_faults_per_task`; keeping
/// the cap below the runtime's `max_task_attempts` guarantees a chaos run
/// can always complete. Delays are not faults and are never capped.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Seed for the injection decisions.
    pub seed: u64,
    /// Probability a launch fails with a user-function error.
    pub error_prob: f64,
    /// Probability a launch fails with a user-function panic.
    pub panic_prob: f64,
    /// Probability a launch stalls before computing (straggler).
    pub delay_prob: f64,
    /// Maximum injected stall in milliseconds (actual stall is uniform in
    /// `1..=delay_ms`).
    pub delay_ms: u64,
    /// Probability a launch fails with a mid-task allocation failure
    /// (the executor-store budget exhausted at the worst moment). Counts
    /// against `max_faults_per_task` like errors and panics.
    pub oom_prob: f64,
    /// Injected error/panic/OOM budget per task across all its launches.
    pub max_faults_per_task: usize,
}

/// The master-crash chaos family: kills the master at handler
/// boundaries and recovers it from the write-ahead log.
///
/// A crash is evaluated after every handled frame (the only points an
/// in-process master can die without leaving a handler half-applied; a
/// real process crash mid-handler loses the same unsynced WAL suffix).
/// Any satisfied trigger fires, up to `max_crashes` total. All decisions
/// are deterministic in `(seed, handled-frame ordinal)`, except the
/// append-count trigger, whose clock advances with concurrent executor
/// emissions — recovery must be correct at *any* boundary, so the
/// trigger's exact landing spot is allowed to float.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashPlan {
    /// Seed for the probabilistic handler-boundary trigger.
    pub seed: u64,
    /// Crash once every `n` handled frames (exhaustive boundary sweeps
    /// set this to each boundary in turn with `max_crashes = 1`).
    pub after_handled_frames: Option<u64>,
    /// Crash when the WAL has absorbed another `k` appends.
    pub every_kth_append: Option<u64>,
    /// Probability of crashing at each handled-frame boundary.
    pub handler_prob: f64,
    /// Total crash budget for the run (0 disables the family).
    pub max_crashes: usize,
    /// Seeded corruption applied to the WAL image at each crash, before
    /// recovery scans it (bit flips and torn-tail truncation).
    pub corruption: Option<WalCorruption>,
}

/// Scheduled faults injected deterministically while a job runs.
///
/// Thresholds count *processed task completions*: `(n, k)` fires when the
/// master has handled `n` valid task completions, targeting the `k`-th
/// alive executor of the relevant kind (in id order).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Transient container evictions.
    pub evictions: Vec<(usize, usize)>,
    /// Reserved executor machine failures.
    pub reserved_failures: Vec<(usize, usize)>,
    /// Simulate a master crash/restart after this many completions,
    /// resuming from the last progress snapshot.
    pub master_failure_after: Option<usize>,
    /// Probabilistic user-code fault injection (chaos testing).
    pub chaos: Option<ChaosPlan>,
    /// Stall the *first* attempt of task `(fop, index)` by the given
    /// milliseconds — a targeted straggler, used to exercise speculative
    /// execution deterministically.
    pub first_attempt_delays: Vec<(FopId, usize, u64)>,
    /// Stall the *first* attempt of task `(fop, index)` by the given
    /// milliseconds *after* it computes, before its `TaskDone` is sent —
    /// deterministically exercising the computed-but-unreported window.
    pub first_attempt_done_delays: Vec<(FopId, usize, u64)>,
    /// Seeded network faults on the master↔executor control plane
    /// (`None` = perfectly reliable transport).
    pub network: Option<NetworkFault>,
    /// Scheduled executor-store budget shrinks `(n, k, bytes)`: after `n`
    /// processed completions, shrink the `k`-th alive *reserved*
    /// executor's store budget to `bytes` (memory-pressure chaos). The
    /// applied budget clamps up to pinned occupancy, so a shrink can
    /// squeeze but never strand a running attempt.
    pub budget_shrinks: Vec<(usize, usize, usize)>,
    /// Reconfiguration transactions scheduled against the same
    /// completion clock as the other fault families (the chaos family's
    /// random mid-job reconfigs, and the explicit API's deterministic
    /// ones, both ride here).
    pub reconfigs: Vec<ScheduledReconfig>,
    /// Seeded spill-I/O fault injection on every executor store
    /// (`None` = the disk tier never fails).
    pub spill_faults: Option<SpillFaultPlan>,
    /// Master crashes recovered from the write-ahead log (requires
    /// `RuntimeConfig::wal_path`; the harness rejects the combination
    /// of crashes without a WAL before the job starts).
    pub crashes: Option<CrashPlan>,
}

// The event schema lives with the journal; re-exported here because the
// events were born in this module and callers still import them from it.
pub use crate::runtime::journal::JobEvent;

/// Out-of-band fault-injection endpoint: the resource manager's direct
/// channel to the master. Messages sent here bypass the faulty network.
#[derive(Debug, Clone)]
pub struct Injector {
    tx: Sender<Wire<MasterMsg>>,
}

impl Injector {
    /// Delivers a resource-manager notice (eviction, reserved failure)
    /// directly to the master.
    pub fn send(&self, msg: MasterMsg) {
        let _ = self.tx.send(Wire::Direct(msg));
    }
}

/// The result of a completed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Output records per terminal operator (keyed by operator name),
    /// concatenated in task-index order.
    pub outputs: BTreeMap<String, Vec<Value>>,
    /// Execution counters, derived from the journal (plus the wire-level
    /// transport counters the journal cannot see).
    pub metrics: JobMetrics,
    /// The canonically-ordered execution journal.
    pub journal: EventJournal,
}

#[derive(Debug, Clone)]
enum TaskState {
    Pending,
    /// One or more in-flight attempts (more than one only while a
    /// speculative duplicate races the original; first commit wins).
    Running {
        attempts: Vec<(AttemptId, ExecId)>,
    },
    Done {
        locations: Vec<ExecId>,
    },
}

#[derive(Debug)]
struct ExecInfo {
    handle: ExecutorHandle,
    alive: bool,
    busy: usize,
    cached: HashSet<CacheKey>,
    /// This executor's byte-accounted memory domain, shared with its
    /// worker slots: the master admits pushes, pins task inputs, and
    /// applies chaos budget shrinks through it.
    store: StoreHandle,
    /// Reliable (retransmitting) endpoint of the master→executor wire.
    out: ReliableSender<ExecutorMsg, ExecIn>,
    /// Duplicate suppression for frames this executor sends the master.
    dedup: DedupWindow,
    /// Last time any frame (heartbeat, ack, or report) arrived from this
    /// executor — the failure detector's input.
    last_heartbeat: Instant,
    /// Whether the detector already flagged the current silence (so one
    /// quiet spell counts one missed-heartbeat, not one per tick).
    hb_flagged: bool,
}

/// Why an executor was lost, for loss-specific accounting. All kinds
/// share the recovery path: revert uncommitted work, keep committed
/// blocks that survive elsewhere, spawn a replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LossKind {
    /// The resource manager reclaimed a transient container.
    Eviction,
    /// A reserved executor's machine failed (§3.2.6).
    ReservedFailure,
    /// The heartbeat failure detector timed the executor out.
    DeclaredDead,
}

/// Side-input traffic of one launch, embedded in its journal event (the
/// journal is the metrics source of truth, so the bytes ride the event).
#[derive(Debug, Clone, Copy, Default)]
struct SideStats {
    sent: usize,
    saved: usize,
    misses: usize,
}

/// A cross-executor push the destination store had no headroom for:
/// parked under backpressure and retried with exponential backoff until
/// the destination frees memory (or the push becomes obsolete).
#[derive(Debug, Clone)]
struct DeferredPush {
    fop: FopId,
    index: usize,
    dest: ExecId,
    next_try: Instant,
    backoff_ms: u64,
}

/// One in-flight two-phase reconfiguration transaction. At most one
/// exists at a time: a second request aborts immediately rather than
/// queueing (the caller retries once the first resolves).
#[derive(Debug, Clone, Copy)]
struct ActiveReconfig {
    id: u64,
    plan: ReconfigPlan,
    /// In-flight attempts at request time (reported in `ReconfigPrepared`
    /// as how much work the prepare phase had to quiesce).
    quiesce_wait: usize,
    /// Past this instant an unquiesced prepare aborts.
    deadline: Instant,
}

/// Progress metadata replicated for master fault tolerance (§3.2.6): the
/// record of finished tasks and where their outputs live. Intermediate
/// records themselves live on executors; the in-process stand-in keeps
/// them alongside as shared [`Block`]s, so cloning this snapshot — and
/// restoring from it after a master restart — costs O(references), never
/// O(records).
#[derive(Debug, Clone)]
struct ProgressSnapshot {
    tasks: Vec<Vec<TaskState>>,
    outputs: HashMap<(FopId, usize), Block>,
    result_parts: BTreeMap<(FopId, usize), Block>,
    first_attempted: Vec<Vec<bool>>,
    next_attempt: AttemptId,
    /// The reconfiguration epoch is part of the replicated progress
    /// record: a restarted master must keep fencing pre-restart frames.
    epoch: u64,
}

/// Eager routing results keyed like [`Master::routed`]: `(fop, index,
/// dst_par)` → the source block the buckets were computed from plus the
/// buckets themselves.
type EagerRouteCache = Arc<Mutex<HashMap<(FopId, usize, usize), (Block, Vec<Block>)>>>;

/// The master event loop for one job.
pub struct Master {
    job: Arc<JobContext>,
    tx: Sender<Wire<MasterMsg>>,
    rx: Receiver<Wire<MasterMsg>>,
    /// Seeded network-fault policy shared with every executor's links.
    net: Option<Arc<NetPolicy>>,
    /// Transport counters shared with every link in the job.
    counters: Arc<TransportCounters>,
    executors: BTreeMap<ExecId, ExecInfo>,
    next_exec_id: ExecId,
    policy: Box<dyn SchedulingPolicy>,

    tasks: Vec<Vec<TaskState>>,
    first_attempted: Vec<Vec<bool>>,
    /// The location table's data side: every committed output, as a shared
    /// block created once by the finishing executor.
    outputs: HashMap<(FopId, usize), Block>,
    result_parts: BTreeMap<(FopId, usize), Block>,
    /// Memoized shuffle routing: buckets of output `(fop, index)` hashed
    /// to `dst_par` consumers. Shared by every consumer task (and every
    /// relaunch) that reads the same output at the same parallelism, so a
    /// shuffle's record pass happens once per output, not once per
    /// consumer. Invalidated whenever the source output changes.
    routed: HashMap<(FopId, usize, usize), Vec<Block>>,
    /// Memoized concatenation of a multi-part broadcast dataset, keyed by
    /// producer fop. Invalidated with [`Master::invalidate_derived`].
    side_cache: HashMap<FopId, Block>,
    assigned: HashMap<(FopId, usize), ExecId>,
    attempt_of: HashMap<AttemptId, (FopId, usize)>,
    next_attempt: AttemptId,

    /// Shared writer handle of the execution journal. Executor worker
    /// slots and transport endpoints hold clones; the master itself emits
    /// every scheduling, commit, and fault event through it. Metrics are
    /// *derived* from the journal on demand, never mirrored by hand.
    journal: Journal,
    /// Plan facts embedded in every frozen journal (what the invariant
    /// checker replays against).
    meta: JournalMeta,
    stage_completed: Vec<bool>,
    done_events: usize,
    faults: FaultPlan,
    fault_cursor_evict: usize,
    fault_cursor_fail: usize,
    master_failed: bool,
    snapshot: Option<ProgressSnapshot>,

    // --- Durability domain ---
    /// The write-ahead log, when `RuntimeConfig::wal_path` armed one.
    /// Shared with the journal (whose emissions it makes durable); the
    /// master additionally appends location-table deltas and compacting
    /// snapshots through it.
    wal: Option<Arc<Mutex<WalWriter>>>,
    /// Crashes the crash chaos family has injected so far.
    crashes_injected: usize,
    /// Handled (progress-bearing) frames — the crash family's
    /// handler-boundary clock.
    handled_frames: u64,

    // --- Task-failure domain ---
    /// Executors that exhausted their fault threshold: no new work, but
    /// they stay alive so their committed outputs remain readable.
    blacklisted: HashSet<ExecId>,
    /// User-code failures per executor (toward the blacklist threshold).
    exec_failures: HashMap<ExecId, usize>,
    /// User-code failures per task (toward the retry budget).
    task_failure_counts: HashMap<(FopId, usize), usize>,
    /// Injected error/panic count per task (toward the chaos cap).
    injected_faults: HashMap<(FopId, usize), usize>,
    /// Launch ordinal per task, driving deterministic chaos decisions.
    launch_seq: HashMap<(FopId, usize), usize>,
    /// Wall-clock launch time of each in-flight attempt.
    launch_times: HashMap<AttemptId, Instant>,
    /// Completed attempt durations (ms) per fop, for straggler medians.
    fop_durations: Vec<Vec<u64>>,
    /// In-flight attempts that are speculative duplicates.
    speculative: HashSet<AttemptId>,

    // --- Transport / delivery domain ---
    /// Every attempt whose terminal report (`TaskDone` or `TaskFailed`)
    /// was already processed. The by-construction idempotence keystone:
    /// the dedup windows suppress most duplicate deliveries, but any
    /// replay that slips past them (window overflow, reordering across a
    /// restart) hits this set and becomes a complete no-op — no double
    /// commit, no double slot-free, no double retry charge. Part of the
    /// replicated completion log: it survives a simulated master restart,
    /// exactly as the progress snapshot does.
    completed_attempts: HashSet<AttemptId>,

    // --- Memory-pressure domain ---
    /// Cross-executor pushes deferred for lack of destination headroom,
    /// retried with backoff (push backpressure).
    deferred_pushes: Vec<DeferredPush>,
    /// Input blocks each in-flight attempt has pinned on its executor;
    /// unpinned when the attempt reports terminally (or wholesale on
    /// executor loss / master restart).
    attempt_pins: HashMap<AttemptId, (ExecId, Vec<BlockRef>)>,
    /// Cursor into `faults.budget_shrinks`.
    fault_cursor_shrink: usize,

    // --- Reconfiguration domain ---
    /// The reconfiguration epoch: shared with every master→executor
    /// sender (envelopes stamp it at first transmit) and advanced by
    /// exactly one at each transaction commit.
    epoch: Arc<AtomicU64>,
    /// The in-flight two-phase transaction, if any (at most one).
    reconfig: Option<ActiveReconfig>,
    next_reconfig_id: u64,
    /// Transient executors drained ahead of predicted eviction: still
    /// alive (their container was not reclaimed) but no new attempt
    /// lands on them and their blocks have migrated to reserved stores.
    drained: HashSet<ExecId>,
    /// Live placement per fop: seeded from the frozen plan, rewritten
    /// by committed `MigrateStage` changes. Every placement decision
    /// reads this overlay, never the plan.
    placement: Vec<Placement>,
    /// Live task count per fop, rewritten by committed `Repartition`.
    parallelism: Vec<usize>,
    /// The epoch each in-flight attempt launched under (the belt under
    /// the wire-level fence: a cross-epoch attempt never commits).
    attempt_epochs: HashMap<AttemptId, u64>,
    /// Cursor into `faults.reconfigs`.
    fault_cursor_reconfig: usize,
    /// Evictions handled so far — the storm-policy trigger input.
    evictions_seen: usize,

    // --- Execution-backend plumbing ---
    /// The scheduling clock (wall on both stock backends; manual in
    /// timer-order tests). Every master-side timer reads through it.
    clock: Clock,
    /// The shared worker pool, when the backend uses one: executors run
    /// task bodies on it and the master submits eager routing to it.
    pool: Option<Arc<WorkerPool>>,
    /// Inbound frames drained per loop wakeup before control work reruns
    /// (1 on the sim backend — the original loop shape).
    frame_batch: usize,
    /// Whether committed shuffle outputs are routed eagerly on the pool.
    eager_routing: bool,
    /// Completed eager routing results, keyed like [`Master::routed`]
    /// and carrying the source block they were computed from: consumed
    /// by [`Master::routed_bucket`] only when the source still matches
    /// the live output (an eviction or repartition in between makes the
    /// entry stale, and the lazy fallback recomputes).
    eager_routed: EagerRouteCache,
    /// The run-wide cooperative cancellation token (inert on the sim
    /// backend): checked at the top of every scheduling pass, so a
    /// supervisor-initiated abort unwinds through the normal shutdown
    /// path — pool quiesced, journal frozen — instead of being leaked.
    cancel: CancelToken,
    /// Progress counters published for the threaded backend's hang
    /// watchdog, when one is armed.
    probe: Option<Arc<StallProbe>>,
}

impl Master {
    /// Creates a master and spawns the initial containers.
    ///
    /// # Errors
    ///
    /// Fails when `RuntimeConfig::wal_path` is set but the write-ahead
    /// log cannot be created or its genesis snapshot cannot be written.
    pub fn new(
        job: Arc<JobContext>,
        n_transient: usize,
        n_reserved: usize,
        faults: FaultPlan,
    ) -> Result<Self, RuntimeError> {
        Self::with_backend(job, n_transient, n_reserved, faults, &SimBackend)
    }

    /// Creates a master wired for a specific execution backend: its
    /// clock, worker pool, frame-batch width, and routing strategy are
    /// installed before the first executor spawns (executors need the
    /// pool at spawn time).
    ///
    /// # Errors
    ///
    /// Same as [`Master::new`].
    pub fn with_backend(
        job: Arc<JobContext>,
        n_transient: usize,
        n_reserved: usize,
        faults: FaultPlan,
        backend: &dyn ExecBackend,
    ) -> Result<Self, RuntimeError> {
        let (tx, rx) = crossbeam::channel::unbounded();
        let net = faults.network.clone().map(NetPolicy::new);
        let counters = Arc::new(TransportCounters::default());
        let n_fops = job.plan.fops.len();
        let tasks = (0..n_fops)
            .map(|f| vec![TaskState::Pending; job.plan.fops[f].parallelism])
            .collect::<Vec<_>>();
        let first_attempted = (0..n_fops)
            .map(|f| vec![false; job.plan.fops[f].parallelism])
            .collect();
        let n_stages = job.plan.stage_dag.stages.len();
        let meta = JournalMeta {
            n_stages,
            stage_of: job.plan.fops.iter().map(|f| f.stage).collect(),
            parallelism: job.plan.fops.iter().map(|f| f.parallelism).collect(),
            required: (0..n_fops)
                .map(|f| {
                    let dst_par = job.plan.fops[f].parallelism;
                    (0..dst_par)
                        .map(|i| {
                            let mut req = Vec::new();
                            for e in job.plan.in_edges(f) {
                                let src_par = job.plan.fops[e.src].parallelism;
                                for si in required_src_indices(&e, i, src_par, dst_par) {
                                    req.push((e.src, si));
                                }
                            }
                            req
                        })
                        .collect()
                })
                .collect(),
            max_task_attempts: job.config.max_task_attempts,
            retransmit_bound: MAX_RETRANSMISSIONS_PER_MESSAGE,
            executor_memory_bytes: job.config.executor_memory_bytes,
        };
        let placement: Vec<Placement> = job.plan.fops.iter().map(|f| f.placement).collect();
        let parallelism: Vec<usize> = job.plan.fops.iter().map(|f| f.parallelism).collect();
        // The epoch cell is shared three ways: every master→executor
        // sender stamps envelopes with it, and the WAL writer stamps
        // every frame with it (so fencing survives a recovery replay).
        let epoch = Arc::new(AtomicU64::new(0));
        // The WAL sink must be armed before the journal is cloned out to
        // executors: every clone copies the sink, and a late arm would
        // leave executor emissions volatile.
        let mut journal = Journal::new();
        let wal = match &job.config.wal_path {
            Some(path) => {
                let writer = WalWriter::create(
                    Path::new(path),
                    Arc::clone(&epoch),
                    job.config.wal_sync_every,
                    job.config.wal_snapshot_every,
                )?;
                let sink = Arc::new(Mutex::new(writer));
                journal.arm_wal(Arc::clone(&sink));
                Some(sink)
            }
            None => None,
        };
        let mut master = Master {
            job,
            tx,
            rx,
            net,
            counters,
            executors: BTreeMap::new(),
            next_exec_id: 0,
            policy: Box::new(RoundRobinCacheAware::default()),
            tasks,
            first_attempted,
            outputs: HashMap::new(),
            result_parts: BTreeMap::new(),
            routed: HashMap::new(),
            side_cache: HashMap::new(),
            assigned: HashMap::new(),
            attempt_of: HashMap::new(),
            next_attempt: 1,
            journal,
            meta,
            stage_completed: vec![false; n_stages],
            done_events: 0,
            faults,
            fault_cursor_evict: 0,
            fault_cursor_fail: 0,
            master_failed: false,
            snapshot: None,
            wal,
            crashes_injected: 0,
            handled_frames: 0,
            blacklisted: HashSet::new(),
            exec_failures: HashMap::new(),
            task_failure_counts: HashMap::new(),
            injected_faults: HashMap::new(),
            launch_seq: HashMap::new(),
            launch_times: HashMap::new(),
            fop_durations: vec![Vec::new(); n_fops],
            speculative: HashSet::new(),
            completed_attempts: HashSet::new(),
            deferred_pushes: Vec::new(),
            attempt_pins: HashMap::new(),
            fault_cursor_shrink: 0,
            epoch,
            reconfig: None,
            next_reconfig_id: 0,
            drained: HashSet::new(),
            placement,
            parallelism,
            attempt_epochs: HashMap::new(),
            fault_cursor_reconfig: 0,
            evictions_seen: 0,
            clock: backend.clock(),
            pool: backend.pool(),
            frame_batch: backend.frame_batch().max(1),
            eager_routing: backend.eager_routing(),
            eager_routed: Arc::new(Mutex::new(HashMap::new())),
            cancel: backend.cancel(),
            probe: backend.stall_probe(),
        };
        // Arm the pool's detach journal so a worker leaked past the
        // shutdown grace is recorded in this run's own event stream.
        if let Some(pool) = &master.pool {
            pool.arm_journal(master.journal.clone());
        }
        for _ in 0..n_reserved {
            master.spawn_executor(Placement::Reserved);
        }
        for _ in 0..n_transient {
            master.spawn_executor(Placement::Transient);
        }
        // Genesis snapshot: the plan's frozen shape (parallelism,
        // placement) is durable before any event, so a recovery replay
        // always knows how many tasks each fop has — even when the
        // first crash lands before the first completion.
        master.append_wal_snapshot()?;
        Ok(master)
    }

    /// An endpoint evictions and failures can be injected through
    /// externally. Injected messages model resource-manager actions, so
    /// they ride the out-of-band [`Wire::Direct`] path and bypass the
    /// faulty network — an eviction notice is not a datagram.
    pub fn injector(&self) -> Injector {
        Injector {
            tx: self.tx.clone(),
        }
    }

    /// Replaces the task scheduling policy (§3.2.3's pluggable policy).
    pub fn set_policy(&mut self, policy: Box<dyn SchedulingPolicy>) {
        self.policy = policy;
    }

    fn spawn_executor(&mut self, kind: Placement) -> ExecId {
        let id = self.next_exec_id;
        self.next_exec_id += 1;
        let store = ExecutorStore::handle(
            id,
            self.job.config.executor_memory_bytes,
            self.job.config.cache_capacity_bytes,
            self.journal.clone(),
        );
        if let Some(sf) = self.faults.spill_faults {
            store.lock().set_spill_faults(sf);
        }
        let handle = ExecutorHandle::spawn(
            id,
            kind,
            Arc::clone(&self.job),
            self.tx.clone(),
            self.net.clone(),
            Arc::clone(&self.counters),
            self.journal.clone(),
            Arc::clone(&store),
            self.pool.clone(),
            self.cancel.clone(),
        );
        let link = FaultyLink::new(
            handle.inbound(),
            id,
            Direction::ToExecutor,
            self.net.clone(),
            Arc::clone(&self.counters),
        );
        let seed = self.net.as_ref().map_or(0, |p| p.seed());
        let out = ReliableSender::new(
            link,
            id,
            |from, seq, epoch, payload| {
                ExecIn::Net(Wire::Msg {
                    from,
                    seq,
                    epoch,
                    payload,
                })
            },
            self.job.config.transport_inflight_cap,
            Duration::from_millis(self.job.config.retransmit_base_ms),
            Duration::from_millis(self.job.config.retransmit_max_ms),
            seed ^ mix64(id as u64),
        )
        .with_journal(self.journal.clone(), false)
        .with_epoch(Arc::clone(&self.epoch));
        self.executors.insert(
            id,
            ExecInfo {
                handle,
                alive: true,
                busy: 0,
                cached: HashSet::new(),
                store,
                out,
                dedup: DedupWindow::new(self.job.config.transport_dedup_window),
                last_heartbeat: self.clock.now(),
                hb_flagged: false,
            },
        );
        id
    }

    /// Runs the job to completion.
    ///
    /// # Errors
    ///
    /// Fails with [`RuntimeError::Wedged`] if no progress is made within
    /// the configured timeout, with [`RuntimeError::TaskFailed`] when a
    /// task exhausts its retry budget in user code, and with
    /// [`RuntimeError::Invariant`] on internal scheduler bugs. Executors
    /// are stopped and joined on every exit path.
    pub fn run(mut self) -> Result<JobResult, RuntimeError> {
        let outcome = self.run_loop();
        // Join executors before freezing the journal so every in-flight
        // executor-side emission (task starts, retransmissions) lands.
        self.shutdown();
        outcome.map(|()| self.collect_result())
    }

    /// The tick-driven master event loop: waits up to one tick for a
    /// frame, then re-evaluates retransmissions, the failure detector,
    /// stragglers, the wedge timeout, and the schedule. Ticks make all of
    /// these responsive even while no completions arrive.
    fn run_loop(&mut self) -> Result<(), RuntimeError> {
        self.schedule()?;
        let tick = Duration::from_millis(self.job.config.tick_ms.max(1));
        let timeout = Duration::from_millis(self.job.config.event_timeout_ms);
        let mut last_progress = self.clock.now();
        let mut last_spec_check = self.clock.now();
        while !self.complete() {
            // Cooperative cancellation point: a supervisor abort (wall
            // clock, watchdog) unwinds here through the normal shutdown
            // path — executors joined, pool quiesced, journal frozen —
            // instead of the run being leaked.
            if self.cancel.is_cancelled() {
                let reason = "run cancelled by backend supervisor".to_string();
                self.journal.emit(
                    None,
                    JobEvent::RunAborted {
                        reason: reason.clone(),
                    },
                );
                return Err(RuntimeError::Aborted(reason));
            }
            if let Some(probe) = &self.probe {
                probe.tick();
                probe.record(self.launch_times.len(), self.rx.len());
            }
            match self.rx.recv_timeout(tick) {
                Ok(frame) => {
                    // Only substantive deliveries reset the wedge timer:
                    // heartbeats, acks, and suppressed duplicates prove
                    // the wire is alive, not that the job is advancing.
                    if self.handle_frame(frame)? {
                        last_progress = self.clock.now();
                        self.handled_frames += 1;
                        // The crash family fires here — the handler
                        // boundary — so recovery never sees a frame's
                        // effects half-applied.
                        self.maybe_crash()?;
                    }
                    // The threaded backend drains a burst of already-
                    // queued frames before rerunning the control work
                    // below, amortizing pump/schedule passes across
                    // concurrent completions. The sim backend keeps the
                    // original one-frame-per-wakeup shape (batch = 1).
                    for _ in 1..self.frame_batch {
                        let Some(frame) = self.rx.try_recv() else {
                            break;
                        };
                        if self.handle_frame(frame)? {
                            last_progress = self.clock.now();
                            self.handled_frames += 1;
                            self.maybe_crash()?;
                        }
                    }
                    self.note_stage_transitions();
                    self.maybe_wal_snapshot()?;
                }
                Err(RecvTimeoutError::Timeout) => {
                    let waited = self.clock.now().saturating_duration_since(last_progress);
                    if waited >= timeout {
                        let journal = self.frozen_journal();
                        let metrics = Box::new(self.snapshot_metrics(&journal));
                        return Err(RuntimeError::Wedged {
                            waited_ms: waited.as_millis() as u64,
                            events: journal.to_events(),
                            metrics,
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RuntimeError::Disconnected("executors".into()));
                }
            }
            self.pump_transport()?;
            self.retry_deferred_pushes()?;
            self.pump_reconfig();
            // Straggler checks are time-gated so a burst of completions
            // does not rescan the task table once per message.
            if self.clock.now().saturating_duration_since(last_spec_check) >= tick {
                last_spec_check = self.clock.now();
                self.maybe_speculate()?;
            }
            self.schedule()?;
        }
        // In-flight commits can finish the job while a transaction is
        // still preparing; resolve it so the journal never ends with an
        // open prepare.
        self.abort_reconfig("job completed before the transaction could commit".into());
        Ok(())
    }

    /// Dispatches one wire frame. Returns whether it constituted job
    /// progress (for the wedge timer).
    fn handle_frame(&mut self, frame: Wire<MasterMsg>) -> Result<bool, RuntimeError> {
        match frame {
            Wire::Heartbeat { from } => {
                self.note_liveness(from);
                Ok(false)
            }
            Wire::Ack { from, seq } => {
                self.note_liveness(from);
                if let Some(info) = self.executors.get_mut(&from) {
                    if info.alive {
                        info.out.on_ack(seq);
                    }
                }
                Ok(false)
            }
            Wire::Msg {
                from,
                seq,
                epoch: env_epoch,
                payload,
            } => {
                self.note_liveness(from);
                let Some(info) = self.executors.get_mut(&from) else {
                    return Ok(false);
                };
                if !info.alive {
                    // Frames from an evicted or declared-dead executor are
                    // dropped unacknowledged; the container is being torn
                    // down out-of-band anyway.
                    return Ok(false);
                }
                info.out.link().send(ExecIn::Net(Wire::Ack { from, seq }));
                // Dedup before the epoch fence: retransmissions of frames
                // already handled are suppressed here, keeping the window
                // floor advancing whatever their stamp says.
                if !info.dedup.fresh(seq) {
                    self.counters.deduplicated.fetch_add(1, Ordering::Relaxed);
                    return Ok(false);
                }
                // The epoch fence: payloads stamped before the last
                // committed reconfiguration are acknowledged (above) but
                // never handled, so no pre-commit message can commit a
                // task into the post-commit world.
                if env_epoch < self.epoch.load(Ordering::Relaxed) {
                    self.journal.emit(
                        None,
                        JobEvent::StaleFrameFenced {
                            exec: from,
                            seq,
                            epoch: env_epoch,
                        },
                    );
                    self.handle_fenced(payload)?;
                    return Ok(false);
                }
                self.handle(payload)?;
                Ok(true)
            }
            Wire::Direct(msg) => {
                self.handle(msg)?;
                Ok(true)
            }
        }
    }

    /// Records proof of life from an executor: any frame counts, so a
    /// partitioned-then-healed executor revives on its first retransmitted
    /// report even before its next heartbeat.
    fn note_liveness(&mut self, exec: ExecId) {
        if let Some(info) = self.executors.get_mut(&exec) {
            if info.alive {
                info.last_heartbeat = self.clock.now();
                info.hb_flagged = false;
            }
        }
    }

    /// Drives the transport between frames: retransmits due unacked
    /// messages, releases delayed frames, and runs the heartbeat failure
    /// detector. Silence past `4×heartbeat_interval` flags the executor
    /// (slow: tasks on it will look like stragglers and feed speculation);
    /// silence past `dead_executor_timeout_ms` declares it dead and routes
    /// into the eviction recovery path.
    fn pump_transport(&mut self) -> Result<(), RuntimeError> {
        let now = self.clock.now();
        let miss_after = Duration::from_millis(
            self.job
                .config
                .heartbeat_interval_ms
                .saturating_mul(4)
                .max(1),
        );
        let dead_after = Duration::from_millis(self.job.config.dead_executor_timeout_ms);
        let mut dead: Vec<ExecId> = Vec::new();
        for (&id, info) in self.executors.iter_mut() {
            if !info.alive {
                continue;
            }
            info.out.pump(now)?;
            let age = now.duration_since(info.last_heartbeat);
            if age >= dead_after {
                dead.push(id);
            } else if age >= miss_after && !info.hb_flagged {
                info.hb_flagged = true;
                self.journal.emit(None, JobEvent::HeartbeatMissed(id));
            }
        }
        for id in dead {
            self.on_executor_lost(id, LossKind::DeclaredDead);
        }
        Ok(())
    }

    /// Retries pushes parked under backpressure. Entries become due on
    /// their backoff clock, or immediately when a pin release frees
    /// headroom on their destination (see [`Self::release_attempt_pins`]).
    /// A retry succeeds when the destination store freed headroom (pins
    /// released, budget restored); the destination then joins the
    /// output's location set and `PushResumed` is journaled. Obsolete entries — output
    /// reverted or gone, destination dead — are dropped silently: the
    /// producer-local copy (or a recomputation) serves instead.
    fn retry_deferred_pushes(&mut self) -> Result<(), RuntimeError> {
        if self.deferred_pushes.is_empty() {
            return Ok(());
        }
        let now = self.clock.now();
        let max_backoff = self.job.config.retransmit_max_ms.max(1);
        let mut parked: Vec<DeferredPush> = Vec::new();
        for mut p in std::mem::take(&mut self.deferred_pushes) {
            if now < p.next_try {
                parked.push(p);
                continue;
            }
            if !matches!(self.tasks[p.fop][p.index], TaskState::Done { .. }) {
                continue;
            }
            let Some(output) = self.outputs.get(&(p.fop, p.index)).map(Arc::clone) else {
                continue;
            };
            let Some(info) = self.executors.get(&p.dest) else {
                continue;
            };
            if !info.alive {
                continue;
            }
            let r = BlockRef::Output {
                fop: p.fop,
                index: p.index,
            };
            let admitted = info.store.lock().admit(r, &output);
            match admitted {
                Ok(()) => {
                    self.journal.emit(
                        Some(self.meta.stage_of[p.fop]),
                        JobEvent::PushResumed {
                            fop: p.fop,
                            index: p.index,
                            exec: p.dest,
                            bytes: block_bytes(&output),
                        },
                    );
                    if let TaskState::Done { locations } = &mut self.tasks[p.fop][p.index] {
                        if !locations.contains(&p.dest) {
                            locations.push(p.dest);
                        }
                    }
                    self.append_wal_locations(p.fop, p.index)?;
                }
                // A spill-I/O fault parks the push exactly like missing
                // headroom: back off and retry, never fail the job.
                Err(StoreError::NoHeadroom { .. } | StoreError::SpillUnreadable { .. }) => {
                    p.backoff_ms = p.backoff_ms.saturating_mul(2).min(max_backoff);
                    p.next_try = now + Duration::from_millis(p.backoff_ms);
                    parked.push(p);
                }
                Err(StoreError::TooLarge { bytes, budget }) => {
                    return Err(RuntimeError::MemoryExceeded {
                        bytes,
                        budget,
                        context: format!(
                            "push of output {}.{} to executor {}",
                            p.fop, p.index, p.dest
                        ),
                    });
                }
            }
        }
        self.deferred_pushes = parked;
        Ok(())
    }

    /// The journal frozen into its canonical, replayable form.
    fn frozen_journal(&self) -> EventJournal {
        self.journal.freeze(self.meta.clone())
    }

    /// The job metrics at this moment: every counter the journal can see
    /// is derived from it; the wire-level counts (drops, duplicates,
    /// dedup suppressions, the transmission high-water mark) happen below
    /// the journal's causal horizon inside the simulated network, so they
    /// fold in from the shared transport counters.
    fn snapshot_metrics(&self, journal: &EventJournal) -> JobMetrics {
        let mut m = journal.derive_metrics();
        m.messages_dropped = self.counters.dropped.load(Ordering::Relaxed) as usize;
        m.messages_duplicated = self.counters.duplicated.load(Ordering::Relaxed) as usize;
        m.messages_deduplicated = self.counters.deduplicated.load(Ordering::Relaxed) as usize;
        m.max_message_retransmissions = self
            .counters
            .max_transmissions
            .load(Ordering::Relaxed)
            .saturating_sub(1) as usize;
        m
    }

    fn complete(&self) -> bool {
        (0..self.job.plan.stage_dag.stages.len()).all(|s| self.stage_complete(s))
    }

    fn stage_complete(&self, stage: usize) -> bool {
        self.job.plan.stage_fops(stage).iter().all(|&f| {
            self.tasks[f]
                .iter()
                .all(|t| matches!(t, TaskState::Done { .. }))
        })
    }

    fn stage_runnable(&self, stage: usize) -> bool {
        !self.stage_complete(stage)
            && self.job.plan.stage_dag.stages[stage]
                .parents
                .iter()
                .all(|&p| self.stage_complete(p))
    }

    /// Emits `StageCompleted` / `StageReopened` events on transitions.
    /// Loss-caused reopens are emitted eagerly (with `recompute: true`)
    /// inside [`Master::on_executor_lost`]; any flip still unlogged here
    /// is a master-restart rollback, not a recomputation.
    fn note_stage_transitions(&mut self) {
        for stage in 0..self.stage_completed.len() {
            let now = self.stage_complete(stage);
            if now != self.stage_completed[stage] {
                self.journal.emit(
                    Some(stage),
                    if now {
                        JobEvent::StageCompleted(stage)
                    } else {
                        JobEvent::StageReopened {
                            stage,
                            recompute: false,
                        }
                    },
                );
                self.stage_completed[stage] = now;
            }
        }
    }

    fn handle(&mut self, msg: MasterMsg) -> Result<(), RuntimeError> {
        match msg {
            MasterMsg::TaskDone {
                exec,
                attempt,
                output,
                preaggregated,
                cache_hit,
                cached_keys,
            } => self.on_task_done(exec, attempt, output, preaggregated, cache_hit, cached_keys),
            MasterMsg::TaskFailed {
                exec,
                attempt,
                reason,
            } => self.on_task_failed(exec, attempt, reason),
            MasterMsg::Evict { exec } => {
                self.on_executor_lost(exec, LossKind::Eviction);
                Ok(())
            }
            MasterMsg::FailReserved { exec } => {
                self.on_executor_lost(exec, LossKind::ReservedFailure);
                Ok(())
            }
        }
    }

    /// Administrative processing of a payload the epoch fence rejected.
    /// The executor freed a worker slot whether or not the master honors
    /// the report, so slot, pin, and idempotence bookkeeping still apply —
    /// but no commit, task-state change, or retry charge may result.
    ///
    /// A stale-stamped report from an attempt the master still considers
    /// current is impossible (prepare quiesces every current attempt
    /// before the epoch can advance, and an attempt's report is stamped
    /// at or above its launch epoch); if one ever arrives it falls
    /// through to the normal handler, whose own staleness belts keep the
    /// job live rather than wedging a Running task forever.
    fn handle_fenced(&mut self, msg: MasterMsg) -> Result<(), RuntimeError> {
        let (exec, attempt) = match &msg {
            MasterMsg::TaskDone { exec, attempt, .. }
            | MasterMsg::TaskFailed { exec, attempt, .. } => (*exec, *attempt),
            // Resource-manager notices ride the un-fenced Direct path;
            // one arriving here is already epoch-agnostic.
            MasterMsg::Evict { .. } | MasterMsg::FailReserved { .. } => return self.handle(msg),
        };
        let current = self
            .attempt_of
            .get(&attempt)
            .map(|&(f, i)| {
                matches!(
                    &self.tasks[f][i],
                    TaskState::Running { attempts } if attempts.iter().any(|&(a, _)| a == attempt)
                )
            })
            .unwrap_or(false);
        if current {
            return self.handle(msg);
        }
        if !self.completed_attempts.insert(attempt) {
            return Ok(());
        }
        self.release_attempt_pins(attempt);
        if let Some(info) = self.executors.get_mut(&exec) {
            if info.alive {
                info.busy = info.busy.saturating_sub(1);
            }
        }
        self.attempt_of.remove(&attempt);
        self.launch_times.remove(&attempt);
        self.speculative.remove(&attempt);
        self.attempt_epochs.remove(&attempt);
        Ok(())
    }

    /// Total in-flight attempts (the prepare phase's quiesce condition
    /// counts these down to zero).
    fn running_attempts(&self) -> usize {
        self.tasks
            .iter()
            .flatten()
            .map(|t| match t {
                TaskState::Running { attempts } => attempts.len(),
                _ => 0,
            })
            .sum()
    }

    /// Opens a reconfiguration transaction: journals the request and
    /// either admits it into the prepare phase or aborts it on the spot
    /// (another transaction in flight, or an infeasible change). Returns
    /// the transaction id.
    fn request_reconfig(&mut self, plan: ReconfigPlan, trigger: ReconfigTrigger) -> u64 {
        let id = self.next_reconfig_id;
        self.next_reconfig_id += 1;
        self.journal.emit(
            None,
            JobEvent::ReconfigRequested {
                reconfig: id,
                trigger,
                change: plan.change,
            },
        );
        if self.reconfig.is_some() {
            self.journal.emit(
                None,
                JobEvent::ReconfigAborted {
                    reconfig: id,
                    reason: "another reconfiguration is already in flight".into(),
                },
            );
            return id;
        }
        if let Err(reason) = self.reconfig_feasible(plan.change) {
            self.journal.emit(
                None,
                JobEvent::ReconfigAborted {
                    reconfig: id,
                    reason,
                },
            );
            return id;
        }
        self.reconfig = Some(ActiveReconfig {
            id,
            plan,
            quiesce_wait: self.running_attempts(),
            deadline: self.clock.now()
                + Duration::from_millis(self.job.config.reconfig_prepare_timeout_ms),
        });
        id
    }

    /// Whether a change can possibly commit, checked at request time so
    /// a doomed transaction aborts before pausing the scheduler.
    fn reconfig_feasible(&self, change: ReconfigChange) -> Result<(), String> {
        match change {
            ReconfigChange::MigrateStage { stage, to } => {
                if stage >= self.meta.n_stages {
                    return Err(format!(
                        "stage {stage} does not exist (plan has {} stages)",
                        self.meta.n_stages
                    ));
                }
                if to == Placement::Transient && self.pool_candidates(Placement::Transient) == 0 {
                    return Err("no alive transient executor to migrate onto".into());
                }
                Ok(())
            }
            ReconfigChange::Repartition { fop, parallelism } => {
                if fop >= self.tasks.len() {
                    return Err(format!(
                        "fop {fop} does not exist (plan has {} fops)",
                        self.tasks.len()
                    ));
                }
                if parallelism == 0 {
                    return Err("cannot repartition to zero tasks".into());
                }
                let untouched = self.tasks[fop]
                    .iter()
                    .all(|t| matches!(t, TaskState::Pending))
                    && self.first_attempted[fop].iter().all(|&b| !b);
                if !untouched {
                    return Err(format!(
                        "fop {fop} already has launched or finished tasks; repartition \
                         applies only to pending stages"
                    ));
                }
                let producers_clean = self.job.plan.in_edges(fop).iter().all(|e| {
                    self.tasks[e.src]
                        .iter()
                        .all(|t| !matches!(t, TaskState::Done { .. }))
                });
                if !producers_clean {
                    return Err(format!(
                        "a producer of fop {fop} already committed output bucketed at the \
                         old parallelism"
                    ));
                }
                // One-to-one edges pair task i with task i: shrinking the
                // consumer below the producer (or growing the producer
                // past the consumer) would orphan partner outputs — data
                // silently dropped, not rebucketed.
                for e in self.job.plan.in_edges(fop) {
                    if e.dep == DepType::OneToOne && parallelism < self.parallelism[e.src] {
                        return Err(format!(
                            "fop {fop} has a one-to-one input from fop {} ({} tasks); \
                             repartitioning below that would orphan producer outputs",
                            e.src, self.parallelism[e.src]
                        ));
                    }
                }
                for e in self.job.plan.out_edges(fop) {
                    if e.dep == DepType::OneToOne && parallelism > self.parallelism[e.dst] {
                        return Err(format!(
                            "fop {fop} feeds fop {} one-to-one ({} tasks); repartitioning \
                             past that would orphan its own outputs",
                            e.dst, self.parallelism[e.dst]
                        ));
                    }
                }
                Ok(())
            }
            ReconfigChange::DrainTransient { .. } => {
                if self.pool_candidates(Placement::Transient) < 2 {
                    return Err("draining needs at least two alive transient executors \
                         (one to drain, one to keep running transient tasks)"
                        .into());
                }
                Ok(())
            }
        }
    }

    /// Alive, schedulable executors of a pool (not blacklisted, not
    /// already drained).
    fn pool_candidates(&self, kind: Placement) -> usize {
        self.executors
            .iter()
            .filter(|(id, e)| {
                e.alive
                    && e.handle.kind == kind
                    && !self.blacklisted.contains(id)
                    && !self.drained.contains(id)
            })
            .count()
    }

    /// Drives the in-flight transaction one step per loop iteration:
    /// commit once quiesced, abort once past the prepare deadline. Also
    /// hosts the eviction-storm policy trigger.
    fn pump_reconfig(&mut self) {
        self.maybe_fire_storm_policy();
        let Some(txn) = self.reconfig else {
            return;
        };
        let quiesced = self.running_attempts() == 0 && self.deferred_pushes.is_empty();
        if quiesced {
            self.journal.emit(
                None,
                JobEvent::ReconfigPrepared {
                    reconfig: txn.id,
                    quiesced: txn.quiesce_wait,
                },
            );
            match self.apply_change(txn.plan.change) {
                Ok(()) => {
                    let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
                    self.journal.emit(None, JobEvent::EpochAdvanced { epoch });
                    self.journal.emit(
                        None,
                        JobEvent::ReconfigCommitted {
                            reconfig: txn.id,
                            change: txn.plan.change,
                            epoch,
                        },
                    );
                    self.reconfig = None;
                    self.broadcast_epoch(epoch);
                }
                Err(reason) => self.abort_reconfig(reason),
            }
        } else if self.clock.now() >= txn.deadline {
            self.abort_reconfig(format!(
                "prepare timed out after {} ms without quiescing",
                self.job.config.reconfig_prepare_timeout_ms
            ));
        }
    }

    /// The policy hook: once `reconfig_storm_threshold` evictions have
    /// landed, degrade transient-placed work to the reserved pool, one
    /// stage per transaction (candidates disappear as they migrate, so
    /// the hook naturally stops firing).
    fn maybe_fire_storm_policy(&mut self) {
        let threshold = self.job.config.reconfig_storm_threshold;
        if threshold == 0 || self.reconfig.is_some() || self.evictions_seen < threshold {
            return;
        }
        let candidate = (0..self.meta.n_stages).find(|&s| {
            self.job.plan.stage_fops(s).iter().any(|&f| {
                self.placement[f] == Placement::Transient
                    && self.tasks[f]
                        .iter()
                        .any(|t| !matches!(t, TaskState::Done { .. }))
            })
        });
        if let Some(stage) = candidate {
            self.request_reconfig(
                ReconfigPlan::from(ReconfigChange::MigrateStage {
                    stage,
                    to: Placement::Reserved,
                }),
                ReconfigTrigger::Policy,
            );
        }
    }

    /// Rolls back the in-flight transaction, if any. Nothing was applied
    /// during prepare, so rollback is the act of not applying: the old
    /// placement is intact and scheduling resumes on it immediately.
    fn abort_reconfig(&mut self, reason: String) {
        if let Some(txn) = self.reconfig.take() {
            self.journal.emit(
                None,
                JobEvent::ReconfigAborted {
                    reconfig: txn.id,
                    reason,
                },
            );
        }
    }

    /// Applies a change at commit point (the job is quiesced). An error
    /// aborts the transaction; every partial effect an erroring path may
    /// leave behind (extra block copies on reserved stores) is additive
    /// and harmless under the old placement.
    fn apply_change(&mut self, change: ReconfigChange) -> Result<(), String> {
        // The world may have moved between request and commit (evictions
        // during prepare); re-check feasibility before touching state.
        self.reconfig_feasible(change)?;
        match change {
            ReconfigChange::MigrateStage { stage, to } => {
                for f in 0..self.placement.len() {
                    if self.meta.stage_of[f] == stage {
                        self.placement[f] = to;
                    }
                }
                // Receiver assignments reflect the old pool; drop the
                // ones that have not produced data yet so the next
                // scheduling pass re-derives them under the new pool.
                let tasks = &self.tasks;
                let stage_of = &self.meta.stage_of;
                self.assigned.retain(|&(f, i), _| {
                    stage_of[f] != stage || matches!(tasks[f][i], TaskState::Done { .. })
                });
                Ok(())
            }
            ReconfigChange::Repartition { fop, parallelism } => {
                self.tasks[fop] = vec![TaskState::Pending; parallelism];
                self.first_attempted[fop] = vec![false; parallelism];
                self.parallelism[fop] = parallelism;
                self.assigned.retain(|&(f, _), _| f != fop);
                // Shuffle buckets are keyed by consumer parallelism and
                // broadcast concatenations by producer identity; both may
                // reference the old partitioning — rebuild on demand.
                self.routed.clear();
                self.side_cache.clear();
                Ok(())
            }
            ReconfigChange::DrainTransient { nth } => {
                let candidates: Vec<ExecId> = self
                    .executors
                    .iter()
                    .filter(|(id, e)| {
                        e.alive
                            && e.handle.kind == Placement::Transient
                            && !self.blacklisted.contains(id)
                            && !self.drained.contains(id)
                    })
                    .map(|(&id, _)| id)
                    .collect();
                // Feasibility re-checked above guarantees candidates,
                // but a crash-recovered master may disagree with the
                // requesting one — abort rather than index into nothing.
                let Some(&victim) = candidates.get(nth % candidates.len().max(1)) else {
                    return Err("no drain candidate survived the prepare phase".into());
                };
                self.migrate_blocks_off(victim)?;
                self.drained.insert(victim);
                Ok(())
            }
        }
    }

    /// Moves every output whose *only* location is `victim` onto an
    /// alive reserved store, then retires the victim's copies. Performed
    /// at commit point under quiescence, so nothing is pinned. A block
    /// no reserved store can take aborts the drain; copies admitted
    /// before the failure stay (each was recorded as a valid location
    /// the moment it landed).
    fn migrate_blocks_off(&mut self, victim: ExecId) -> Result<(), String> {
        let mut on_victim: Vec<(FopId, usize)> = Vec::new();
        for f in 0..self.tasks.len() {
            for i in 0..self.tasks[f].len() {
                if matches!(
                    &self.tasks[f][i],
                    TaskState::Done { locations } if locations.contains(&victim)
                ) {
                    on_victim.push((f, i));
                }
            }
        }
        let reserved: Vec<ExecId> = self
            .executors
            .iter()
            .filter(|(id, e)| {
                e.alive && e.handle.kind == Placement::Reserved && !self.blacklisted.contains(id)
            })
            .map(|(&id, _)| id)
            .collect();
        for &(f, i) in &on_victim {
            let sole = matches!(
                &self.tasks[f][i],
                TaskState::Done { locations } if locations.len() == 1
            );
            // Sink-safe outputs and multi-location blocks need no copy:
            // dropping the victim's location below loses nothing.
            if !sole || self.result_parts.contains_key(&(f, i)) {
                continue;
            }
            let Some(output) = self.outputs.get(&(f, i)).map(Arc::clone) else {
                continue;
            };
            let r = BlockRef::Output { fop: f, index: i };
            let mut admitted = None;
            for &d in &reserved {
                let ok = self
                    .executors
                    .get(&d)
                    .map(|info| info.store.lock().admit(r, &output).is_ok())
                    .unwrap_or(false);
                if ok {
                    admitted = Some(d);
                    break;
                }
            }
            let Some(d) = admitted else {
                return Err(format!(
                    "no reserved store had headroom for block {f}.{i} ({} B)",
                    block_bytes(&output)
                ));
            };
            if let TaskState::Done { locations } = &mut self.tasks[f][i] {
                locations.push(d);
            }
        }
        // Every sole-location block now has a reserved copy: retire the
        // victim's locations and release its store residency.
        for (f, i) in on_victim {
            if let TaskState::Done { locations } = &mut self.tasks[f][i] {
                locations.retain(|&l| l != victim);
            }
            if let Some(info) = self.executors.get(&victim) {
                info.store
                    .lock()
                    .remove_unpinned(BlockRef::Output { fop: f, index: i });
            }
            self.append_wal_locations(f, i).map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    /// Reliably tells every alive executor about the committed epoch.
    /// The envelopes of these (and all later) messages already carry the
    /// new stamp; the explicit payload lets the executor adopt it even
    /// with no task traffic.
    fn broadcast_epoch(&mut self, epoch: u64) {
        for info in self.executors.values_mut() {
            if info.alive {
                info.out.send(ExecutorMsg::AdvanceEpoch(epoch));
            }
        }
    }

    fn on_task_done(
        &mut self,
        exec: ExecId,
        attempt: AttemptId,
        output: Block,
        preaggregated: usize,
        cache_hit: bool,
        cached_keys: Vec<CacheKey>,
    ) -> Result<(), RuntimeError> {
        // Idempotence by construction: one terminal report per attempt is
        // ever processed. A duplicate delivery that slipped past the
        // dedup window must not re-commit, re-charge, or free a busy slot
        // a second time.
        if !self.completed_attempts.insert(attempt) {
            return Ok(());
        }
        // The attempt is over, win or lose: its input pins release before
        // any staleness check, so even a discarded report frees memory.
        self.release_attempt_pins(attempt);
        // Refresh the container manager's view of the executor cache.
        if let Some(info) = self.executors.get_mut(&exec) {
            if info.alive {
                info.cached = cached_keys.into_iter().collect();
                info.busy = info.busy.saturating_sub(1);
            }
        }
        // The commit protocol: an output is processed exactly once, and
        // only for an attempt the master considers current. Stale attempts
        // (evicted containers, fenced masters, losing speculative
        // duplicates) are discarded.
        let Some(&(fop, index)) = self.attempt_of.get(&attempt) else {
            return Ok(());
        };
        let valid = matches!(
            &self.tasks[fop][index],
            TaskState::Running { attempts } if attempts.iter().any(|&(a, _)| a == attempt)
        );
        if !valid {
            return Ok(());
        }
        // The belt under the wire-level epoch fence: an attempt launched
        // before the last committed reconfiguration never commits after
        // it. Unreachable when the fence holds (prepare quiesces every
        // current attempt before the epoch advances), but a discarded
        // report must keep the job live: the task reverts to pending and
        // relaunches under the new epoch.
        let launch_epoch = self.attempt_epochs.remove(&attempt).unwrap_or(0);
        if launch_epoch != self.epoch.load(Ordering::Relaxed) {
            if let TaskState::Running { attempts } = &mut self.tasks[fop][index] {
                attempts.retain(|&(a, _)| a != attempt);
                if attempts.is_empty() {
                    self.tasks[fop][index] = TaskState::Pending;
                }
            }
            self.attempt_of.remove(&attempt);
            self.launch_times.remove(&attempt);
            self.speculative.remove(&attempt);
            return Ok(());
        }
        self.attempt_of.remove(&attempt);
        if let Some(t0) = self.launch_times.remove(&attempt) {
            self.fop_durations[fop]
                .push(self.clock.now().saturating_duration_since(t0).as_millis() as u64);
        }
        // First commit wins: if this was the speculative duplicate, it
        // beat the original. Either way every other in-flight attempt of
        // this task becomes a loser — unregistered now, so its eventual
        // completion is stale and only frees its executor slot.
        let speculative = self.speculative.remove(&attempt);
        if let TaskState::Running { attempts } = &self.tasks[fop][index] {
            let losers: Vec<AttemptId> = attempts
                .iter()
                .map(|&(a, _)| a)
                .filter(|&a| a != attempt)
                .collect();
            for a in losers {
                self.attempt_of.remove(&a);
                self.launch_times.remove(&a);
                self.speculative.remove(&a);
                self.attempt_epochs.remove(&a);
            }
        }
        let locations = self.commit_locations(fop, index, exec, &output)?;
        let bytes = block_bytes(&output);
        let pushed =
            self.placement[fop] == Placement::Transient && locations.iter().any(|l| l != &exec);
        if self.job.plan.out_edges(fop).is_empty() {
            // Terminal operator: the output is written to the job sink and
            // is safe regardless of container fate. Sink and location
            // table share the block.
            self.result_parts.insert((fop, index), Arc::clone(&output));
        }
        // A recommit after a revert replaces the output; anything routed
        // from the old version must not be served for the new one.
        self.invalidate_derived(fop, index);
        self.outputs.insert((fop, index), output);
        self.tasks[fop][index] = TaskState::Done { locations };
        self.submit_eager_routing(fop, index);
        self.journal.emit(
            Some(self.meta.stage_of[fop]),
            JobEvent::TaskCommitted {
                fop,
                index,
                attempt,
                exec,
                speculative,
                bytes_pushed: if pushed { bytes } else { 0 },
                preaggregated,
                cache_hit,
            },
        );
        // The commit's durable half: `TaskCommitted` carries no location
        // set, so the location table rides its own WAL frame.
        self.append_wal_locations(fop, index)?;

        self.done_events += 1;
        if self.job.config.snapshot_every > 0
            && self
                .done_events
                .is_multiple_of(self.job.config.snapshot_every)
        {
            self.take_snapshot();
        }
        self.fire_due_faults()?;
        Ok(())
    }

    /// Releases the input blocks an attempt pinned at launch. Tolerates
    /// unknown attempts: master unit tests (and fenced pre-restart
    /// attempts) report completions the pin table never saw.
    ///
    /// Releasing pins is the one event that creates durable headroom on
    /// a store, so pushes parked against that executor become due
    /// immediately. Timed backoff alone starves here: the scheduler
    /// re-pins freed bytes for the next waiting task within the same
    /// loop iteration, while a clock-gated retry lands milliseconds
    /// late and finds the store full again.
    fn release_attempt_pins(&mut self, attempt: AttemptId) {
        if let Some((exec, refs)) = self.attempt_pins.remove(&attempt) {
            if let Some(info) = self.executors.get(&exec) {
                let mut s = info.store.lock();
                for r in refs {
                    s.unpin(r);
                }
            }
            let now = self.clock.now();
            let base = self.job.config.retransmit_base_ms.max(1);
            for p in &mut self.deferred_pushes {
                if p.dest == exec {
                    p.next_try = now;
                    p.backoff_ms = base;
                }
            }
        }
    }

    /// Handles a user-code failure (error or caught panic) of one task
    /// attempt: reverts the attempt, charges the task's retry budget and
    /// the executor's fault threshold, and fails the job terminally once
    /// the budget is exhausted.
    fn on_task_failed(
        &mut self,
        exec: ExecId,
        attempt: AttemptId,
        reason: String,
    ) -> Result<(), RuntimeError> {
        // Same idempotence gate as `on_task_done`: an attempt reports
        // terminally once, however many times the network replays it.
        if !self.completed_attempts.insert(attempt) {
            return Ok(());
        }
        self.release_attempt_pins(attempt);
        if let Some(info) = self.executors.get_mut(&exec) {
            if info.alive {
                info.busy = info.busy.saturating_sub(1);
            }
        }
        // Stale failures (already-discarded attempts) only free the slot.
        let Some(&(fop, index)) = self.attempt_of.get(&attempt) else {
            return Ok(());
        };
        let current = matches!(
            &self.tasks[fop][index],
            TaskState::Running { attempts } if attempts.iter().any(|&(a, _)| a == attempt)
        );
        if !current {
            return Ok(());
        }
        self.attempt_of.remove(&attempt);
        self.launch_times.remove(&attempt);
        self.speculative.remove(&attempt);
        self.attempt_epochs.remove(&attempt);
        self.journal.emit(
            Some(self.meta.stage_of[fop]),
            JobEvent::TaskFailed {
                fop,
                index,
                attempt,
                exec,
            },
        );
        // An allocation failure mid-prepare is a signal the quiesce is
        // fighting memory pressure: roll the transaction back rather
        // than let the prepare window starve the retry.
        if self.reconfig.is_some() && reason.contains("allocation failure") {
            self.abort_reconfig(format!(
                "allocation failure in task {fop}.{index} mid-prepare"
            ));
        }
        if let TaskState::Running { attempts } = &mut self.tasks[fop][index] {
            attempts.retain(|&(a, _)| a != attempt);
            if attempts.is_empty() {
                self.tasks[fop][index] = TaskState::Pending;
            }
        }

        let failures = {
            let f = self.task_failure_counts.entry((fop, index)).or_insert(0);
            *f += 1;
            *f
        };
        if failures >= self.job.config.max_task_attempts {
            return Err(RuntimeError::TaskFailed {
                fop,
                index,
                attempts: failures,
                reason,
                events: self.frozen_journal().to_events(),
            });
        }

        let exec_faults = {
            let f = self.exec_failures.entry(exec).or_insert(0);
            *f += 1;
            *f
        };
        if exec_faults >= self.job.config.executor_fault_threshold
            && !self.blacklisted.contains(&exec)
        {
            self.blacklist(exec);
        }
        Ok(())
    }

    /// Blacklists an executor after repeated user-code failures: it gets
    /// no new work but stays alive, so outputs already committed to it
    /// remain readable. A replacement container takes over its share.
    fn blacklist(&mut self, exec: ExecId) {
        self.blacklisted.insert(exec);
        self.journal.emit(None, JobEvent::ExecutorBlacklisted(exec));
        // Re-route receiver assignments that have not yet produced data.
        let stale: Vec<(FopId, usize)> = self
            .assigned
            .iter()
            .filter(|(&(f, i), &e)| {
                e == exec && !matches!(self.tasks[f][i], TaskState::Done { .. })
            })
            .map(|(&k, _)| k)
            .collect();
        for k in stale {
            self.assigned.remove(&k);
        }
        // An unknown executor (a fault-injected blacklist of an id the
        // master never spawned) has nothing to replace.
        let Some(kind) = self.executors.get(&exec).map(|e| e.handle.kind) else {
            return;
        };
        let replacement = self.spawn_executor(kind);
        self.journal
            .emit(None, JobEvent::ContainerAdded(replacement));
    }

    /// Where a completed task's output now lives: reserved anchors keep it
    /// locally; transient tasks push it to the reserved executors assigned
    /// to their consumer tasks (escaping evictions); transient tasks with
    /// only transient consumers keep it locally, still at risk.
    ///
    /// Every location is backed by a store admission. The producer-local
    /// copy admits unconditionally (spilling itself to disk when memory
    /// has no headroom — a commit never stalls on its own output). A
    /// cross-executor push the destination cannot take is *deferred*
    /// (journaled `PushDeferred`, retried with backoff); only an output
    /// larger than a whole store budget fails the job, as
    /// [`RuntimeError::MemoryExceeded`].
    fn commit_locations(
        &mut self,
        fop: FopId,
        index: usize,
        exec: ExecId,
        output: &Block,
    ) -> Result<Vec<ExecId>, RuntimeError> {
        let r = BlockRef::Output { fop, index };
        let mut dests: Vec<ExecId> = Vec::new();
        if self.placement[fop] != Placement::Reserved {
            for e in self.job.plan.out_edges(fop) {
                if self.placement[e.dst] != Placement::Reserved {
                    continue;
                }
                for di in 0..self.parallelism[e.dst] {
                    if let Some(&d) = self.assigned.get(&(e.dst, di)) {
                        if d != exec && !dests.contains(&d) {
                            dests.push(d);
                        }
                    }
                }
            }
        }
        let mut locations: Vec<ExecId> = Vec::new();
        for d in dests {
            let Some(info) = self.executors.get(&d) else {
                continue;
            };
            if !info.alive {
                continue;
            }
            let admitted = info.store.lock().admit(r, output);
            match admitted {
                Ok(()) => locations.push(d),
                // A spill-I/O fault while making room is the same outcome
                // as no room: the push defers and retries like any other
                // backpressured push — a disk hiccup never fails the job.
                Err(StoreError::NoHeadroom { .. } | StoreError::SpillUnreadable { .. }) => {
                    self.journal.emit(
                        Some(self.meta.stage_of[fop]),
                        JobEvent::PushDeferred {
                            fop,
                            index,
                            exec: d,
                            bytes: block_bytes(output),
                        },
                    );
                    self.deferred_pushes.push(DeferredPush {
                        fop,
                        index,
                        dest: d,
                        next_try: self.clock.now()
                            + Duration::from_millis(self.job.config.retransmit_base_ms.max(1)),
                        backoff_ms: self.job.config.retransmit_base_ms.max(1),
                    });
                }
                Err(StoreError::TooLarge { bytes, budget }) => {
                    return Err(RuntimeError::MemoryExceeded {
                        bytes,
                        budget,
                        context: format!("push of output {fop}.{index} to executor {d}"),
                    });
                }
            }
        }
        if locations.is_empty() {
            // No push landed (reserved anchor, transient-only consumers,
            // or every destination backpressured): the producer keeps the
            // output, spilling its own memory if it must.
            let admitted = self
                .executors
                .get(&exec)
                .map(|info| info.store.lock().admit_or_spill(r, output));
            match admitted {
                None | Some(Ok(())) => {}
                Some(Err(StoreError::TooLarge { bytes, budget })) => {
                    return Err(RuntimeError::MemoryExceeded {
                        bytes,
                        budget,
                        context: format!("output {fop}.{index} committed on executor {exec}"),
                    });
                }
                // A spill-write fault left the producer unable to account
                // the block. The data itself lives in the master's shared
                // location table either way, so the commit stands; only
                // the store-side residency record is missing, and an
                // eviction of this executor reverts the task as usual.
                Some(Err(StoreError::NoHeadroom { .. } | StoreError::SpillUnreadable { .. })) => {}
            }
            locations.push(exec);
        }
        Ok(locations)
    }

    fn fire_due_faults(&mut self) -> Result<(), RuntimeError> {
        while self.fault_cursor_evict < self.faults.evictions.len()
            && self.faults.evictions[self.fault_cursor_evict].0 <= self.done_events
        {
            let (_, k) = self.faults.evictions[self.fault_cursor_evict];
            self.fault_cursor_evict += 1;
            if let Some(victim) = self.nth_alive(Placement::Transient, k) {
                self.on_executor_lost(victim, LossKind::Eviction);
            }
        }
        while self.fault_cursor_fail < self.faults.reserved_failures.len()
            && self.faults.reserved_failures[self.fault_cursor_fail].0 <= self.done_events
        {
            let (_, k) = self.faults.reserved_failures[self.fault_cursor_fail];
            self.fault_cursor_fail += 1;
            if let Some(victim) = self.nth_alive(Placement::Reserved, k) {
                self.on_executor_lost(victim, LossKind::ReservedFailure);
            }
        }
        while self.fault_cursor_shrink < self.faults.budget_shrinks.len()
            && self.faults.budget_shrinks[self.fault_cursor_shrink].0 <= self.done_events
        {
            let (_, k, bytes) = self.faults.budget_shrinks[self.fault_cursor_shrink];
            self.fault_cursor_shrink += 1;
            if let Some(victim) = self.nth_alive(Placement::Reserved, k) {
                if let Some(info) = self.executors.get(&victim) {
                    // The store spills what it can and journals the
                    // applied budget (clamped up to pinned occupancy).
                    info.store.lock().set_budget(bytes);
                }
            }
        }
        while self.fault_cursor_reconfig < self.faults.reconfigs.len()
            && self.faults.reconfigs[self.fault_cursor_reconfig].after_done_events
                <= self.done_events
        {
            let scheduled = self.faults.reconfigs[self.fault_cursor_reconfig];
            self.fault_cursor_reconfig += 1;
            self.request_reconfig(scheduled.plan, scheduled.trigger);
        }
        if let Some(n) = self.faults.master_failure_after {
            if !self.master_failed && self.done_events >= n {
                self.master_failed = true;
                if self.wal.is_some() {
                    // With a WAL armed the legacy knob exercises true
                    // log recovery instead of the volatile snapshot.
                    self.crash_and_recover(None)?;
                } else {
                    self.simulate_master_failure();
                }
            }
        }
        Ok(())
    }

    fn nth_alive(&self, kind: Placement, k: usize) -> Option<ExecId> {
        let alive: Vec<ExecId> = self
            .executors
            .iter()
            .filter(|(_, e)| e.alive && e.handle.kind == kind)
            .map(|(&id, _)| id)
            .collect();
        if alive.is_empty() {
            None
        } else {
            Some(alive[k % alive.len()])
        }
    }

    /// Handles the loss of a container: eviction (transient), machine
    /// failure (reserved), or a heartbeat-detector death sentence.
    /// Uncommitted attempts revert to pending; outputs whose only
    /// location died are reverted, which for reserved failures re-opens
    /// completed ancestor stages exactly as §3.2.6 prescribes.
    fn on_executor_lost(&mut self, exec: ExecId, kind_of_loss: LossKind) {
        let Some(info) = self.executors.get_mut(&exec) else {
            return;
        };
        if !info.alive {
            return;
        }
        info.alive = false;
        info.cached.clear();
        // The kill is a resource-manager action, delivered out-of-band:
        // it reaches even an executor the network has partitioned away.
        info.handle.stop();
        // Its memory died with it: drop the store's contents (and spill
        // files) without journaling — the loss event itself tells the
        // invariant checker to clear the executor's replayed state.
        info.store.lock().clear_silent();
        let kind = info.handle.kind;
        self.attempt_pins.retain(|_, (e, _)| *e != exec);
        self.deferred_pushes.retain(|p| p.dest != exec);
        // A drained executor that finally dies needs no special recovery
        // (its blocks migrated at drain time); it just stops counting
        // against the drain bookkeeping.
        self.drained.remove(&exec);
        if kind_of_loss == LossKind::Eviction {
            self.evictions_seen += 1;
        }
        // Any loss invalidates the quiesce a prepare phase is waiting
        // for: roll the transaction back and let normal recovery run
        // under the old placement (which is still fully runnable).
        if self.reconfig.is_some() {
            self.abort_reconfig(format!("executor {exec} lost mid-prepare"));
        }
        // Sync the stage bracket first: a commit in the same frame may
        // have just completed a stage whose `StageCompleted` is not yet
        // logged, and the reopen below must nest inside it.
        self.note_stage_transitions();
        self.journal.emit(
            None,
            match kind_of_loss {
                LossKind::ReservedFailure => JobEvent::ReservedFailed(exec),
                LossKind::Eviction => JobEvent::ContainerEvicted(exec),
                LossKind::DeclaredDead => JobEvent::ExecutorDeclaredDead(exec),
            },
        );

        let complete_before: Vec<bool> = (0..self.job.plan.stage_dag.stages.len())
            .map(|s| self.stage_complete(s))
            .collect();

        // Revert running attempts scheduled on the lost executor. A task
        // racing a speculative duplicate keeps its surviving attempts.
        let mut dropped_attempts: Vec<AttemptId> = Vec::new();
        for ts in &mut self.tasks {
            for t in ts.iter_mut() {
                if let TaskState::Running { attempts } = t {
                    dropped_attempts.extend(
                        attempts
                            .iter()
                            .filter(|&&(_, e)| e == exec)
                            .map(|&(a, _)| a),
                    );
                    attempts.retain(|&(_, e)| e != exec);
                    if attempts.is_empty() {
                        *t = TaskState::Pending;
                    }
                }
            }
        }
        for a in dropped_attempts {
            self.attempt_of.remove(&a);
            self.launch_times.remove(&a);
            self.speculative.remove(&a);
            self.attempt_epochs.remove(&a);
        }
        // Destroy data whose only copy lived on the lost executor.
        for f in 0..self.tasks.len() {
            for i in 0..self.tasks[f].len() {
                let lost = if let TaskState::Done { locations } = &mut self.tasks[f][i] {
                    locations.retain(|&l| l != exec);
                    locations.is_empty() && !self.result_parts.contains_key(&(f, i))
                } else {
                    false
                };
                if lost {
                    self.outputs.remove(&(f, i));
                    self.invalidate_derived(f, i);
                    self.tasks[f][i] = TaskState::Pending;
                    self.journal.emit(
                        Some(self.meta.stage_of[f]),
                        JobEvent::TaskReverted { fop: f, index: i },
                    );
                }
            }
        }
        // Invalidate receiver assignments pointing at the lost executor.
        self.assigned.retain(|_, &mut e| e != exec);

        // Completed stages the loss re-opened (reserved-failure
        // recomputation, §3.2.6) are logged eagerly with `recompute:
        // true`; flipping the bracket state here keeps
        // `note_stage_transitions` from double-logging them.
        for (s, was_complete) in complete_before.iter().enumerate() {
            if *was_complete && !self.stage_complete(s) {
                self.journal.emit(
                    Some(s),
                    JobEvent::StageReopened {
                        stage: s,
                        recompute: true,
                    },
                );
                self.stage_completed[s] = false;
            }
        }

        // The resource manager immediately provides a replacement.
        let replacement = self.spawn_executor(kind);
        self.journal
            .emit(None, JobEvent::ContainerAdded(replacement));
    }

    /// Simulates a master crash: all in-memory progress is lost and the
    /// replacement master resumes from the replicated snapshot.
    ///
    /// Attempt accounting (retry budgets, executor fault counts) is
    /// in-memory master state, so it resets with the crash; only progress
    /// metadata survives. `completed_attempts` survives too — it is the
    /// replicated completion log the idempotent handlers key on, and a
    /// restarted master must still reject replays of pre-crash reports.
    /// Chaos-injection bookkeeping deliberately survives — it models the
    /// *test harness's* fault schedule, not master state, keeping
    /// injected faults bounded per task across the restart. Transport
    /// sessions (sequence numbers, dedup windows) also continue: the
    /// in-process model restarts master *state*, not its sockets.
    fn simulate_master_failure(&mut self) {
        // The journal survives: it is part of the replicated progress
        // record (and why journal-derived metrics never roll back).
        self.journal.emit(None, JobEvent::MasterRecovered);
        // An in-flight transaction is master in-memory state: the
        // restarted master has never heard of it, so it resolves as an
        // abort (nothing was applied; the restored placement is the old
        // one and stays runnable).
        self.abort_reconfig("master restarted mid-transaction".into());
        let done_before: Vec<Vec<bool>> = self
            .tasks
            .iter()
            .map(|ts| {
                ts.iter()
                    .map(|t| matches!(t, TaskState::Done { .. }))
                    .collect()
            })
            .collect();
        let snap = self.snapshot.clone().unwrap_or_else(|| ProgressSnapshot {
            tasks: self
                .tasks
                .iter()
                .map(|ts| vec![TaskState::Pending; ts.len()])
                .collect(),
            outputs: HashMap::new(),
            result_parts: BTreeMap::new(),
            first_attempted: self
                .first_attempted
                .iter()
                .map(|ts| vec![false; ts.len()])
                .collect(),
            next_attempt: self.next_attempt,
            epoch: 0,
        });
        // Pins belong to attempts of the failed master; every one of them
        // is fenced below, so their holds on executor memory lift now
        // (the executors outlive the master restart, their stores with
        // them). Deferred pushes die with the failed master's in-memory
        // queue too: the producer-local location still serves the data.
        let pins: Vec<(AttemptId, (ExecId, Vec<BlockRef>))> = self.attempt_pins.drain().collect();
        for (_, (exec, refs)) in pins {
            if let Some(info) = self.executors.get(&exec) {
                let mut s = info.store.lock();
                for r in refs {
                    s.unpin(r);
                }
            }
        }
        self.deferred_pushes.clear();
        self.tasks = snap.tasks;
        self.outputs = snap.outputs;
        self.result_parts = snap.result_parts;
        // Routing memos derive from the failed master's in-memory outputs;
        // the replacement rebuilds them on demand.
        self.routed.clear();
        self.side_cache.clear();
        self.first_attempted = snap.first_attempted;
        // The epoch is replicated progress: the live cell is already at
        // or above the snapshot (epochs only grow), but a real restart
        // would begin from the snapshot value — restore monotonically.
        self.epoch.fetch_max(snap.epoch, Ordering::Relaxed);
        self.attempt_epochs.clear();
        // Fence all attempts issued by the failed master.
        self.next_attempt = snap.next_attempt.max(self.next_attempt) + 1_000_000;
        self.attempt_of.clear();
        self.assigned.clear();
        self.launch_times.clear();
        self.speculative.clear();
        self.task_failure_counts.clear();
        self.exec_failures.clear();
        for info in self.executors.values_mut() {
            if info.alive {
                info.busy = 0;
            }
        }
        // Reconcile the restored metadata with the resource manager's view
        // of which containers are still alive: data on since-evicted
        // containers is gone.
        let alive: HashSet<ExecId> = self
            .executors
            .iter()
            .filter(|(_, e)| e.alive)
            .map(|(&id, _)| id)
            .collect();
        for f in 0..self.tasks.len() {
            for i in 0..self.tasks[f].len() {
                let lost = if let TaskState::Done { locations } = &mut self.tasks[f][i] {
                    locations.retain(|l| alive.contains(l));
                    locations.is_empty() && !self.result_parts.contains_key(&(f, i))
                } else {
                    false
                };
                if lost {
                    self.outputs.remove(&(f, i));
                    self.tasks[f][i] = TaskState::Pending;
                }
            }
        }
        // Log every commit the restart rolled back (snapshot lag or data
        // on since-lost containers); their recomputation follows.
        for (f, was) in done_before.iter().enumerate() {
            for (i, &was_done) in was.iter().enumerate() {
                if was_done && !matches!(self.tasks[f][i], TaskState::Done { .. }) {
                    self.journal.emit(
                        Some(self.meta.stage_of[f]),
                        JobEvent::TaskReverted { fop: f, index: i },
                    );
                }
            }
        }
    }

    /// The master's durable progress record, built from live state. The
    /// completed-attempt set is sorted so the frame bytes are a pure
    /// function of the state, never of hash-map iteration order.
    fn wal_snapshot(&self) -> WalSnapshot {
        let mut completed_attempts: Vec<AttemptId> =
            self.completed_attempts.iter().copied().collect();
        completed_attempts.sort_unstable();
        let mut committed: Vec<(FopId, usize, Vec<ExecId>)> = Vec::new();
        for f in 0..self.tasks.len() {
            for (i, t) in self.tasks[f].iter().enumerate() {
                if let TaskState::Done { locations } = t {
                    committed.push((f, i, locations.clone()));
                }
            }
        }
        WalSnapshot {
            epoch: self.epoch.load(Ordering::Relaxed),
            next_attempt: self.next_attempt,
            completed_attempts,
            committed,
            first_attempted: self.first_attempted.clone(),
            parallelism: self.parallelism.clone(),
            placement: self.placement.clone(),
            // Store residency reseeds from the Block* events that follow
            // the snapshot; recovery never consumes it, so the snapshot
            // does not chase executor store locks to record it.
            resident: Vec::new(),
        }
    }

    /// Appends (and syncs) a compacting snapshot frame. A no-op without
    /// an armed WAL.
    fn append_wal_snapshot(&mut self) -> Result<(), RuntimeError> {
        let Some(wal) = self.wal.as_ref().map(Arc::clone) else {
            return Ok(());
        };
        let snap = self.wal_snapshot();
        let mut w = wal.lock();
        w.append(&WalRecord::Snapshot(snap))?;
        w.sync()
    }

    /// Appends a snapshot when the writer's event clock says one is due
    /// (`RuntimeConfig::wal_snapshot_every` events since the last).
    fn maybe_wal_snapshot(&mut self) -> Result<(), RuntimeError> {
        let due = match &self.wal {
            Some(wal) => wal.lock().snapshot_due(),
            None => return Ok(()),
        };
        if due {
            self.append_wal_snapshot()?;
        }
        Ok(())
    }

    /// Makes the current location set of task `(fop, index)` durable.
    /// `TaskCommitted` events carry no locations, so every mutation of a
    /// committed output's location set rides its own WAL frame; an empty
    /// set records the output as gone.
    fn append_wal_locations(&mut self, fop: FopId, index: usize) -> Result<(), RuntimeError> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let locations = match self.tasks.get(fop).and_then(|ts| ts.get(index)) {
            Some(TaskState::Done { locations }) => locations.clone(),
            _ => Vec::new(),
        };
        wal.lock().append(&WalRecord::Locations {
            fop,
            index,
            locations,
        })
    }

    /// Evaluates the crash family's triggers at a handler boundary and
    /// kills/recovers the master when one fires.
    fn maybe_crash(&mut self) -> Result<(), RuntimeError> {
        let Some(plan) = self.faults.crashes else {
            return Ok(());
        };
        if self.crashes_injected >= plan.max_crashes || self.wal.is_none() {
            return Ok(());
        }
        let round = self.crashes_injected as u64 + 1;
        let mut due = false;
        if let Some(n) = plan.after_handled_frames {
            due |= self.handled_frames >= n.saturating_mul(round);
        }
        if let Some(k) = plan.every_kth_append {
            let appends = self.wal.as_ref().map_or(0, |w| w.lock().total_appends());
            due |= k > 0 && appends >= k.saturating_mul(round);
        }
        if plan.handler_prob > 0.0 {
            due |= FaultInjector::new(plan.seed)
                .crash_boundary(self.handled_frames)
                .unit()
                < plan.handler_prob;
        }
        if !due {
            return Ok(());
        }
        self.crashes_injected += 1;
        self.crash_and_recover(plan.corruption.as_ref())
    }

    /// Kills the master and rebuilds it from the write-ahead log: the
    /// unsynced WAL suffix is lost (the simulated page cache), optional
    /// seeded corruption mangles the surviving image, and the recovery
    /// scan replays the longest valid prefix.
    fn crash_and_recover(
        &mut self,
        corruption: Option<&WalCorruption>,
    ) -> Result<(), RuntimeError> {
        let Some(wal) = self.wal.as_ref().map(Arc::clone) else {
            // No WAL armed: the legacy replicated-snapshot restart is
            // the only recovery model available.
            self.simulate_master_failure();
            return Ok(());
        };
        let rec = wal.lock().crash_and_recover(corruption)?;
        self.recover_from_wal(rec)
    }

    /// Rebuilds every piece of master state the WAL replay carries:
    /// the completion log, the block location table (refetched from
    /// surviving executor stores), the reconfiguration epoch, and the
    /// shape overlays. Everything else is in-memory state of the dead
    /// master and resets, exactly as in [`Self::simulate_master_failure`].
    fn recover_from_wal(&mut self, rec: RecoveredState) -> Result<(), RuntimeError> {
        // The in-memory journal survives (replicated progress record);
        // the recovery markers are the first thing the new master logs,
        // and law 10 fences every in-flight pre-crash attempt at the
        // `MasterRecovered` mark.
        self.journal.emit(None, JobEvent::MasterRecovered);
        self.journal.emit(
            None,
            JobEvent::WalRecovered {
                frames_replayed: rec.frames_replayed,
                frames_truncated: rec.frames_truncated,
                snapshot_restored: rec.snapshot_restored,
            },
        );
        // An in-flight transaction is in-memory state the recovered
        // master never heard of: it resolves as an abort.
        self.abort_reconfig("master restarted mid-transaction".into());
        // Pins belong to fenced pre-crash attempts; the executors
        // outlive the master, so their memory holds lift now. Deferred
        // pushes die with the dead master's queue.
        let pins: Vec<(AttemptId, (ExecId, Vec<BlockRef>))> = self.attempt_pins.drain().collect();
        for (_, (exec, refs)) in pins {
            if let Some(info) = self.executors.get(&exec) {
                let mut s = info.store.lock();
                for r in refs {
                    s.unpin(r);
                }
            }
        }
        self.deferred_pushes.clear();
        let done_before: Vec<Vec<bool>> = self
            .tasks
            .iter()
            .map(|ts| {
                ts.iter()
                    .map(|t| matches!(t, TaskState::Done { .. }))
                    .collect()
            })
            .collect();

        // Shape overlays: the genesis snapshot makes the replayed shape
        // available from the first frame; if interior corruption
        // destroyed every snapshot, restart from the plan's frozen
        // shape and recompute everything.
        let n_fops = self.job.plan.fops.len();
        if rec.parallelism.len() == n_fops && rec.placement.len() == n_fops {
            self.parallelism = rec.parallelism.clone();
            self.placement = rec.placement.clone();
            self.first_attempted = rec.first_attempted.clone();
        } else {
            self.parallelism = self.job.plan.fops.iter().map(|f| f.parallelism).collect();
            self.placement = self.job.plan.fops.iter().map(|f| f.placement).collect();
            self.first_attempted = self.parallelism.iter().map(|&p| vec![false; p]).collect();
        }
        // Re-apply committed placement changes the replay could not
        // fold by itself (they need the plan's stage table).
        // `Repartition` replays inside the WAL fold; a committed
        // `DrainTransient`'s drained set deliberately persists as
        // harness state, like the legacy restart (DESIGN.md §14).
        for change in &rec.reconfig_changes {
            if let ReconfigChange::MigrateStage { stage, to } = change {
                for f in 0..self.placement.len() {
                    if self.meta.stage_of[f] == *stage {
                        self.placement[f] = *to;
                    }
                }
            }
        }
        if self.first_attempted.len() != n_fops {
            self.first_attempted = self.parallelism.iter().map(|&p| vec![false; p]).collect();
        }
        for f in 0..n_fops {
            if self.first_attempted[f].len() != self.parallelism[f] {
                self.first_attempted[f] = vec![false; self.parallelism[f]];
            }
        }

        self.tasks = self
            .parallelism
            .iter()
            .map(|&p| vec![TaskState::Pending; p])
            .collect();
        self.outputs.clear();
        self.routed.clear();
        self.side_cache.clear();

        let alive: HashSet<ExecId> = self
            .executors
            .iter()
            .filter(|(_, e)| e.alive)
            .map(|(&id, _)| id)
            .collect();
        // Rebuild the location table: every replayed commit whose
        // locations still point at alive executors refetches its block
        // from their stores; sink-safe terminal outputs fall back to
        // the durable result parts; anything else recomputes.
        let mut committed: Vec<((FopId, usize), Vec<ExecId>)> =
            rec.committed.iter().map(|(&k, v)| (k, v.clone())).collect();
        committed.sort_unstable_by_key(|&(k, _)| k);
        for ((f, i), locations) in committed {
            if f >= n_fops || i >= self.parallelism[f] {
                // A frame from a stale shape (or one that survived the
                // CRC by chance): drop it, the task table has no slot.
                continue;
            }
            let locs: Vec<ExecId> = locations
                .into_iter()
                .filter(|l| alive.contains(l))
                .collect();
            let mut block: Option<Block> = None;
            for &l in &locs {
                let fetched = self.executors.get(&l).and_then(|info| {
                    info.store
                        .lock()
                        .get(BlockRef::Output { fop: f, index: i })
                        .ok()
                        .flatten()
                });
                if fetched.is_some() {
                    block = fetched;
                    break;
                }
            }
            let terminal = self.job.plan.out_edges(f).is_empty();
            let block = block.or_else(|| {
                if terminal {
                    self.result_parts.get(&(f, i)).map(Arc::clone)
                } else {
                    None
                }
            });
            let Some(block) = block else {
                continue;
            };
            if terminal {
                self.result_parts.insert((f, i), Arc::clone(&block));
            }
            self.outputs.insert((f, i), block);
            self.tasks[f][i] = TaskState::Done { locations: locs };
        }
        // Result parts of tasks the log no longer believes committed
        // must not leak into the job output: their tasks recompute and
        // re-commit identical bytes.
        let tasks = &self.tasks;
        self.result_parts.retain(|&(f, i), _| {
            matches!(
                tasks.get(f).and_then(|ts| ts.get(i)),
                Some(TaskState::Done { .. })
            )
        });

        // The idempotence keystone is *replaced*, not merged: the WAL's
        // completed-attempt set is the replicated completion log, and
        // pre-crash reports replayed by the network must still bounce.
        self.completed_attempts = rec.completed_attempts.clone();
        // The epoch only moves forward, so pre-crash frames stay fenced.
        self.epoch.fetch_max(rec.epoch, Ordering::Relaxed);
        // Fence every attempt the pre-crash master issued.
        self.next_attempt = rec.max_attempt.max(self.next_attempt) + 1_000_000;
        self.attempt_of.clear();
        self.assigned.clear();
        self.launch_times.clear();
        self.speculative.clear();
        self.task_failure_counts.clear();
        self.exec_failures.clear();
        self.attempt_epochs.clear();
        for info in self.executors.values_mut() {
            if info.alive {
                info.busy = 0;
            }
        }
        // Log every commit the crash rolled back; recomputation follows.
        for (f, was) in done_before.iter().enumerate() {
            for (i, &was_done) in was.iter().enumerate() {
                let now_done = matches!(
                    self.tasks.get(f).and_then(|ts| ts.get(i)),
                    Some(TaskState::Done { .. })
                );
                if was_done && !now_done && f < n_fops && i < self.parallelism[f] {
                    self.journal.emit(
                        Some(self.meta.stage_of[f]),
                        JobEvent::TaskReverted { fop: f, index: i },
                    );
                }
            }
        }
        self.note_stage_transitions();
        // A fresh snapshot compacts the replay for the next crash and
        // resets the writer's snapshot clock.
        self.append_wal_snapshot()
    }

    fn take_snapshot(&mut self) {
        // Running attempts are not part of progress metadata: a restarted
        // master re-launches them.
        let tasks = self
            .tasks
            .iter()
            .map(|ts| {
                ts.iter()
                    .map(|t| match t {
                        TaskState::Done { locations } => TaskState::Done {
                            locations: locations.clone(),
                        },
                        _ => TaskState::Pending,
                    })
                    .collect()
            })
            .collect();
        self.snapshot = Some(ProgressSnapshot {
            tasks,
            outputs: self.outputs.clone(),
            result_parts: self.result_parts.clone(),
            first_attempted: self.first_attempted.clone(),
            next_attempt: self.next_attempt,
            epoch: self.epoch.load(Ordering::Relaxed),
        });
    }

    /// One scheduling pass: over every runnable stage, assign reserved
    /// receivers first, then launch every ready pending task with the
    /// round-robin, cache-aware policy.
    fn schedule(&mut self) -> Result<(), RuntimeError> {
        // Prepare phase: no new attempts launch while a reconfiguration
        // transaction is quiescing — otherwise the running set never
        // drains and prepare can only time out.
        if self.reconfig.is_some() {
            return Ok(());
        }
        for stage in self.job.plan.stage_dag.topo_order() {
            if !self.stage_runnable(stage) {
                continue;
            }
            self.assign_receivers(stage);
            // Reserved receivers launch as soon as their inputs are ready;
            // transient tasks fill free slots round-robin.
            let fops = self.job.plan.stage_fops(stage);
            let mut ordered: Vec<FopId> = fops
                .iter()
                .copied()
                .filter(|&f| self.placement[f] == Placement::Reserved)
                .collect();
            ordered.extend(
                fops.iter()
                    .copied()
                    .filter(|&f| self.placement[f] == Placement::Transient),
            );
            for f in ordered {
                for i in 0..self.tasks[f].len() {
                    if matches!(self.tasks[f][i], TaskState::Pending) && self.task_ready(f, i) {
                        self.launch(f, i)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Pre-assigns each reserved task of the stage to a reserved executor
    /// so transient producers know their push destinations (§3.2.3: "the
    /// task scheduler first schedules and sets up the tasks placed on
    /// reserved executors").
    fn assign_receivers(&mut self, stage: usize) {
        let reserved: Vec<ExecId> = self
            .executors
            .iter()
            .filter(|(id, e)| {
                e.alive && e.handle.kind == Placement::Reserved && !self.blacklisted.contains(id)
            })
            .map(|(&id, _)| id)
            .collect();
        if reserved.is_empty() {
            return;
        }
        let mut cursor = 0usize;
        for f in self.job.plan.stage_fops(stage) {
            if self.placement[f] != Placement::Reserved {
                continue;
            }
            for i in 0..self.parallelism[f] {
                self.assigned.entry((f, i)).or_insert_with(|| {
                    let e = reserved[cursor % reserved.len()];
                    cursor += 1;
                    e
                });
            }
        }
    }

    /// Whether all of a task's inputs are available.
    fn task_ready(&self, fop: FopId, index: usize) -> bool {
        for e in self.job.plan.in_edges(fop) {
            let src_par = self.parallelism[e.src];
            let dst_par = self.parallelism[fop];
            for si in required_src_indices(&e, index, src_par, dst_par) {
                if !matches!(self.tasks[e.src][si], TaskState::Done { .. }) {
                    return false;
                }
            }
        }
        true
    }

    fn launch(&mut self, fop: FopId, index: usize) -> Result<(), RuntimeError> {
        let placement = self.placement[fop];
        let cache_pref = self.cache_preference(fop);
        let Some(exec) = self.pick_executor(placement, fop, index, cache_pref) else {
            return Ok(()); // No free executor; retry on the next event.
        };

        // Admission control: a task launches only when every main input
        // can be pinned on its executor. A refusal leaves the task
        // pending — other tasks keep scheduling, and this one retries
        // once running attempts release their pins.
        let Some(pins) = self.pin_inputs(fop, index, exec)? else {
            return Ok(());
        };

        let attempt = self.next_attempt;
        self.next_attempt += 1;

        let (mains, sides, side_stats) = self.assemble_inputs(fop, index, exec)?;
        let preaggregate = placement == Placement::Transient
            && self.job.config.partial_aggregation
            && combine_consumer(&self.job.dag, &self.job.plan, fop).is_some();
        let inject = self.decide_injection(fop, index);

        // Launch accounting.
        let relaunch = self.first_attempted[fop][index];
        if !relaunch {
            self.first_attempted[fop][index] = true;
        }
        self.journal.emit(
            Some(self.meta.stage_of[fop]),
            JobEvent::TaskLaunched {
                fop,
                index,
                attempt,
                exec,
                relaunch,
                side_bytes_sent: side_stats.sent,
                side_bytes_saved: side_stats.saved,
                side_cache_misses: side_stats.misses,
            },
        );
        self.attempt_of.insert(attempt, (fop, index));
        self.launch_times.insert(attempt, self.clock.now());
        self.attempt_pins.insert(attempt, (exec, pins));
        self.attempt_epochs
            .insert(attempt, self.epoch.load(Ordering::Relaxed));
        self.tasks[fop][index] = TaskState::Running {
            attempts: vec![(attempt, exec)],
        };
        let info = self.executors.get_mut(&exec).ok_or_else(|| {
            RuntimeError::Invariant(format!("picked executor {exec} is not registered"))
        })?;
        info.busy += 1;
        info.out.send(ExecutorMsg::Run(TaskSpec {
            attempt,
            fop,
            index,
            mains,
            sides,
            preaggregate,
            inject,
        }));
        Ok(())
    }

    /// Admission control at launch: pins every main-input block of task
    /// `(fop, index)` on `exec`'s store *before* the attempt exists, so
    /// a running task's inputs can never spill (or be shed) under it.
    /// Shuffle consumers pin only their routed bucket, never the whole
    /// source output — pinning full `ManyToMany` inputs would deadlock
    /// tight budgets outright.
    ///
    /// Returns `Ok(None)` on a headroom refusal: the pins taken so far
    /// roll back and the task stays pending (the scheduler reorders
    /// around it and retries once running attempts release memory).
    /// When the task's own requirement alone exceeds the budget on an
    /// otherwise-empty store, no amount of waiting can help — that is a
    /// terminal [`RuntimeError::MemoryExceeded`], not a deferral.
    fn pin_inputs(
        &mut self,
        fop: FopId,
        index: usize,
        exec: ExecId,
    ) -> Result<Option<Vec<BlockRef>>, RuntimeError> {
        let dst_par = self.parallelism[fop];
        let mut wanted: Vec<(BlockRef, Block)> = Vec::new();
        for e in self.job.plan.in_edges(fop) {
            if !matches!(e.slot, InputSlot::Main(_)) {
                continue;
            }
            let src_par = self.parallelism[e.src];
            for si in required_src_indices(&e, index, src_par, dst_par) {
                let (r, block) = match e.dep {
                    DepType::ManyToMany => (
                        BlockRef::Bucket {
                            fop: e.src,
                            index: si,
                            dst_par,
                            dst: index,
                        },
                        self.routed_bucket(e.src, si, dst_par, index),
                    ),
                    _ => (
                        BlockRef::Output {
                            fop: e.src,
                            index: si,
                        },
                        self.outputs.get(&(e.src, si)).map(Arc::clone),
                    ),
                };
                let block = block.ok_or_else(|| {
                    RuntimeError::Invariant(format!(
                        "task {fop}.{index} admission ran before input {}.{si} was ready",
                        e.src
                    ))
                })?;
                wanted.push((r, block));
            }
        }
        if wanted.is_empty() {
            return Ok(Some(Vec::new()));
        }
        let store = self
            .executors
            .get(&exec)
            .map(|info| Arc::clone(&info.store))
            .ok_or_else(|| {
                RuntimeError::Invariant(format!("picked executor {exec} is not registered"))
            })?;
        let mut s = store.lock();
        let mut pinned: Vec<BlockRef> = Vec::new();
        let mut pinned_bytes = 0usize;
        for (r, data) in &wanted {
            match s.pin(*r, data) {
                Ok(()) => {
                    pinned.push(*r);
                    pinned_bytes += block_bytes(data);
                }
                Err(StoreError::NoHeadroom {
                    needed,
                    budget,
                    resident,
                }) => {
                    // Refusal with nothing resident but our own pins
                    // means the requirement itself is over budget.
                    let only_us = resident <= pinned_bytes;
                    for p in pinned {
                        s.unpin(p);
                    }
                    if only_us {
                        return Err(RuntimeError::MemoryExceeded {
                            bytes: pinned_bytes + needed,
                            budget,
                            context: format!("inputs of task {fop}.{index} on executor {exec}"),
                        });
                    }
                    return Ok(None);
                }
                Err(StoreError::TooLarge { bytes, budget }) => {
                    for p in pinned {
                        s.unpin(p);
                    }
                    return Err(RuntimeError::MemoryExceeded {
                        bytes,
                        budget,
                        context: format!("input {r} of task {fop}.{index} on executor {exec}"),
                    });
                }
                Err(StoreError::SpillUnreadable { .. }) => {
                    // A spilled copy rotted on disk. The store already
                    // dropped the corrupt entry, so treat this like a
                    // headroom refusal: the task stays pending and the
                    // next admission re-pins from the master's copy.
                    for p in pinned {
                        s.unpin(p);
                    }
                    return Ok(None);
                }
            }
        }
        Ok(Some(pinned))
    }

    /// Decides fault injection for the next launch of task `(fop, index)`,
    /// combining targeted first-attempt delays with the probabilistic
    /// chaos plan. Decisions depend only on `(seed, task, launch
    /// ordinal)`, so a chaos run replays identically from its seed.
    fn decide_injection(&mut self, fop: FopId, index: usize) -> Option<InjectedFault> {
        let ordinal = {
            let c = self.launch_seq.entry((fop, index)).or_insert(0);
            let o = *c;
            *c += 1;
            o
        };
        if ordinal == 0 {
            if let Some(&(_, _, ms)) = self
                .faults
                .first_attempt_delays
                .iter()
                .find(|&&(f, i, _)| f == fop && i == index)
            {
                return Some(InjectedFault::Delay(ms));
            }
            if let Some(&(_, _, ms)) = self
                .faults
                .first_attempt_done_delays
                .iter()
                .find(|&&(f, i, _)| f == fop && i == index)
            {
                return Some(InjectedFault::DelayDone(ms));
            }
        }
        let chaos = self.faults.chaos.as_ref()?;
        // Keyed by (task identity, per-task launch ordinal) — causal
        // identifiers, so the same seed hits the same launches on both
        // backends.
        let d =
            FaultInjector::new(chaos.seed).task_launch(fop as u64, index as u64, ordinal as u64);
        let u = d.unit();
        let injected = self.injected_faults.entry((fop, index)).or_insert(0);
        if *injected < chaos.max_faults_per_task {
            if u < chaos.error_prob {
                *injected += 1;
                return Some(InjectedFault::Error);
            }
            if u < chaos.error_prob + chaos.panic_prob {
                *injected += 1;
                return Some(InjectedFault::Panic);
            }
            if u < chaos.error_prob + chaos.panic_prob + chaos.oom_prob {
                *injected += 1;
                return Some(InjectedFault::Oom);
            }
        }
        if u < chaos.error_prob + chaos.panic_prob + chaos.oom_prob + chaos.delay_prob {
            let ms = 1 + d.span(chaos.delay_ms);
            // Half the stalls land before the compute (a straggler), half
            // after it (output computed, report not yet sent) — the window
            // where evictions and partitions race the TaskDone.
            return Some(if d.coin(0x0D0E) {
                InjectedFault::Delay(ms)
            } else {
                InjectedFault::DelayDone(ms)
            });
        }
        None
    }

    /// Straggler mitigation: for every fop with enough completed-attempt
    /// samples, duplicate any single-attempt task whose elapsed time
    /// exceeds `speculation_multiplier` × the fop's median duration
    /// (floored by `speculation_floor_ms`). First commit wins.
    fn maybe_speculate(&mut self) -> Result<(), RuntimeError> {
        if !self.job.config.speculation || self.reconfig.is_some() {
            return Ok(());
        }
        let min_samples = self.job.config.speculation_min_samples.max(1);
        let mult = self.job.config.speculation_multiplier;
        let floor = self.job.config.speculation_floor_ms;
        let mut stragglers: Vec<(FopId, usize, ExecId)> = Vec::new();
        for f in 0..self.tasks.len() {
            if self.fop_durations[f].len() < min_samples {
                continue;
            }
            let mut durs = self.fop_durations[f].clone();
            durs.sort_unstable();
            let Some(&median) = durs.get(durs.len() / 2) else {
                continue;
            };
            let threshold = ((median as f64 * mult) as u64).max(floor);
            for i in 0..self.tasks[f].len() {
                if let TaskState::Running { attempts } = &self.tasks[f][i] {
                    // Never stack duplicates: one speculative race at a time.
                    if attempts.len() != 1 {
                        continue;
                    }
                    let (a, e) = attempts[0];
                    let now = self.clock.now();
                    let elapsed = self
                        .launch_times
                        .get(&a)
                        .map(|t| now.saturating_duration_since(*t).as_millis() as u64);
                    if elapsed.is_some_and(|ms| ms > threshold) {
                        stragglers.push((f, i, e));
                    }
                }
            }
        }
        for (f, i, avoid) in stragglers {
            self.launch_speculative(f, i, avoid)?;
        }
        Ok(())
    }

    /// Launches a speculative duplicate of a straggling attempt on a
    /// different executor. The duplicate shares the task's identity, so
    /// whichever attempt finishes first commits and the other is
    /// discarded by the commit protocol (never double-committed).
    fn launch_speculative(
        &mut self,
        fop: FopId,
        index: usize,
        avoid: ExecId,
    ) -> Result<(), RuntimeError> {
        let kind = self.placement[fop];
        let slots = self.job.config.slots_per_executor.max(1);
        let pick = self
            .executors
            .iter()
            .filter(|(&id, e)| {
                e.alive
                    && e.handle.kind == kind
                    && e.busy < slots
                    && id != avoid
                    && !self.blacklisted.contains(&id)
                    && !self.drained.contains(&id)
            })
            .max_by_key(|(&id, e)| (slots - e.busy, std::cmp::Reverse(id)))
            .map(|(&id, _)| id);
        let Some(exec) = pick else {
            return Ok(()); // No spare executor: keep waiting on the original.
        };

        // Speculation is strictly optional work: when the spare executor
        // has no headroom to pin the inputs, skip it rather than defer.
        let Some(pins) = self.pin_inputs(fop, index, exec)? else {
            return Ok(());
        };

        let attempt = self.next_attempt;
        self.next_attempt += 1;
        let (mains, sides, side_stats) = self.assemble_inputs(fop, index, exec)?;
        let preaggregate = kind == Placement::Transient
            && self.job.config.partial_aggregation
            && combine_consumer(&self.job.dag, &self.job.plan, fop).is_some();
        let inject = self.decide_injection(fop, index);

        self.journal.emit(
            Some(self.meta.stage_of[fop]),
            JobEvent::SpeculativeLaunched {
                fop,
                index,
                attempt,
                exec,
                side_bytes_sent: side_stats.sent,
                side_bytes_saved: side_stats.saved,
                side_cache_misses: side_stats.misses,
            },
        );
        self.attempt_of.insert(attempt, (fop, index));
        self.launch_times.insert(attempt, self.clock.now());
        self.attempt_pins.insert(attempt, (exec, pins));
        self.attempt_epochs
            .insert(attempt, self.epoch.load(Ordering::Relaxed));
        self.speculative.insert(attempt);
        if let TaskState::Running { attempts } = &mut self.tasks[fop][index] {
            attempts.push((attempt, exec));
        }
        let info = self.executors.get_mut(&exec).ok_or_else(|| {
            RuntimeError::Invariant(format!("speculative executor {exec} is not registered"))
        })?;
        info.busy += 1;
        info.out.send(ExecutorMsg::Run(TaskSpec {
            attempt,
            fop,
            index,
            mains,
            sides,
            preaggregate,
            inject,
        }));
        Ok(())
    }

    /// A cacheable side-input key of this fop, if any (used for
    /// cache-aware scheduling).
    fn cache_preference(&self, fop: FopId) -> Option<CacheKey> {
        self.job
            .plan
            .in_edges(fop)
            .iter()
            .find(|e| e.slot == InputSlot::Side && e.cache)
            .map(|e| e.src)
    }

    /// The default scheduling policy (§3.2.3): prefer an executor that
    /// caches the task's input; otherwise round-robin over alive
    /// executors with a free task slot. Reserved tasks go to their
    /// pre-assigned receiver.
    fn pick_executor(
        &mut self,
        kind: Placement,
        fop: FopId,
        index: usize,
        cache_pref: Option<CacheKey>,
    ) -> Option<ExecId> {
        if kind == Placement::Reserved {
            if let Some(&e) = self.assigned.get(&(fop, index)) {
                if self.executors.get(&e).map(|i| i.alive) == Some(true)
                    && !self.blacklisted.contains(&e)
                {
                    return Some(e);
                }
            }
            // The assigned receiver died or was blacklisted; fall through
            // to any reserved.
        }
        let slots = self.job.config.slots_per_executor.max(1);
        let candidates: Vec<Candidate> = self
            .executors
            .iter()
            .filter(|(id, e)| {
                e.alive
                    && e.handle.kind == kind
                    && e.busy < slots
                    && !self.blacklisted.contains(id)
                    && !self.drained.contains(id)
            })
            .map(|(&id, e)| Candidate {
                exec: id,
                free_slots: slots - e.busy,
                has_cached_input: cache_pref.map(|k| e.cached.contains(&k)).unwrap_or(false),
            })
            .collect();
        self.policy.pick(
            TaskToPlace {
                fop,
                index,
                cache_pref,
            },
            &candidates,
        )
    }

    /// Routes and packages a task's inputs.
    ///
    /// Main inputs are slots of shared blocks: narrow edges hand the
    /// producer's output block itself to the consumer, and shuffles hand
    /// the consumer its memoized bucket block. Assembling a task clones
    /// zero records (the one record pass per shuffled output happens in
    /// [`Master::routed_bucket`], shared across consumers and relaunches).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Invariant`] when a required input is not
    /// materialized — a scheduler bug (`task_ready` must gate every
    /// launch), surfaced instead of panicking the master.
    #[allow(clippy::type_complexity)]
    fn assemble_inputs(
        &mut self,
        fop: FopId,
        index: usize,
        exec: ExecId,
    ) -> Result<(Vec<MainSlot>, BTreeMap<usize, SideData>, SideStats), RuntimeError> {
        let dst_par = self.parallelism[fop];
        let mut mains: Vec<MainSlot> = Vec::new();
        let mut sides: BTreeMap<usize, SideData> = BTreeMap::new();
        let mut stats = SideStats::default();
        for e in self.job.plan.in_edges(fop) {
            let src_par = self.parallelism[e.src];
            match e.slot {
                InputSlot::Main(_) => {
                    let mut parts: Vec<Block> = Vec::new();
                    for si in required_src_indices(&e, index, src_par, dst_par) {
                        let block = match e.dep {
                            DepType::ManyToMany => self.routed_bucket(e.src, si, dst_par, index),
                            _ => self.outputs.get(&(e.src, si)).map(Arc::clone),
                        };
                        parts.push(block.ok_or_else(|| {
                            RuntimeError::Invariant(format!(
                                "task {fop}.{index} launched before input {}.{si} was ready",
                                e.src
                            ))
                        })?);
                    }
                    mains.push(MainSlot::from_blocks(parts));
                }
                InputSlot::Side => {
                    let records = self.side_records(e.src, src_par);
                    let bytes = block_bytes(&records);
                    let key = e.cache.then_some(e.src);
                    let expect_cached = key
                        .map(|k| self.executors[&exec].cached.contains(&k))
                        .unwrap_or(false);
                    if expect_cached {
                        stats.saved += bytes;
                    } else {
                        stats.sent += bytes;
                        if key.is_some() {
                            stats.misses += 1;
                        }
                    }
                    sides.insert(
                        e.member,
                        SideData {
                            key,
                            records,
                            expect_cached,
                        },
                    );
                }
            }
        }
        Ok((mains, sides, stats))
    }

    /// The shuffle bucket `dst_index` of output `(src, si)` hashed to
    /// `dst_par` consumers, routing (one record pass, the only record
    /// clones in the data plane) at most once per output.
    fn routed_bucket(
        &mut self,
        src: FopId,
        si: usize,
        dst_par: usize,
        dst_index: usize,
    ) -> Option<Block> {
        let key = (src, si, dst_par);
        if !self.routed.contains_key(&key) {
            let records = self.outputs.get(&(src, si))?;
            // An eager (pool-computed) result is only trusted when it was
            // routed from the exact block that is still the live output:
            // a revert-and-recommit in between leaves a stale entry whose
            // source pointer no longer matches, and the lazy path below
            // recomputes from the fresh block.
            let eager = self
                .pool
                .as_ref()
                .and_then(|_| self.eager_routed.lock().remove(&key));
            let buckets = match eager {
                Some((source, buckets)) if Arc::ptr_eq(&source, records) => buckets,
                _ => route(records, DepType::ManyToMany, si, dst_par),
            };
            self.routed.insert(key, buckets);
        }
        self.routed
            .get(&key)
            .and_then(|buckets| buckets.get(dst_index))
            .map(Arc::clone)
    }

    /// Submits the hash-shuffle routing of a freshly committed output to
    /// the worker pool (threaded backend only), so the record pass runs
    /// in parallel with other producers instead of serially inside the
    /// master at consumer-launch time. Best-effort: a full pool queue
    /// skips the submission and [`Master::routed_bucket`] routes lazily.
    fn submit_eager_routing(&mut self, fop: FopId, index: usize) {
        if !self.eager_routing {
            return;
        }
        let Some(pool) = &self.pool else { return };
        let Some(records) = self.outputs.get(&(fop, index)) else {
            return;
        };
        let mut submitted: HashSet<usize> = HashSet::new();
        for e in self.job.plan.out_edges(fop) {
            if e.dep != DepType::ManyToMany || !matches!(e.slot, InputSlot::Main(_)) {
                continue;
            }
            let dst_par = self.parallelism[e.dst];
            if self.routed.contains_key(&(fop, index, dst_par)) || !submitted.insert(dst_par) {
                continue;
            }
            let records = Arc::clone(records);
            let map = Arc::clone(&self.eager_routed);
            pool.try_submit(Box::new(move || {
                let buckets = route(&records, DepType::ManyToMany, index, dst_par);
                map.lock().insert((fop, index, dst_par), (records, buckets));
            }));
        }
    }

    /// Drops everything derived from output `(fop, index)` — shuffle
    /// buckets and broadcast concatenations — when that output is reverted
    /// or replaced, and releases the unpinned store residency of the
    /// output and its routed buckets on every executor (a pinned copy is
    /// left for its running attempt to finish with).
    fn invalidate_derived(&mut self, fop: FopId, index: usize) {
        let bucket_pars: Vec<usize> = self
            .routed
            .keys()
            .filter(|&&(f, i, _)| f == fop && i == index)
            .map(|&(_, _, p)| p)
            .collect();
        self.routed.retain(|&(f, i, _), _| f != fop || i != index);
        if self.pool.is_some() {
            // Pending eager results for the replaced output are stale
            // (the source-pointer check would reject them anyway; this
            // just frees them early).
            self.eager_routed
                .lock()
                .retain(|&(f, i, _), _| f != fop || i != index);
        }
        self.side_cache.remove(&fop);
        for info in self.executors.values() {
            let mut s = info.store.lock();
            s.remove_unpinned(BlockRef::Output { fop, index });
            for &dst_par in &bucket_pars {
                for dst in 0..dst_par {
                    s.remove_unpinned(BlockRef::Bucket {
                        fop,
                        index,
                        dst_par,
                        dst,
                    });
                }
            }
        }
    }

    /// The full broadcast dataset of a producer fop, as one shared block.
    /// Single-part producers share their output block outright; multi-part
    /// concatenations are built once and memoized.
    fn side_records(&mut self, src: FopId, src_par: usize) -> Block {
        if src_par == 1 {
            if let Some(r) = self.outputs.get(&(src, 0)) {
                return Arc::clone(r);
            }
        }
        if let Some(b) = self.side_cache.get(&src) {
            return Arc::clone(b);
        }
        let mut all = Vec::new();
        for si in 0..src_par {
            if let Some(r) = self.outputs.get(&(src, si)) {
                all.extend(r.iter().cloned());
            }
        }
        let block = block_from_vec(all);
        self.side_cache.insert(src, Arc::clone(&block));
        block
    }

    fn collect_result(&self) -> JobResult {
        let mut outputs: BTreeMap<String, Vec<Value>> = BTreeMap::new();
        for ((fop, _idx), records) in &self.result_parts {
            let name = self
                .job
                .dag
                .op(self.job.plan.fops[*fop].tail())
                .name
                .clone();
            outputs
                .entry(name)
                .or_default()
                .extend(records.iter().cloned());
        }
        let journal = self.frozen_journal();
        let metrics = self.snapshot_metrics(&journal);
        JobResult {
            outputs,
            metrics,
            journal,
        }
    }

    fn shutdown(&mut self) {
        for (_, info) in std::mem::take(&mut self.executors) {
            info.handle.stop();
            info.handle.join();
        }
        // Threaded backend: joining executors only joins their control
        // threads — task bodies run on the shared pool. Wait for it to
        // drain so every straggling journal emission (e.g. a loser
        // attempt's TaskStarted) lands before the journal freezes.
        let in_flight = match &self.pool {
            Some(pool) => {
                pool.wait_quiesce(Duration::from_secs(10));
                pool.in_flight()
            }
            None => 0,
        };
        // Every run — clean, aborted, or stalled — records the pool
        // quiesce outcome; law 11 requires the count to be zero, and
        // requires this marker after any abort marker.
        self.journal
            .emit(None, JobEvent::PoolQuiesced { in_flight });
    }

    /// A clone of the live journal writer handle: the threaded backend's
    /// supervisor samples progress through it and captures the event
    /// tail into stall diagnostics.
    pub fn journal_handle(&self) -> Journal {
        self.journal.clone()
    }

    /// The cooperative cancellation token this master observes.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }
}

/// Which producer task indices a consumer task needs along an edge.
pub fn required_src_indices(
    edge: &PlanEdge,
    dst_index: usize,
    src_par: usize,
    dst_par: usize,
) -> Vec<usize> {
    match edge.dep {
        DepType::OneToOne => {
            if dst_index < src_par {
                vec![dst_index]
            } else {
                Vec::new()
            }
        }
        DepType::OneToMany | DepType::ManyToMany => (0..src_par).collect(),
        DepType::ManyToOne => (0..src_par)
            .filter(|si| si % dst_par.max(1) == dst_index)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::InputSlot;

    fn edge(dep: DepType) -> PlanEdge {
        PlanEdge {
            src: 0,
            dst: 1,
            dep,
            slot: InputSlot::Main(0),
            cache: false,
            cross_stage: false,
            member: 0,
        }
    }

    #[test]
    fn required_indices_one_to_one() {
        assert_eq!(
            required_src_indices(&edge(DepType::OneToOne), 2, 4, 4),
            vec![2]
        );
        assert!(required_src_indices(&edge(DepType::OneToOne), 5, 4, 8).is_empty());
    }

    #[test]
    fn required_indices_wide_edges_need_all() {
        assert_eq!(
            required_src_indices(&edge(DepType::ManyToMany), 0, 3, 2),
            vec![0, 1, 2]
        );
        assert_eq!(
            required_src_indices(&edge(DepType::OneToMany), 1, 2, 5),
            vec![0, 1]
        );
    }

    #[test]
    fn required_indices_many_to_one_partitions_by_modulo() {
        assert_eq!(
            required_src_indices(&edge(DepType::ManyToOne), 0, 5, 2),
            vec![0, 2, 4]
        );
        assert_eq!(
            required_src_indices(&edge(DepType::ManyToOne), 1, 5, 2),
            vec![1, 3]
        );
    }

    // --- Evict/commit race regression tests ---
    //
    // These drive the master's private `handle` directly, manufacturing
    // the in-flight attempt state, because the end-to-end path cannot
    // deterministically order an eviction against an in-flight TaskDone
    // (the chaos suites cover the stochastic orderings).

    fn test_master() -> Master {
        use pado_dag::{Pipeline, SourceFn};
        let p = Pipeline::new();
        p.read("R", 1, SourceFn::from_vec(vec![Value::from(1i64)]))
            .sink("S");
        let dag = p.build().unwrap();
        let plan = crate::compiler::compile(&dag).unwrap();
        let job = Arc::new(JobContext {
            dag,
            plan,
            config: crate::runtime::RuntimeConfig::default(),
        });
        Master::new(job, 1, 1, FaultPlan::default())
            .expect("wal-less master creation is infallible")
    }

    /// The canonical event log, frozen from the live journal.
    fn events(m: &Master) -> Vec<JobEvent> {
        m.frozen_journal().to_events()
    }

    /// The journal-derived metrics, as `run()` would report them.
    fn derived(m: &Master) -> JobMetrics {
        let journal = m.frozen_journal();
        m.snapshot_metrics(&journal)
    }

    /// A fop with no consumers (its output goes to the job sink).
    fn terminal_fop(m: &Master) -> FopId {
        (0..m.job.plan.fops.len())
            .find(|&f| m.job.plan.out_edges(f).is_empty())
            .expect("plan has a terminal fop")
    }

    fn done_msg(exec: ExecId, attempt: AttemptId) -> MasterMsg {
        MasterMsg::TaskDone {
            exec,
            attempt,
            output: block_from_vec(vec![Value::from(1i64)]),
            preaggregated: 0,
            cache_hit: false,
            cached_keys: Vec::new(),
        }
    }

    #[test]
    fn task_done_after_evict_is_discarded_consistently() {
        let mut m = test_master();
        let f = terminal_fop(&m);
        let exec: ExecId = 1; // Spawn order is reserved-first: 1 is transient.
        m.tasks[f][0] = TaskState::Running {
            attempts: vec![(7, exec)],
        };
        m.attempt_of.insert(7, (f, 0));
        m.executors.get_mut(&exec).unwrap().busy = 1;

        m.handle(MasterMsg::Evict { exec }).unwrap();
        assert!(
            matches!(m.tasks[f][0], TaskState::Pending),
            "eviction reverts the in-flight attempt"
        );
        assert_eq!(derived(&m).evictions, 1);

        // The TaskDone the evicted executor had in flight lands late: it
        // must be a complete no-op — no panic, no commit, no resurrected
        // task state, relaunch bookkeeping untouched.
        let commits_before = events(&m)
            .iter()
            .filter(|e| matches!(e, JobEvent::TaskCommitted { .. }))
            .count();
        m.handle(done_msg(exec, 7)).unwrap();
        assert!(matches!(m.tasks[f][0], TaskState::Pending));
        assert!(m.outputs.is_empty());
        let commits_after = events(&m)
            .iter()
            .filter(|e| matches!(e, JobEvent::TaskCommitted { .. }))
            .count();
        assert_eq!(commits_before, commits_after, "no post-evict commit");
        m.shutdown();
    }

    #[test]
    fn evict_after_task_done_keeps_committed_terminal_output() {
        let mut m = test_master();
        let f = terminal_fop(&m);
        let exec: ExecId = 1;
        m.tasks[f][0] = TaskState::Running {
            attempts: vec![(7, exec)],
        };
        m.attempt_of.insert(7, (f, 0));
        m.executors.get_mut(&exec).unwrap().busy = 1;

        m.handle(done_msg(exec, 7)).unwrap();
        assert!(matches!(m.tasks[f][0], TaskState::Done { .. }));
        assert_eq!(m.executors[&exec].busy, 0);

        // The other ordering: eviction lands after the commit. Terminal
        // outputs live in the job sink, so the task must stay Done (no
        // revert, no relaunch) even though its only executor location died.
        m.handle(MasterMsg::Evict { exec }).unwrap();
        assert!(
            matches!(m.tasks[f][0], TaskState::Done { .. }),
            "committed terminal output survives the eviction"
        );
        assert!(!events(&m)
            .iter()
            .any(|e| matches!(e, JobEvent::TaskReverted { .. })));
        m.shutdown();
    }

    #[test]
    fn duplicate_task_done_is_idempotent() {
        let mut m = test_master();
        let f = terminal_fop(&m);
        let exec: ExecId = 1;
        m.tasks[f][0] = TaskState::Running {
            attempts: vec![(7, exec)],
        };
        m.attempt_of.insert(7, (f, 0));
        // Two busy slots: a duplicate delivery must not free the second.
        m.executors.get_mut(&exec).unwrap().busy = 2;

        m.handle(done_msg(exec, 7)).unwrap();
        m.handle(done_msg(exec, 7)).unwrap();
        assert_eq!(
            m.executors[&exec].busy, 1,
            "duplicate TaskDone must not double-free a busy slot"
        );
        let commits = events(&m)
            .iter()
            .filter(|e| matches!(e, JobEvent::TaskCommitted { .. }))
            .count();
        assert_eq!(commits, 1, "first-commit-wins under duplicate delivery");
        m.shutdown();
    }

    #[test]
    fn duplicate_task_failed_charges_budget_once() {
        let mut m = test_master();
        let f = terminal_fop(&m);
        let exec: ExecId = 1;
        m.tasks[f][0] = TaskState::Running {
            attempts: vec![(9, exec)],
        };
        m.attempt_of.insert(9, (f, 0));
        m.executors.get_mut(&exec).unwrap().busy = 2;

        let fail = |m: &mut Master| {
            m.handle(MasterMsg::TaskFailed {
                exec,
                attempt: 9,
                reason: "injected".into(),
            })
            .unwrap()
        };
        fail(&mut m);
        fail(&mut m);
        assert_eq!(derived(&m).task_failures, 1, "one failure, not two");
        assert_eq!(m.task_failure_counts[&(f, 0)], 1, "retry charged once");
        assert_eq!(m.executors[&exec].busy, 1);
        m.shutdown();
    }

    // --- Reconfiguration transaction tests ---

    #[test]
    fn quiesced_reconfig_commits_and_advances_the_epoch() {
        let mut m = test_master();
        let f = terminal_fop(&m);
        let before = m.placement[f];
        let id = m.request_reconfig(
            ReconfigChange::MigrateStage {
                stage: m.meta.stage_of[f],
                to: Placement::Reserved,
            }
            .into(),
            ReconfigTrigger::Api,
        );
        assert!(m.reconfig.is_some(), "transaction opened");
        // Nothing is running, so the very next pump quiesces and commits.
        m.pump_reconfig();
        assert!(m.reconfig.is_none(), "transaction resolved");
        assert_eq!(m.epoch.load(Ordering::Relaxed), 1);
        assert_eq!(m.placement[f], Placement::Reserved);
        assert_ne!(
            before,
            Placement::Reserved,
            "the migration changed something"
        );
        let evs = events(&m);
        let prepared = evs
            .iter()
            .position(
                |e| matches!(e, JobEvent::ReconfigPrepared { reconfig, .. } if *reconfig == id),
            )
            .expect("ReconfigPrepared journaled");
        let advanced = evs
            .iter()
            .position(|e| matches!(e, JobEvent::EpochAdvanced { epoch: 1 }))
            .expect("EpochAdvanced journaled");
        let committed = evs
            .iter()
            .position(
                |e| matches!(e, JobEvent::ReconfigCommitted { reconfig, epoch: 1, .. } if *reconfig == id),
            )
            .expect("ReconfigCommitted journaled");
        assert!(
            prepared < advanced && advanced < committed,
            "prepare, epoch advance, and commit journal in order: {evs:?}"
        );
        let d = derived(&m);
        assert_eq!(d.reconfigs_committed, 1);
        assert_eq!(d.final_epoch, 1);
        m.shutdown();
    }

    #[test]
    fn eviction_mid_prepare_aborts_and_rolls_back() {
        let mut m = test_master();
        let f = terminal_fop(&m);
        let exec: ExecId = 1; // Transient (reserved spawn first).
        m.tasks[f][0] = TaskState::Running {
            attempts: vec![(7, exec)],
        };
        m.attempt_of.insert(7, (f, 0));
        m.executors.get_mut(&exec).unwrap().busy = 1;
        let before = m.placement.clone();

        let id = m.request_reconfig(
            ReconfigChange::MigrateStage {
                stage: m.meta.stage_of[f],
                to: Placement::Reserved,
            }
            .into(),
            ReconfigTrigger::Api,
        );
        // One attempt in flight: the pump must keep waiting, not commit.
        m.pump_reconfig();
        assert!(m.reconfig.is_some(), "prepare waits for the quiesce");

        // The eviction lands mid-prepare: the transaction rolls back and
        // the old placement stays runnable.
        m.handle(MasterMsg::Evict { exec }).unwrap();
        assert!(m.reconfig.is_none(), "transaction aborted");
        assert_eq!(m.epoch.load(Ordering::Relaxed), 0, "no epoch advance");
        assert_eq!(m.placement, before, "rollback left the placement alone");
        assert!(
            matches!(m.tasks[f][0], TaskState::Pending),
            "the reverted task is still runnable under the old placement"
        );
        let evs = events(&m);
        assert!(evs
            .iter()
            .any(|e| matches!(e, JobEvent::ReconfigAborted { reconfig, .. } if *reconfig == id)));
        assert!(!evs
            .iter()
            .any(|e| matches!(e, JobEvent::EpochAdvanced { .. })));
        let d = derived(&m);
        assert_eq!(d.reconfigs_aborted, 1);
        assert_eq!(d.final_epoch, 0);
        m.shutdown();
    }

    #[test]
    fn concurrent_reconfig_requests_are_rejected() {
        let mut m = test_master();
        let f = terminal_fop(&m);
        let stage = m.meta.stage_of[f];
        // Hold the first transaction open with a manufactured running attempt.
        m.tasks[f][0] = TaskState::Running {
            attempts: vec![(7, 1)],
        };
        m.attempt_of.insert(7, (f, 0));
        let change = ReconfigChange::MigrateStage {
            stage,
            to: Placement::Reserved,
        };
        let first = m.request_reconfig(change.into(), ReconfigTrigger::Api);
        let second = m.request_reconfig(change.into(), ReconfigTrigger::Api);
        assert_ne!(first, second);
        let evs = events(&m);
        assert!(evs.iter().any(
            |e| matches!(e, JobEvent::ReconfigAborted { reconfig, reason } if *reconfig == second
                && reason.contains("already in flight"))
        ));
        assert!(m.reconfig.is_some_and(|t| t.id == first));
        m.shutdown();
    }

    // --- Clock-abstraction regression test (timer-order sensitivity) ---
    //
    // Every master timer (speculation, heartbeats, deferred pushes,
    // reconfig deadlines) must read `self.clock`, never wall time
    // directly: the threaded backend shares the implementation, and a
    // stray `Instant::now()` would make timer order depend on host
    // scheduling. Driving speculation off a manual clock — no sleeps —
    // proves the timer path is fully clock-routed.

    #[test]
    fn speculation_timer_fires_on_clock_advance_not_wall_time() {
        let mut m = test_master();
        m.clock = Clock::manual();
        let f = terminal_fop(&m);
        // Run the straggler on the kind the fop is NOT placed on, so the
        // single executor of the placed kind is free to host the
        // duplicate (the picker skips the straggler's own executor).
        let exec: ExecId = if m.placement[f] == Placement::Reserved {
            1
        } else {
            0
        };
        m.tasks[f][0] = TaskState::Running {
            attempts: vec![(7, exec)],
        };
        m.attempt_of.insert(7, (f, 0));
        m.executors.get_mut(&exec).unwrap().busy = 1;
        m.launch_times.insert(7, m.clock.now());
        // Median 10ms × 3.0 multiplier, floored to speculation_floor_ms
        // (200ms): the attempt becomes a straggler only past 200ms.
        m.fop_durations[f] = vec![10, 10, 10];

        m.maybe_speculate().unwrap();
        assert!(
            !events(&m)
                .iter()
                .any(|e| matches!(e, JobEvent::SpeculativeLaunched { .. })),
            "no virtual time has passed: the attempt is not yet a straggler"
        );

        m.clock.advance_ms(201);
        m.maybe_speculate().unwrap();
        assert!(
            events(&m)
                .iter()
                .any(|e| matches!(e, JobEvent::SpeculativeLaunched { .. })),
            "advancing the manual clock past the threshold must trigger \
             the speculative duplicate without any wall-clock waiting"
        );
        m.shutdown();
    }
}
