//! Execution backends: how the master loop and executor slots map onto
//! threads (DESIGN.md §15).
//!
//! The scheduler, commit protocol, transport, and journal are all
//! backend-agnostic; an [`ExecBackend`] only decides *where* they run:
//!
//! - [`SimBackend`] is the configuration every chaos/invariant suite
//!   runs on: the master loop runs inline on the caller's thread and
//!   each executor owns dedicated slot threads. One frame is handled per
//!   wakeup, shuffle routing happens lazily inside the master, and the
//!   event interleaving stays as close to the original deterministic
//!   loop as real threads allow.
//! - [`ThreadedBackend`] is the wall-clock configuration: the master
//!   loop runs on its own `pado-master` thread (bounded by a wall-clock
//!   timeout so a wedged run aborts instead of hanging the caller),
//!   executor slots are serviced by one shared [`WorkerPool`], inbound
//!   frames are drained in batches between scheduling passes, and hash
//!   shuffle routing is pushed onto the pool eagerly at commit time so
//!   it overlaps and parallelizes instead of serializing in the master.
//!
//! Both backends implement the same [`Clock`] contract, emit the same
//! `JobEvent` stream up to causal reordering (the canonical journal
//! order is identical), and must produce byte-identical job outputs —
//! `crates/core/tests/backend_equivalence.rs` is the differential proof.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender, TrySendError};

use crate::error::RuntimeError;
use crate::runtime::clock::Clock;
use crate::runtime::config::RuntimeConfig;
use crate::runtime::master::{JobResult, Master};

/// Which execution backend a [`LocalCluster`](crate::runtime::LocalCluster)
/// drives a job on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Deterministic-leaning inline loop (the default; all chaos and
    /// invariant suites run here).
    #[default]
    Sim,
    /// Real parallel backend: master on its own thread, executors on a
    /// shared worker pool, batched frame draining, eager routing.
    Threaded,
}

impl BackendKind {
    /// Parses a CLI/user spelling of a backend name.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "sim" => Some(BackendKind::Sim),
            "threaded" => Some(BackendKind::Threaded),
            _ => None,
        }
    }
}

/// How a job's master loop and executor slots map onto threads.
///
/// The contract every implementation must honor:
///
/// - [`drive`](ExecBackend::drive) runs the master to completion and
///   returns its result (or a positioned error).
/// - The emitted journal must freeze to the same canonical order as any
///   other backend for the same logical execution: causal order is the
///   contract, byte-level emission order is not.
/// - Job outputs must be byte-identical across backends for the same
///   plan (the data plane is deterministic; only timing may differ).
pub trait ExecBackend: Send + Sync + std::fmt::Debug {
    /// Human-readable backend name (journals, benches, traces).
    fn name(&self) -> &'static str;

    /// The scheduling clock the master reads all timer state from.
    fn clock(&self) -> Clock {
        Clock::wall()
    }

    /// The shared pool servicing executor slots, when this backend uses
    /// one (`None` = each executor spawns dedicated slot threads).
    fn pool(&self) -> Option<Arc<WorkerPool>> {
        None
    }

    /// How many inbound frames the master may drain per wakeup before
    /// rerunning its control work (transport pump, schedule pass).
    fn frame_batch(&self) -> usize {
        1
    }

    /// Whether committed hash-shuffle outputs are routed eagerly on the
    /// pool (overlapping producers) instead of lazily in the master at
    /// consumer-launch time.
    fn eager_routing(&self) -> bool {
        false
    }

    /// Runs the master to completion.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the master loop; backends may add
    /// their own failure modes (e.g. the threaded wall-clock timeout).
    fn drive(&self, master: Master) -> Result<JobResult, RuntimeError>;
}

/// The existing deterministic event loop: master inline on the calling
/// thread, dedicated slot threads per executor, one frame per wakeup.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

impl ExecBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn drive(&self, master: Master) -> Result<JobResult, RuntimeError> {
        master.run()
    }
}

/// Real parallel backend: master loop on its own thread with a
/// wall-clock abort timeout, executor slots on a shared [`WorkerPool`],
/// batched frame draining, and eager commit-time shuffle routing.
#[derive(Debug)]
pub struct ThreadedBackend {
    pool: Arc<WorkerPool>,
    frame_batch: usize,
    wallclock_timeout: Duration,
}

impl ThreadedBackend {
    /// Frames drained per master wakeup. Large enough to amortize the
    /// control work across a burst of concurrent completions, small
    /// enough that failure detection and deferred-push retries never
    /// starve.
    const FRAME_BATCH: usize = 32;

    /// Builds the backend from the validated threaded knobs in `config`
    /// (`threaded_workers`, `threaded_channel_capacity`,
    /// `threaded_wallclock_timeout_ms`). The worker pool spins up
    /// immediately and is shared by every executor of the job.
    pub fn from_config(config: &RuntimeConfig) -> Self {
        ThreadedBackend {
            pool: Arc::new(WorkerPool::new(
                config.threaded_workers.max(1),
                config.threaded_channel_capacity.max(1),
            )),
            frame_batch: Self::FRAME_BATCH,
            wallclock_timeout: Duration::from_millis(config.threaded_wallclock_timeout_ms.max(1)),
        }
    }
}

impl ExecBackend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn pool(&self) -> Option<Arc<WorkerPool>> {
        Some(Arc::clone(&self.pool))
    }

    fn frame_batch(&self) -> usize {
        self.frame_batch
    }

    fn eager_routing(&self) -> bool {
        true
    }

    fn drive(&self, master: Master) -> Result<JobResult, RuntimeError> {
        let (tx, rx) = crossbeam::channel::bounded::<Result<JobResult, RuntimeError>>(1);
        let handle = std::thread::Builder::new()
            .name("pado-master".into())
            .spawn(move || {
                let _ = tx.send(master.run());
            })
            .expect("spawn master thread");
        match rx.recv_timeout(self.wallclock_timeout) {
            Ok(result) => {
                let _ = handle.join();
                result
            }
            // The master exceeded its wall-clock budget (a deadlock in
            // the threaded plumbing, or a genuinely over-budget job).
            // Abort the caller; the master thread is leaked as a
            // backstop — joining a wedged thread would just move the
            // hang here.
            Err(_) => Err(RuntimeError::Aborted(format!(
                "threaded backend exceeded its wall-clock timeout \
                 ({} ms) — master loop did not finish",
                self.wallclock_timeout.as_millis()
            ))),
        }
    }
}

/// A job submitted to the [`WorkerPool`].
pub type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size thread pool with a bounded job queue, shared by every
/// executor of a threaded-backend job (task bodies) and by the master
/// (eager shuffle routing).
///
/// Threads are named with the executor worker prefix so the process-wide
/// panic hook filter silences injected task panics on them exactly as it
/// does for dedicated slot threads. The pool never deadlocks the master:
/// the master only ever uses [`try_submit`](WorkerPool::try_submit)
/// (dropping the work back to its lazy fallback when the queue is full),
/// and executor control threads submit at most `slots` outstanding task
/// bodies each (the master's `busy < slots` launch gate bounds them).
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<Sender<PoolJob>>,
    threads: Vec<JoinHandle<()>>,
    /// Jobs submitted but not yet finished (queued + running).
    in_flight: Arc<AtomicUsize>,
}

impl WorkerPool {
    /// Spawns `workers` threads behind a `capacity`-bounded job queue.
    pub fn new(workers: usize, capacity: usize) -> Self {
        let (tx, rx) = crossbeam::channel::bounded::<PoolJob>(capacity.max(1));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let threads = (0..workers.max(1))
            .map(|i| {
                let rx: Receiver<PoolJob> = rx.clone();
                let in_flight = Arc::clone(&in_flight);
                std::thread::Builder::new()
                    // The prefix keys the panic hook filter (see
                    // `executor::install_panic_hook_filter`): injected
                    // task panics on pool threads stay silent too.
                    .name(format!("pado-exec-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                    })
                    .expect("spawn pool worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            threads,
            in_flight,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Submits a job, blocking while the queue is full. Returns `false`
    /// when the pool is shut down.
    pub fn submit(&self, job: PoolJob) -> bool {
        let Some(tx) = &self.tx else { return false };
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if tx.send(job).is_err() {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Submits a job only if queue space is immediately available — the
    /// master's non-blocking path (a full queue means the fallback does
    /// the work lazily instead).
    pub fn try_submit(&self, job: PoolJob) -> bool {
        let Some(tx) = &self.tx else { return false };
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        match tx.try_send(job) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                false
            }
        }
    }

    /// Jobs submitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Waits until every submitted job has finished, up to `timeout`.
    /// Returns `true` when the pool quiesced. The master calls this
    /// during shutdown so straggling pool jobs finish emitting journal
    /// events before the journal freezes.
    pub fn wait_quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.in_flight.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop; in-flight
        // jobs finish first.
        self.tx.take();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_all_submitted_jobs() {
        let pool = WorkerPool::new(4, 8);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            assert!(pool.submit(Box::new(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            })));
        }
        assert!(pool.wait_quiesce(Duration::from_secs(10)));
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn try_submit_reports_a_full_queue_instead_of_blocking() {
        // One worker wedged on a gate; capacity-1 queue fills after one
        // more job; the next try_submit must return false immediately.
        let pool = WorkerPool::new(1, 1);
        let (gate_tx, gate_rx) = crossbeam::channel::bounded::<()>(1);
        let (started_tx, started_rx) = crossbeam::channel::bounded::<()>(1);
        assert!(pool.submit(Box::new(move || {
            let _ = started_tx.send(());
            let _ = gate_rx.recv();
        })));
        // Wait for the worker to pick the blocker up so the queue is
        // empty, then fill it.
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("blocker job should start");
        assert!(pool.try_submit(Box::new(|| {})));
        let rejected = !pool.try_submit(Box::new(|| {}));
        gate_tx.send(()).unwrap();
        assert!(pool.wait_quiesce(Duration::from_secs(10)));
        assert!(rejected, "third job should have found the queue full");
    }

    #[test]
    fn drop_joins_workers_after_draining() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 16);
            for _ in 0..10 {
                let hits = Arc::clone(&hits);
                pool.submit(Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
        // Drop joined the workers; every queued job ran first.
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn backend_kind_parses() {
        assert_eq!(BackendKind::parse("sim"), Some(BackendKind::Sim));
        assert_eq!(BackendKind::parse("threaded"), Some(BackendKind::Threaded));
        assert_eq!(BackendKind::parse("tcp"), None);
        assert_eq!(BackendKind::default(), BackendKind::Sim);
    }
}
