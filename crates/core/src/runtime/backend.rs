//! Execution backends: how the master loop and executor slots map onto
//! threads (DESIGN.md §15).
//!
//! The scheduler, commit protocol, transport, and journal are all
//! backend-agnostic; an [`ExecBackend`] only decides *where* they run:
//!
//! - [`SimBackend`] is the configuration every chaos/invariant suite
//!   runs on: the master loop runs inline on the caller's thread and
//!   each executor owns dedicated slot threads. One frame is handled per
//!   wakeup, shuffle routing happens lazily inside the master, and the
//!   event interleaving stays as close to the original deterministic
//!   loop as real threads allow.
//! - [`ThreadedBackend`] is the wall-clock configuration: the master
//!   loop runs on its own `pado-master` thread, executor slots are
//!   serviced by one shared [`WorkerPool`], inbound frames are drained
//!   in batches between scheduling passes, and hash shuffle routing is
//!   pushed onto the pool eagerly at commit time so it overlaps and
//!   parallelizes instead of serializing in the master.
//!
//! A wedged threaded run **fails well** instead of hanging or leaking
//! (DESIGN.md §16): every run shares a [`CancelToken`] that the
//! wall-clock deadline and the optional hang watchdog set; the master
//! loop, executor control threads, and pool submitters all observe it
//! and unwind cooperatively within a bounded grace period, the pool
//! quiesces, the journal freezes, and the caller gets a structured
//! [`RuntimeError::Stalled`] carrying a [`StallDiagnostics`] snapshot
//! (queue depths, per-worker state, the journal tail) instead of an
//! opaque CI timeout. Invariant law 11 audits the journal those paths
//! leave behind.
//!
//! Both backends implement the same [`Clock`] contract, emit the same
//! `JobEvent` stream up to causal reordering (the canonical journal
//! order is identical), and must produce byte-identical job outputs —
//! `crates/core/tests/backend_equivalence.rs` is the differential proof.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, SendTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;

use crate::error::RuntimeError;
use crate::runtime::clock::Clock;
use crate::runtime::config::RuntimeConfig;
use crate::runtime::journal::{JobEvent, Journal};
use crate::runtime::master::{JobResult, Master};

/// Which execution backend a [`LocalCluster`](crate::runtime::LocalCluster)
/// drives a job on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Deterministic-leaning inline loop (the default; all chaos and
    /// invariant suites run here).
    #[default]
    Sim,
    /// Real parallel backend: master on its own thread, executors on a
    /// shared worker pool, batched frame draining, eager routing.
    Threaded,
}

impl BackendKind {
    /// Parses a CLI/user spelling of a backend name.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "sim" => Some(BackendKind::Sim),
            "threaded" => Some(BackendKind::Threaded),
            _ => None,
        }
    }
}

/// A shared cooperative-cancellation flag: set once, observed
/// everywhere. The threaded backend's wall-clock deadline and hang
/// watchdog set it; the master loop (top of every scheduling pass),
/// executor control threads (every control iteration), and
/// [`WorkerPool::submit`] (every bounded send round) poll it and unwind
/// instead of blocking forever. Cancellation is one-way and sticky.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Progress counters the master loop publishes for the hang watchdog:
/// lock-free, updated once per scheduling pass, read once per watchdog
/// sample. Progress is judged on *work* counters (journal length, pool
/// in-flight, outstanding attempts), not on `loop_ticks` — a wedged run
/// can still spin its master loop on timer wakeups.
#[derive(Debug, Default)]
pub struct StallProbe {
    loop_ticks: AtomicU64,
    outstanding_attempts: AtomicUsize,
    queue_depth: AtomicUsize,
}

impl StallProbe {
    /// Counts one master scheduling pass.
    pub fn tick(&self) {
        self.loop_ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the master's current outstanding-attempt count and
    /// inbound queue depth.
    pub fn record(&self, outstanding_attempts: usize, queue_depth: usize) {
        self.outstanding_attempts
            .store(outstanding_attempts, Ordering::Relaxed);
        self.queue_depth.store(queue_depth, Ordering::Relaxed);
    }

    /// Master scheduling passes so far.
    pub fn loop_ticks(&self) -> u64 {
        self.loop_ticks.load(Ordering::Relaxed)
    }

    /// Task attempts launched but not yet terminally reported.
    pub fn outstanding_attempts(&self) -> usize {
        self.outstanding_attempts.load(Ordering::Relaxed)
    }

    /// Frames queued toward the master at the last pass.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }
}

/// One pool worker's state as sampled for a [`StallDiagnostics`]
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerState {
    /// Whether the worker was inside a job when sampled (a wedged job
    /// shows as a persistently busy worker).
    pub busy: bool,
    /// Jobs the worker has completed.
    pub jobs_run: u64,
}

/// Everything the supervisor knew when it declared a run stalled: the
/// payload of [`RuntimeError::Stalled`], written so a hang in CI reads
/// as a bug report (who is blocked on what) instead of an opaque
/// timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallDiagnostics {
    /// What tripped: the watchdog's no-progress window, the wall-clock
    /// deadline, or an external cancel.
    pub reason: String,
    /// Milliseconds of observed stasis (watchdog) or total run time
    /// (wall-clock expiry).
    pub waited_ms: u64,
    /// Master scheduling passes completed (distinguishes "loop wedged"
    /// from "loop spinning without progress").
    pub loop_ticks: u64,
    /// Journal records emitted when the snapshot was taken.
    pub journal_len: usize,
    /// Pool jobs submitted but unfinished (queued + running).
    pub pool_in_flight: usize,
    /// Pool jobs queued but not yet picked up by a worker.
    pub pool_queue_depth: usize,
    /// Task attempts launched but not terminally reported.
    pub outstanding_attempts: usize,
    /// Frames queued toward the master at its last pass.
    pub master_queue_depth: usize,
    /// Whether the master thread exited within the cancellation grace
    /// period and was joined (false = it had to be detached).
    pub master_joined: bool,
    /// Per-worker busy flags and completion counts.
    pub workers: Vec<WorkerState>,
    /// The last few journal events before the snapshot — what the
    /// runtime was doing when it wedged.
    pub last_events: Vec<JobEvent>,
}

impl StallDiagnostics {
    /// Journal-tail length captured into
    /// [`last_events`](StallDiagnostics::last_events).
    pub const TAIL_EVENTS: usize = 8;

    fn capture(
        reason: String,
        waited_ms: u64,
        journal: &Journal,
        pool: &WorkerPool,
        probe: &StallProbe,
    ) -> Self {
        StallDiagnostics {
            reason,
            waited_ms,
            loop_ticks: probe.loop_ticks(),
            journal_len: journal.len(),
            pool_in_flight: pool.in_flight(),
            pool_queue_depth: pool.queue_depth(),
            outstanding_attempts: probe.outstanding_attempts(),
            master_queue_depth: probe.queue_depth(),
            master_joined: false,
            workers: pool.worker_states(),
            last_events: journal.tail(Self::TAIL_EVENTS),
        }
    }
}

impl fmt::Display for StallDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let busy = self.workers.iter().filter(|w| w.busy).count();
        write!(
            f,
            "{} after {} ms: {} pool jobs in flight ({} queued, {}/{} workers busy), \
             {} outstanding attempts, {} frames queued to master, {} master passes, \
             {} journal events, master thread {}",
            self.reason,
            self.waited_ms,
            self.pool_in_flight,
            self.pool_queue_depth,
            busy,
            self.workers.len(),
            self.outstanding_attempts,
            self.master_queue_depth,
            self.loop_ticks,
            self.journal_len,
            if self.master_joined {
                "joined"
            } else {
                "detached"
            },
        )
    }
}

/// How a job's master loop and executor slots map onto threads.
///
/// The contract every implementation must honor:
///
/// - [`drive`](ExecBackend::drive) runs the master to completion and
///   returns its result (or a positioned error).
/// - The emitted journal must freeze to the same canonical order as any
///   other backend for the same logical execution: causal order is the
///   contract, byte-level emission order is not.
/// - Job outputs must be byte-identical across backends for the same
///   plan (the data plane is deterministic; only timing may differ).
pub trait ExecBackend: Send + Sync + std::fmt::Debug {
    /// Human-readable backend name (journals, benches, traces).
    fn name(&self) -> &'static str;

    /// The scheduling clock the master reads all timer state from.
    fn clock(&self) -> Clock {
        Clock::wall()
    }

    /// The shared pool servicing executor slots, when this backend uses
    /// one (`None` = each executor spawns dedicated slot threads).
    fn pool(&self) -> Option<Arc<WorkerPool>> {
        None
    }

    /// How many inbound frames the master may drain per wakeup before
    /// rerunning its control work (transport pump, schedule pass).
    fn frame_batch(&self) -> usize {
        1
    }

    /// Whether committed hash-shuffle outputs are routed eagerly on the
    /// pool (overlapping producers) instead of lazily in the master at
    /// consumer-launch time.
    fn eager_routing(&self) -> bool {
        false
    }

    /// The cancellation token the master and executors must observe.
    /// The default is a fresh inert token: backends without supervision
    /// (the sim loop) never cancel.
    fn cancel(&self) -> CancelToken {
        CancelToken::new()
    }

    /// The progress probe the master publishes its per-pass counters to,
    /// when this backend runs a hang watchdog.
    fn stall_probe(&self) -> Option<Arc<StallProbe>> {
        None
    }

    /// Runs the master to completion.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the master loop; backends may add
    /// their own failure modes (e.g. the threaded wall-clock timeout).
    fn drive(&self, master: Master) -> Result<JobResult, RuntimeError>;
}

/// The existing deterministic event loop: master inline on the calling
/// thread, dedicated slot threads per executor, one frame per wakeup.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

impl ExecBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn drive(&self, master: Master) -> Result<JobResult, RuntimeError> {
        master.run()
    }
}

/// Real parallel backend: master loop on its own thread supervised by a
/// wall-clock deadline (and optionally a hang watchdog), executor slots
/// on a shared [`WorkerPool`], batched frame draining, and eager
/// commit-time shuffle routing. Aborts are cooperative: supervision
/// cancels the shared token, everything unwinds within the grace
/// period, and the caller gets [`RuntimeError::Stalled`] with a
/// [`StallDiagnostics`] snapshot.
#[derive(Debug)]
pub struct ThreadedBackend {
    pool: Arc<WorkerPool>,
    probe: Arc<StallProbe>,
    frame_batch: usize,
    wallclock_timeout: Duration,
    cancel_grace: Duration,
    watchdog: bool,
    stall_interval: Duration,
    stall_samples: u64,
}

impl ThreadedBackend {
    /// Frames drained per master wakeup. Large enough to amortize the
    /// control work across a burst of concurrent completions, small
    /// enough that failure detection and deferred-push retries never
    /// starve.
    const FRAME_BATCH: usize = 32;

    /// Builds the backend from the validated threaded knobs in `config`
    /// (`threaded_workers`, `threaded_channel_capacity`,
    /// `threaded_wallclock_timeout_ms`, plus the watchdog and
    /// cancellation knobs). The worker pool spins up immediately and is
    /// shared by every executor of the job.
    pub fn from_config(config: &RuntimeConfig) -> Self {
        let cancel_grace = Duration::from_millis(config.cancel_grace_ms.max(1));
        ThreadedBackend {
            pool: Arc::new(WorkerPool::with_grace(
                config.threaded_workers.max(1),
                config.threaded_channel_capacity.max(1),
                cancel_grace,
            )),
            probe: Arc::new(StallProbe::default()),
            frame_batch: Self::FRAME_BATCH,
            wallclock_timeout: Duration::from_millis(config.threaded_wallclock_timeout_ms.max(1)),
            cancel_grace,
            watchdog: config.stall_watchdog,
            stall_interval: Duration::from_millis(config.stall_sample_interval_ms.max(1)),
            stall_samples: config.stall_samples.max(1),
        }
    }

    /// The pool shared by this backend's executors (tests use it to
    /// wedge the pool deliberately).
    pub fn worker_pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.pool)
    }

    /// Spawns the no-progress watchdog. It samples the *work* counters
    /// (journal length, pool in-flight, outstanding attempts) every
    /// `stall_interval`; when all three hold still for `stall_samples`
    /// consecutive samples while work is outstanding, it emits
    /// [`JobEvent::RunStalled`], captures a [`StallDiagnostics`]
    /// snapshot into `slot`, cancels the run, and exits.
    #[allow(clippy::too_many_arguments)]
    fn spawn_watchdog(
        &self,
        journal: Journal,
        cancel: CancelToken,
        stop: Arc<AtomicBool>,
        slot: Arc<Mutex<Option<StallDiagnostics>>>,
    ) -> JoinHandle<()> {
        let pool = Arc::clone(&self.pool);
        let probe = Arc::clone(&self.probe);
        let interval = self.stall_interval;
        let samples = self.stall_samples;
        std::thread::Builder::new()
            .name("pado-watchdog".into())
            .spawn(move || {
                let mut last = (0usize, 0usize, 0usize);
                let mut held = 0u64;
                loop {
                    // Sleep in short slices so drive's stop signal joins
                    // us promptly even under a long sample interval.
                    let wake = Instant::now() + interval;
                    while Instant::now() < wake {
                        if stop.load(Ordering::SeqCst) || cancel.is_cancelled() {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(5).min(interval));
                    }
                    if stop.load(Ordering::SeqCst) || cancel.is_cancelled() {
                        return;
                    }
                    let now = (
                        journal.len(),
                        pool.in_flight(),
                        probe.outstanding_attempts(),
                    );
                    let idle = now.1 == 0 && now.2 == 0;
                    if now == last && !idle {
                        held += 1;
                        if held >= samples {
                            let waited_ms = (interval.as_millis() as u64).saturating_mul(samples);
                            journal.emit(None, JobEvent::RunStalled { waited_ms });
                            *slot.lock() = Some(StallDiagnostics::capture(
                                format!(
                                    "watchdog: no progress across {samples} samples \
                                     ({} ms apart)",
                                    interval.as_millis()
                                ),
                                waited_ms,
                                &journal,
                                &pool,
                                &probe,
                            ));
                            cancel.cancel();
                            return;
                        }
                    } else {
                        held = 0;
                        last = now;
                    }
                }
            })
            .expect("spawn watchdog thread")
    }
}

impl ExecBackend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn pool(&self) -> Option<Arc<WorkerPool>> {
        Some(Arc::clone(&self.pool))
    }

    fn frame_batch(&self) -> usize {
        self.frame_batch
    }

    fn eager_routing(&self) -> bool {
        true
    }

    fn cancel(&self) -> CancelToken {
        self.pool.cancel_token()
    }

    fn stall_probe(&self) -> Option<Arc<StallProbe>> {
        Some(Arc::clone(&self.probe))
    }

    fn drive(&self, master: Master) -> Result<JobResult, RuntimeError> {
        let cancel = self.pool.cancel_token();
        let journal = master.journal_handle();
        let (tx, rx) = crossbeam::channel::bounded::<Result<JobResult, RuntimeError>>(1);
        let handle = std::thread::Builder::new()
            .name("pado-master".into())
            .spawn(move || {
                let _ = tx.send(master.run());
            })
            .expect("spawn master thread");

        let stall_slot: Arc<Mutex<Option<StallDiagnostics>>> = Arc::new(Mutex::new(None));
        let watchdog_stop = Arc::new(AtomicBool::new(false));
        let watchdog = self.watchdog.then(|| {
            self.spawn_watchdog(
                journal.clone(),
                cancel.clone(),
                Arc::clone(&watchdog_stop),
                Arc::clone(&stall_slot),
            )
        });

        // Supervision loop: wait for the master's result while watching
        // the wall clock and the cancel token (the watchdog trips the
        // latter).
        let start = Instant::now();
        let deadline = start + self.wallclock_timeout;
        let mut outcome: Option<Result<JobResult, RuntimeError>> = None;
        let mut wallclock_reason: Option<String> = None;
        loop {
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(result) => {
                    outcome = Some(result);
                    break;
                }
                Err(RecvTimeoutError::Timeout) => {
                    if cancel.is_cancelled() {
                        break;
                    }
                    if Instant::now() >= deadline {
                        wallclock_reason = Some(format!(
                            "wall-clock timeout: master loop did not finish within {} ms",
                            self.wallclock_timeout.as_millis()
                        ));
                        cancel.cancel();
                        break;
                    }
                }
                // The master thread died without sending (a panic in the
                // loop itself); fall through to the join below.
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        watchdog_stop.store(true, Ordering::SeqCst);
        if let Some(w) = watchdog {
            let _ = w.join();
        }

        // Cooperative grace: the cancelled master observes the token at
        // the top of its next pass, aborts its run, quiesces the pool,
        // and freezes the journal — give it a bounded window to do so.
        if outcome.is_none() {
            outcome = rx.recv_timeout(self.cancel_grace).ok();
        }
        let master_joined = if outcome.is_some() || handle.is_finished() {
            let _ = handle.join();
            true
        } else {
            // Last resort: the master ignored cancellation through the
            // whole grace period (wedged outside a cancellation point).
            // Detaching here is the only alternative to moving the hang
            // into the caller; the diagnostics record the leak.
            drop(handle);
            false
        };

        if cancel.is_cancelled() {
            let mut diag = stall_slot.lock().take().unwrap_or_else(|| {
                StallDiagnostics::capture(
                    wallclock_reason.unwrap_or_else(|| "run cancelled by its cancel token".into()),
                    start.elapsed().as_millis() as u64,
                    &journal,
                    &self.pool,
                    &self.probe,
                )
            });
            diag.master_joined = master_joined;
            return Err(RuntimeError::Stalled {
                diagnostics: Box::new(diag),
            });
        }
        outcome.unwrap_or_else(|| {
            Err(RuntimeError::Aborted(
                "master thread terminated without reporting a result".into(),
            ))
        })
    }
}

/// A job submitted to the [`WorkerPool`].
pub type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size thread pool with a bounded job queue, shared by every
/// executor of a threaded-backend job (task bodies) and by the master
/// (eager shuffle routing).
///
/// Threads are named with the executor worker prefix so the process-wide
/// panic hook filter silences injected task panics on them exactly as it
/// does for dedicated slot threads. The pool never deadlocks the master:
/// the master only ever uses [`try_submit`](WorkerPool::try_submit)
/// (dropping the work back to its lazy fallback when the queue is full),
/// and executor control threads submit at most `slots` outstanding task
/// bodies each (the master's `busy < slots` launch gate bounds them).
///
/// Shutdown is cooperative and bounded: [`submit`](WorkerPool::submit)
/// re-checks the shutdown flag and the pool's [`CancelToken`] every
/// bounded send round (so a submitter blocked on a full queue unblocks
/// once shutdown or cancellation begins), and `Drop` joins workers only
/// up to a grace period, detaching — and journaling
/// [`JobEvent::PoolWorkerDetached`] — any worker wedged past it rather
/// than hanging the dropper forever.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<Sender<PoolJob>>,
    threads: Vec<JoinHandle<()>>,
    /// Jobs submitted but not yet finished (queued + running).
    in_flight: Arc<AtomicUsize>,
    /// Set when Drop begins; submitters observe it and stop queueing.
    shutdown: Arc<AtomicBool>,
    /// The run-wide cancellation token (shared with the master loop and
    /// executor control threads on the threaded backend).
    cancel: CancelToken,
    /// Per-worker busy flags and completion counters (diagnostics).
    slots: Arc<Vec<WorkerSlot>>,
    /// Journal armed by the master so Drop can record detached workers.
    journal: Arc<Mutex<Option<Journal>>>,
    /// How long Drop waits for workers before detaching them.
    grace: Duration,
}

/// Lock-free per-worker state shared between the worker thread and
/// diagnostics readers.
#[derive(Debug, Default)]
struct WorkerSlot {
    busy: AtomicBool,
    jobs_run: AtomicU64,
}

impl WorkerPool {
    /// Default Drop grace before a wedged worker is detached.
    const DEFAULT_GRACE: Duration = Duration::from_secs(2);

    /// Spawns `workers` threads behind a `capacity`-bounded job queue,
    /// with the default shutdown grace.
    pub fn new(workers: usize, capacity: usize) -> Self {
        Self::with_grace(workers, capacity, Self::DEFAULT_GRACE)
    }

    /// Spawns `workers` threads behind a `capacity`-bounded job queue;
    /// `grace` bounds how long Drop waits for a wedged worker before
    /// detaching it.
    pub fn with_grace(workers: usize, capacity: usize, grace: Duration) -> Self {
        let (tx, rx) = crossbeam::channel::bounded::<PoolJob>(capacity.max(1));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let slots: Arc<Vec<WorkerSlot>> =
            Arc::new((0..workers.max(1)).map(|_| WorkerSlot::default()).collect());
        let threads = (0..workers.max(1))
            .map(|i| {
                let rx: Receiver<PoolJob> = rx.clone();
                let in_flight = Arc::clone(&in_flight);
                let slots = Arc::clone(&slots);
                std::thread::Builder::new()
                    // The prefix keys the panic hook filter (see
                    // `executor::install_panic_hook_filter`): injected
                    // task panics on pool threads stay silent too.
                    .name(format!("pado-exec-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            slots[i].busy.store(true, Ordering::SeqCst);
                            job();
                            slots[i].busy.store(false, Ordering::SeqCst);
                            slots[i].jobs_run.fetch_add(1, Ordering::SeqCst);
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                    })
                    .expect("spawn pool worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            threads,
            in_flight,
            shutdown: Arc::new(AtomicBool::new(false)),
            cancel: CancelToken::new(),
            slots,
            journal: Arc::new(Mutex::new(None)),
            grace,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// The cancellation token every job of this pool's run shares. The
    /// threaded backend hands the same token to the master and the
    /// executors; cancelling it unblocks submitters and lets
    /// cancellation-aware jobs unwind.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Arms the journal Drop records [`JobEvent::PoolWorkerDetached`]
    /// into. The master arms this when it adopts the pool so a leak is
    /// visible in the run's own event stream.
    pub fn arm_journal(&self, journal: Journal) {
        *self.journal.lock() = Some(journal);
    }

    /// Submits a job, blocking while the queue is full — but never past
    /// shutdown or cancellation: the wait re-checks both every bounded
    /// send round, so a submitter stuck behind a wedged queue unblocks
    /// as soon as the run starts tearing down. Returns `false` when the
    /// job was not accepted.
    pub fn submit(&self, job: PoolJob) -> bool {
        let Some(tx) = &self.tx else { return false };
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let mut job = job;
        loop {
            if self.shutdown.load(Ordering::SeqCst) || self.cancel.is_cancelled() {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                return false;
            }
            match tx.send_timeout(job, Duration::from_millis(10)) {
                Ok(()) => return true,
                Err(SendTimeoutError::Timeout(returned)) => job = returned,
                Err(SendTimeoutError::Disconnected(_)) => {
                    self.in_flight.fetch_sub(1, Ordering::SeqCst);
                    return false;
                }
            }
        }
    }

    /// Submits a job only if queue space is immediately available — the
    /// master's non-blocking path (a full queue means the fallback does
    /// the work lazily instead).
    pub fn try_submit(&self, job: PoolJob) -> bool {
        let Some(tx) = &self.tx else { return false };
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        match tx.try_send(job) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                false
            }
        }
    }

    /// Jobs submitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.tx.as_ref().map_or(0, |tx| tx.len())
    }

    /// A snapshot of every worker's busy flag and completion count.
    pub fn worker_states(&self) -> Vec<WorkerState> {
        self.slots
            .iter()
            .map(|s| WorkerState {
                busy: s.busy.load(Ordering::SeqCst),
                jobs_run: s.jobs_run.load(Ordering::SeqCst),
            })
            .collect()
    }

    /// Waits until every submitted job has finished, up to `timeout`.
    /// Returns `true` when the pool quiesced. The master calls this
    /// during shutdown so straggling pool jobs finish emitting journal
    /// events before the journal freezes.
    pub fn wait_quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.in_flight.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop; queued
        // jobs drain first. The shutdown flag unblocks any submitter
        // still waiting on a full queue.
        self.shutdown.store(true, Ordering::SeqCst);
        self.tx.take();
        // Join cooperatively up to the grace period: poll each worker's
        // liveness instead of committing to an unbounded join, so one
        // wedged job cannot hang the dropper.
        let deadline = Instant::now() + self.grace;
        let mut pending: Vec<(usize, JoinHandle<()>)> =
            self.threads.drain(..).enumerate().collect();
        loop {
            let (done, rest): (Vec<_>, Vec<_>) =
                pending.into_iter().partition(|(_, t)| t.is_finished());
            for (_, t) in done {
                let _ = t.join();
            }
            pending = rest;
            if pending.is_empty() || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Grace expired: detach what's left. Joining a wedged worker
        // would just move the hang here; the journal event makes the
        // leak auditable (law 11 flags it).
        if !pending.is_empty() {
            let journal = self.journal.lock().clone();
            for (i, t) in pending {
                if t.is_finished() {
                    let _ = t.join();
                    continue;
                }
                if let Some(j) = &journal {
                    j.emit(None, JobEvent::PoolWorkerDetached { worker: i });
                }
                drop(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_all_submitted_jobs() {
        let pool = WorkerPool::new(4, 8);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            assert!(pool.submit(Box::new(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            })));
        }
        assert!(pool.wait_quiesce(Duration::from_secs(10)));
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn try_submit_reports_a_full_queue_instead_of_blocking() {
        // One worker wedged on a gate; capacity-1 queue fills after one
        // more job; the next try_submit must return false immediately.
        let pool = WorkerPool::new(1, 1);
        let (gate_tx, gate_rx) = crossbeam::channel::bounded::<()>(1);
        let (started_tx, started_rx) = crossbeam::channel::bounded::<()>(1);
        assert!(pool.submit(Box::new(move || {
            let _ = started_tx.send(());
            let _ = gate_rx.recv();
        })));
        // Wait for the worker to pick the blocker up so the queue is
        // empty, then fill it.
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("blocker job should start");
        assert!(pool.try_submit(Box::new(|| {})));
        let rejected = !pool.try_submit(Box::new(|| {}));
        gate_tx.send(()).unwrap();
        assert!(pool.wait_quiesce(Duration::from_secs(10)));
        assert!(rejected, "third job should have found the queue full");
    }

    #[test]
    fn drop_joins_workers_after_draining() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 16);
            for _ in 0..10 {
                let hits = Arc::clone(&hits);
                pool.submit(Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
        // Drop joined the workers; every queued job ran first.
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn submit_unblocks_when_the_run_is_cancelled() {
        // One worker wedged on a gate, queue full: a blocking submit
        // must give up (returning false) once the cancel token fires,
        // instead of waiting on the wedged queue forever.
        let pool = Arc::new(WorkerPool::new(1, 1));
        let cancel = pool.cancel_token();
        let (gate_tx, gate_rx) = crossbeam::channel::bounded::<()>(1);
        let (started_tx, started_rx) = crossbeam::channel::bounded::<()>(1);
        assert!(pool.submit(Box::new(move || {
            let _ = started_tx.send(());
            let _ = gate_rx.recv();
        })));
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("blocker job should start");
        assert!(pool.submit(Box::new(|| {}))); // fills the queue
        let submitter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.submit(Box::new(|| {})))
        };
        // Give the submitter time to block on the full queue, then
        // cancel the run.
        std::thread::sleep(Duration::from_millis(50));
        cancel.cancel();
        let accepted = submitter.join().expect("submitter thread");
        assert!(!accepted, "cancelled submit must be rejected");
        gate_tx.send(()).unwrap();
        assert!(pool.wait_quiesce(Duration::from_secs(10)));
        // In-flight accounting survived the rejected submit.
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn drop_detaches_a_wedged_worker_and_journals_the_leak() {
        let journal = Journal::new();
        let (gate_tx, gate_rx) = crossbeam::channel::bounded::<()>(1);
        let (started_tx, started_rx) = crossbeam::channel::bounded::<()>(1);
        {
            let pool = WorkerPool::with_grace(1, 4, Duration::from_millis(50));
            pool.arm_journal(journal.clone());
            assert!(pool.submit(Box::new(move || {
                let _ = started_tx.send(());
                let _ = gate_rx.recv();
            })));
            started_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("wedged job should start");
            // Drop now: the worker is stuck inside the job, the grace
            // period expires, and the worker must be detached (not
            // joined forever) with the leak journaled.
        }
        let tail = journal.tail(1);
        assert_eq!(tail, vec![JobEvent::PoolWorkerDetached { worker: 0 }]);
        // Unwedge the detached thread so the test process exits clean.
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn worker_states_report_busy_and_completed_jobs() {
        let pool = WorkerPool::new(2, 8);
        for _ in 0..6 {
            assert!(pool.submit(Box::new(|| {})));
        }
        assert!(pool.wait_quiesce(Duration::from_secs(10)));
        let states = pool.worker_states();
        assert_eq!(states.len(), 2);
        assert!(states.iter().all(|s| !s.busy));
        assert_eq!(states.iter().map(|s| s.jobs_run).sum::<u64>(), 6);
    }

    #[test]
    fn cancel_token_is_sticky_and_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn backend_kind_parses() {
        assert_eq!(BackendKind::parse("sim"), Some(BackendKind::Sim));
        assert_eq!(BackendKind::parse("threaded"), Some(BackendKind::Threaded));
        assert_eq!(BackendKind::parse("tcp"), None);
        assert_eq!(BackendKind::default(), BackendKind::Sim);
    }
}
