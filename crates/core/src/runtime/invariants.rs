//! Replayable invariant checker for the execution journal.
//!
//! [`check`] replays a frozen [`EventJournal`] — no access to the plan,
//! the master, or live state; the journal's embedded
//! [`JournalMeta`](crate::runtime::journal::JournalMeta) is all it needs
//! — and asserts the runtime laws the paper's protocol implies:
//!
//! 1. **Commit-once** (§3.2): at most one committing attempt per task
//!    between reverts; each attempt reports terminally at most once, and
//!    only after it was launched.
//! 2. **Inputs-before-launch** (§3.2.3): a task launches only when every
//!    required producer output is committed and not since reverted.
//! 3. **Placement** (§3.2): no launch on a blacklisted executor or one
//!    already evicted / failed / declared dead; no commit arrives from a
//!    lost executor (the master must discard those reports).
//! 4. **Recovery** (§3.2.5–§3.2.6): every container loss or blacklisting
//!    is followed by a replacement container, and on a successful run
//!    every reverted task is re-committed, every task ends committed, and
//!    every stage ends complete.
//! 5. **Bounded retransmission**: no message is retransmitted more than
//!    the journal's configured bound.
//! 6. **Stage bracketing**: `StageCompleted` only fires on an open
//!    stage, `StageReopened` only on a complete one.
//! 7. **Retry budget**: per-task failure counts stay below
//!    `max_task_attempts` on successful runs (counts reset when a
//!    recovered master resets its bookkeeping).
//! 8. **Memory accounting**: every store event's self-reported occupancy
//!    stays within the executor's (possibly chaos-shrunk) budget; pinned
//!    blocks are never spilled; a spilled block is reloaded before it is
//!    pinned again; every resumed push was first deferred; an attempt
//!    hit by an injected allocation failure never commits.
//! 9. **Epoch-fenced reconfiguration**: the reconfiguration epoch only
//!    advances by exactly one; no task commits under a stale epoch (its
//!    launch epoch must equal the epoch at commit time); a transaction
//!    prepares only after a request, commits only after a prepare and
//!    under the epoch the journal just advanced to; and on a successful
//!    run every requested transaction resolves to committed or aborted.
//! 10. **Crash-consistent recovery**: an attempt that was in flight at a
//!     master recovery is fenced — the recovered master must never accept
//!     a terminal report for it (each task still commits exactly once
//!     across the crash, which laws 1 and the terminal-once rule then
//!     enforce on the continuation); and every `WalRecovered` pairs with
//!     a preceding `MasterRecovered`, so the journal of a recovered run
//!     is a consistent continuation of the pre-crash prefix.
//! 11. **Aborts fail well**: an aborted or stalled run (`RunAborted` /
//!     `RunStalled`) still quiesces its worker pool — a `PoolQuiesced`
//!     event must follow the abort marker, and it must report zero jobs
//!     still in flight; and no run, aborted or not, may leak a worker
//!     thread (`PoolWorkerDetached` is always a violation — a healthy
//!     shutdown unblocks every job via the cancel token, so a detach
//!     means a worker outlived the shutdown grace). This law holds
//!     regardless of the `success` flag: failing well is part of the
//!     protocol.
//!
//! Test suites call [`assert_clean`] on every seeded run, so the ~330
//! chaos / network-chaos / reconfig / equivalence seeds verify protocol
//! conformance, not just byte-identical outputs.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::compiler::FopId;
use crate::runtime::journal::{EventJournal, JobEvent};
use crate::runtime::message::{AttemptId, ExecId};
use crate::runtime::reconfig::ReconfigChange;
use crate::runtime::store::BlockRef;

/// One invariant violation found during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Canonical position of the offending record (index into
    /// [`EventJournal::records`]); `usize::MAX` for end-of-journal
    /// checks that have no single offending record.
    pub position: usize,
    /// Human-readable diagnostic naming the entities involved.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.position == usize::MAX {
            write!(f, "[end] {}", self.message)
        } else {
            write!(f, "[#{}] {}", self.position, self.message)
        }
    }
}

/// Replays the journal and returns every invariant violation found.
/// `success` tells the checker whether the job completed (end-of-journal
/// completeness laws only hold for successful runs; a failed job is
/// allowed to end with reverted tasks, open stages, and an exhausted
/// retry budget).
pub fn check(journal: &EventJournal, success: bool) -> Vec<Violation> {
    let meta = journal.meta();
    let mut violations = Vec::new();
    // attempt -> (fop, index, exec) of its launch
    let mut launched: HashMap<AttemptId, (FopId, usize, ExecId)> = HashMap::new();
    // attempts that already reported terminally (committed or failed)
    let mut terminal: HashSet<AttemptId> = HashSet::new();
    // task -> currently-committing attempt
    let mut committed: HashMap<(FopId, usize), AttemptId> = HashMap::new();
    let mut blacklisted: HashSet<ExecId> = HashSet::new();
    let mut lost: HashSet<ExecId> = HashSet::new();
    let mut stage_complete = vec![false; meta.n_stages];
    // container losses + blacklistings not yet matched by a replacement
    let mut pending_replacements: usize = 0;
    // task -> failures since the last master recovery
    let mut failures: HashMap<(FopId, usize), usize> = HashMap::new();
    // (exec, to_master, seq) -> retransmission count
    let mut retransmits: HashMap<(ExecId, bool, u64), usize> = HashMap::new();
    // --- Memory-pressure domain (law 8) ---
    // exec -> applied store budget, seeded from the meta and updated by
    // `StoreBudgetChanged` (0 and usize::MAX both mean unlimited)
    let mut budgets: HashMap<ExecId, usize> = HashMap::new();
    // (exec, block) pairs currently on the disk tier
    let mut spilled_blocks: HashSet<(ExecId, BlockRef)> = HashSet::new();
    // (exec, block) -> live pin count
    let mut block_pins: HashMap<(ExecId, BlockRef), usize> = HashMap::new();
    // (fop, index, dest exec) -> deferrals not yet resumed
    let mut deferred: HashMap<(FopId, usize, ExecId), usize> = HashMap::new();
    // attempts hit by an injected allocation failure: must never commit
    let mut oomed: HashSet<AttemptId> = HashSet::new();
    // --- Reconfiguration domain (law 9) ---
    // current replayed reconfiguration epoch
    let mut epoch: u64 = 0;
    // attempt -> the epoch it was launched under
    let mut attempt_epoch: HashMap<AttemptId, u64> = HashMap::new();
    // reconfig id -> true once prepared (false while merely requested)
    let mut open_reconfigs: HashMap<u64, bool> = HashMap::new();
    // live task counts: starts at the frozen meta, updated by committed
    // repartitions (the meta keeps the plan-time value)
    let mut parallelism: Vec<usize> = meta.parallelism.clone();
    // fops whose partition count changed: their frozen `required` edges
    // no longer describe the live bucketing, so the inputs-before-launch
    // law is skipped for them (and for edges that reference them)
    let mut repartitioned: HashSet<FopId> = HashSet::new();
    // --- Durability domain (law 10) ---
    // attempts that were in flight (launched, not terminal) at a master
    // recovery: the recovered master must reject their stale reports
    let mut fenced_attempts: HashSet<AttemptId> = HashSet::new();
    let mut master_recoveries: usize = 0;
    let mut wal_recoveries: usize = 0;
    // --- Abort domain (law 11) ---
    // position of the first abort marker (RunAborted / RunStalled)
    let mut abort_marker: Option<usize> = None;
    // true once a PoolQuiesced follows the abort marker
    let mut quiesced_after_abort = false;

    // Self-reported store occupancy must fit the executor's budget.
    fn check_occupancy(
        pos: usize,
        exec: ExecId,
        resident: usize,
        budgets: &HashMap<ExecId, usize>,
        default_budget: usize,
        violations: &mut Vec<Violation>,
    ) {
        let budget = budgets.get(&exec).copied().unwrap_or(default_budget);
        if budget != 0 && budget != usize::MAX && resident > budget {
            violations.push(Violation {
                position: pos,
                message: format!(
                    "store occupancy {resident} B on exec {exec} exceeds its {budget} B budget"
                ),
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    let check_launch = |pos: usize,
                        fop: FopId,
                        index: usize,
                        attempt: AttemptId,
                        exec: ExecId,
                        kind: &str,
                        epoch: u64,
                        launched: &mut HashMap<AttemptId, (FopId, usize, ExecId)>,
                        attempt_epoch: &mut HashMap<AttemptId, u64>,
                        committed: &HashMap<(FopId, usize), AttemptId>,
                        blacklisted: &HashSet<ExecId>,
                        lost: &HashSet<ExecId>,
                        repartitioned: &HashSet<FopId>,
                        violations: &mut Vec<Violation>| {
        attempt_epoch.insert(attempt, epoch);
        if launched.insert(attempt, (fop, index, exec)).is_some() {
            violations.push(Violation {
                position: pos,
                message: format!("{kind} of task {fop}.{index} reuses attempt id {attempt}"),
            });
        }
        if let Some(winner) = committed.get(&(fop, index)) {
            violations.push(Violation {
                position: pos,
                message: format!(
                    "{kind} of task {fop}.{index} (attempt {attempt}) while already \
                         committed by attempt {winner}"
                ),
            });
        }
        if blacklisted.contains(&exec) {
            violations.push(Violation {
                position: pos,
                message: format!(
                    "{kind} of task {fop}.{index} attempt {attempt} on blacklisted exec {exec}"
                ),
            });
        }
        if lost.contains(&exec) {
            violations.push(Violation {
                position: pos,
                message: format!(
                    "{kind} of task {fop}.{index} attempt {attempt} on lost exec {exec}"
                ),
            });
        }
        let required = if repartitioned.contains(&fop) {
            None // frozen edges no longer describe the live bucketing
        } else {
            meta.required.get(fop).and_then(|f| f.get(index))
        };
        if let Some(required) = required {
            for &(sf, si) in required {
                if repartitioned.contains(&sf) {
                    continue;
                }
                if !committed.contains_key(&(sf, si)) {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "{kind} of task {fop}.{index} attempt {attempt} before its \
                                 input {sf}.{si} is locatable"
                        ),
                    });
                }
            }
        }
    };

    for (pos, record) in journal.records().iter().enumerate() {
        match &record.event {
            JobEvent::TaskLaunched {
                fop,
                index,
                attempt,
                exec,
                ..
            } => check_launch(
                pos,
                *fop,
                *index,
                *attempt,
                *exec,
                "launch",
                epoch,
                &mut launched,
                &mut attempt_epoch,
                &committed,
                &blacklisted,
                &lost,
                &repartitioned,
                &mut violations,
            ),
            JobEvent::SpeculativeLaunched {
                fop,
                index,
                attempt,
                exec,
                ..
            } => check_launch(
                pos,
                *fop,
                *index,
                *attempt,
                *exec,
                "speculative launch",
                epoch,
                &mut launched,
                &mut attempt_epoch,
                &committed,
                &blacklisted,
                &lost,
                &repartitioned,
                &mut violations,
            ),
            JobEvent::TaskStarted {
                fop,
                index,
                attempt,
                exec,
            } => match launched.get(attempt) {
                None => violations.push(Violation {
                    position: pos,
                    message: format!(
                        "start of task {fop}.{index} attempt {attempt} that was never launched"
                    ),
                }),
                Some(&(lf, li, le)) => {
                    if (lf, li, le) != (*fop, *index, *exec) {
                        violations.push(Violation {
                            position: pos,
                            message: format!(
                                "start of attempt {attempt} as task {fop}.{index} on exec \
                                 {exec}, but it launched as task {lf}.{li} on exec {le}"
                            ),
                        });
                    }
                }
            },
            JobEvent::TaskCommitted {
                fop,
                index,
                attempt,
                exec,
                ..
            } => {
                match launched.get(attempt) {
                    None => violations.push(Violation {
                        position: pos,
                        message: format!(
                            "commit of task {fop}.{index} attempt {attempt} that was never \
                             launched"
                        ),
                    }),
                    Some(&(lf, li, _)) if (lf, li) != (*fop, *index) => {
                        violations.push(Violation {
                            position: pos,
                            message: format!(
                                "commit of attempt {attempt} as task {fop}.{index}, but it \
                                 launched as task {lf}.{li}"
                            ),
                        });
                    }
                    Some(_) => {}
                }
                if !terminal.insert(*attempt) {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "attempt {attempt} of task {fop}.{index} reported terminally twice"
                        ),
                    });
                }
                if lost.contains(exec) {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "commit of task {fop}.{index} attempt {attempt} accepted from \
                             lost exec {exec}"
                        ),
                    });
                }
                if let Some(winner) = committed.insert((*fop, *index), *attempt) {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "double commit of task {fop}.{index}: attempt {winner} committed, \
                             then attempt {attempt} committed without an intervening revert"
                        ),
                    });
                }
                if oomed.contains(attempt) {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "attempt {attempt} of task {fop}.{index} committed despite an \
                             injected allocation failure"
                        ),
                    });
                }
                if let Some(&launch_epoch) = attempt_epoch.get(attempt) {
                    if launch_epoch != epoch {
                        violations.push(Violation {
                            position: pos,
                            message: format!(
                                "commit of task {fop}.{index} attempt {attempt} under epoch \
                                 {epoch}, but it launched under stale epoch {launch_epoch}"
                            ),
                        });
                    }
                }
                if fenced_attempts.contains(attempt) {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "commit of task {fop}.{index} attempt {attempt} accepted after a \
                             master recovery fenced it"
                        ),
                    });
                }
            }
            JobEvent::TaskFailed {
                fop,
                index,
                attempt,
                ..
            } => {
                if !launched.contains_key(attempt) {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "failure of task {fop}.{index} attempt {attempt} that was never \
                             launched"
                        ),
                    });
                }
                if fenced_attempts.contains(attempt) {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "failure of task {fop}.{index} attempt {attempt} accepted after a \
                             master recovery fenced it"
                        ),
                    });
                }
                if !terminal.insert(*attempt) {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "attempt {attempt} of task {fop}.{index} reported terminally twice"
                        ),
                    });
                }
                let count = failures.entry((*fop, *index)).or_insert(0);
                *count += 1;
                let over_budget = *count > meta.max_task_attempts
                    || (success && *count >= meta.max_task_attempts && meta.max_task_attempts > 0);
                if over_budget {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "task {fop}.{index} failed {count} times (budget {}) {}",
                            meta.max_task_attempts,
                            if success {
                                "yet the job succeeded"
                            } else {
                                "exceeding the retry budget"
                            }
                        ),
                    });
                }
            }
            JobEvent::TaskReverted { fop, index } => {
                if committed.remove(&(*fop, *index)).is_none() {
                    violations.push(Violation {
                        position: pos,
                        message: format!("revert of task {fop}.{index} that was not committed"),
                    });
                }
            }
            JobEvent::ExecutorBlacklisted(e) => {
                if !blacklisted.insert(*e) {
                    violations.push(Violation {
                        position: pos,
                        message: format!("exec {e} blacklisted twice"),
                    });
                }
                pending_replacements += 1;
            }
            JobEvent::ContainerEvicted(e)
            | JobEvent::ReservedFailed(e)
            | JobEvent::ExecutorDeclaredDead(e) => {
                if !lost.insert(*e) {
                    violations.push(Violation {
                        position: pos,
                        message: format!("exec {e} lost twice"),
                    });
                }
                pending_replacements += 1;
                // The executor's memory died with it: clear its replayed
                // store state (the live store does the same, silently).
                budgets.remove(e);
                spilled_blocks.retain(|(ex, _)| ex != e);
                block_pins.retain(|(ex, _), _| ex != e);
                deferred.retain(|(_, _, ex), _| ex != e);
            }
            JobEvent::ContainerAdded(e) => {
                if lost.contains(e) || blacklisted.contains(e) {
                    violations.push(Violation {
                        position: pos,
                        message: format!("replacement container reuses retired exec id {e}"),
                    });
                }
                if pending_replacements == 0 {
                    violations.push(Violation {
                        position: pos,
                        message: format!("container {e} added with no preceding loss"),
                    });
                } else {
                    pending_replacements -= 1;
                }
            }
            JobEvent::HeartbeatMissed(_) => {}
            JobEvent::StageCompleted(s) => match stage_complete.get_mut(*s) {
                None => violations.push(Violation {
                    position: pos,
                    message: format!("completion of unknown stage {s}"),
                }),
                Some(flag) if *flag => violations.push(Violation {
                    position: pos,
                    message: format!("stage {s} completed while already complete"),
                }),
                Some(flag) => *flag = true,
            },
            JobEvent::StageReopened { stage, .. } => match stage_complete.get_mut(*stage) {
                None => violations.push(Violation {
                    position: pos,
                    message: format!("reopening of unknown stage {stage}"),
                }),
                Some(flag) if !*flag => violations.push(Violation {
                    position: pos,
                    message: format!("stage {stage} reopened while already open"),
                }),
                Some(flag) => *flag = false,
            },
            JobEvent::MessageRetransmitted {
                exec,
                to_master,
                seq,
            } => {
                let count = retransmits.entry((*exec, *to_master, *seq)).or_insert(0);
                *count += 1;
                if *count == meta.retransmit_bound + 1 {
                    let dir = if *to_master { "to-master" } else { "to-exec" };
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "message seq {seq} on the {dir} link of exec {exec} retransmitted \
                             more than {} times",
                            meta.retransmit_bound
                        ),
                    });
                }
            }
            JobEvent::MasterRecovered => {
                // A recovered master rebuilds its per-task failure budget
                // from scratch, so the replay budget resets with it.
                failures.clear();
                master_recoveries += 1;
                // Every attempt in flight at the crash is fenced: the
                // recovered master must never accept its stale report.
                for attempt in launched.keys() {
                    if !terminal.contains(attempt) {
                        fenced_attempts.insert(*attempt);
                    }
                }
            }
            JobEvent::WalRecovered { .. } => {
                wal_recoveries += 1;
                if wal_recoveries > master_recoveries {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "WAL recovery #{wal_recoveries} without a preceding master \
                             recovery (only {master_recoveries} seen)"
                        ),
                    });
                }
            }
            JobEvent::BlockAdmitted {
                exec,
                block,
                resident,
                ..
            } => {
                spilled_blocks.remove(&(*exec, *block));
                check_occupancy(
                    pos,
                    *exec,
                    *resident,
                    &budgets,
                    meta.executor_memory_bytes,
                    &mut violations,
                );
            }
            JobEvent::BlockSpilled {
                exec,
                block,
                resident,
                ..
            } => {
                if block_pins.get(&(*exec, *block)).copied().unwrap_or(0) > 0 {
                    violations.push(Violation {
                        position: pos,
                        message: format!("pinned block {block} spilled on exec {exec}"),
                    });
                }
                if !spilled_blocks.insert((*exec, *block)) {
                    violations.push(Violation {
                        position: pos,
                        message: format!("{block} spilled twice on exec {exec} without a reload"),
                    });
                }
                check_occupancy(
                    pos,
                    *exec,
                    *resident,
                    &budgets,
                    meta.executor_memory_bytes,
                    &mut violations,
                );
            }
            JobEvent::BlockLoaded {
                exec,
                block,
                resident,
                ..
            } => {
                if !spilled_blocks.remove(&(*exec, *block)) {
                    violations.push(Violation {
                        position: pos,
                        message: format!("reload of {block} on exec {exec} that was not spilled"),
                    });
                }
                check_occupancy(
                    pos,
                    *exec,
                    *resident,
                    &budgets,
                    meta.executor_memory_bytes,
                    &mut violations,
                );
            }
            JobEvent::BlockReleased {
                exec,
                block,
                resident,
                ..
            } => {
                spilled_blocks.remove(&(*exec, *block));
                check_occupancy(
                    pos,
                    *exec,
                    *resident,
                    &budgets,
                    meta.executor_memory_bytes,
                    &mut violations,
                );
            }
            JobEvent::BlockPinned { exec, block } => {
                if spilled_blocks.contains(&(*exec, *block)) {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "{block} pinned on exec {exec} while spilled (use before reload)"
                        ),
                    });
                }
                *block_pins.entry((*exec, *block)).or_insert(0) += 1;
            }
            JobEvent::BlockUnpinned { exec, block } => match block_pins.get_mut(&(*exec, *block)) {
                Some(n) => {
                    *n -= 1;
                    if *n == 0 {
                        block_pins.remove(&(*exec, *block));
                    }
                }
                None => violations.push(Violation {
                    position: pos,
                    message: format!("unpin of {block} on exec {exec} that holds no pin"),
                }),
            },
            JobEvent::StoreBudgetChanged { exec, budget } => {
                budgets.insert(*exec, *budget);
            }
            JobEvent::PushDeferred {
                fop, index, exec, ..
            } => {
                *deferred.entry((*fop, *index, *exec)).or_insert(0) += 1;
            }
            JobEvent::PushResumed {
                fop, index, exec, ..
            } => match deferred.get_mut(&(*fop, *index, *exec)) {
                Some(n) if *n > 0 => *n -= 1,
                _ => violations.push(Violation {
                    position: pos,
                    message: format!(
                        "push of output {fop}.{index} to exec {exec} resumed without a \
                         matching deferral"
                    ),
                }),
            },
            JobEvent::OomInjected {
                fop,
                index,
                attempt,
                ..
            } => {
                if !launched.contains_key(attempt) {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "allocation failure injected into attempt {attempt} of task \
                             {fop}.{index} that was never launched"
                        ),
                    });
                }
                oomed.insert(*attempt);
            }
            JobEvent::ReconfigRequested { reconfig, .. } => {
                if open_reconfigs.insert(*reconfig, false).is_some() {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "reconfiguration {reconfig} requested while already in flight"
                        ),
                    });
                }
            }
            JobEvent::ReconfigPrepared { reconfig, .. } => match open_reconfigs.get_mut(reconfig) {
                Some(prepared) if !*prepared => *prepared = true,
                Some(_) => violations.push(Violation {
                    position: pos,
                    message: format!("reconfiguration {reconfig} prepared twice"),
                }),
                None => violations.push(Violation {
                    position: pos,
                    message: format!("reconfiguration {reconfig} prepared without a request"),
                }),
            },
            JobEvent::ReconfigCommitted {
                reconfig,
                change,
                epoch: committed_under,
            } => {
                match open_reconfigs.remove(reconfig) {
                    Some(true) => {}
                    Some(false) => violations.push(Violation {
                        position: pos,
                        message: format!("reconfiguration {reconfig} committed without a prepare"),
                    }),
                    None => violations.push(Violation {
                        position: pos,
                        message: format!("reconfiguration {reconfig} committed without a request"),
                    }),
                }
                if *committed_under != epoch {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "reconfiguration {reconfig} committed under epoch {committed_under}, \
                             but the replayed epoch is {epoch}"
                        ),
                    });
                }
                if let ReconfigChange::Repartition {
                    fop,
                    parallelism: par,
                } = change
                {
                    if let Some(slot) = parallelism.get_mut(*fop) {
                        *slot = *par;
                    }
                    repartitioned.insert(*fop);
                }
            }
            JobEvent::ReconfigAborted { reconfig, .. } => {
                if open_reconfigs.remove(reconfig).is_none() {
                    violations.push(Violation {
                        position: pos,
                        message: format!("reconfiguration {reconfig} aborted without a request"),
                    });
                }
            }
            JobEvent::EpochAdvanced { epoch: next } => {
                if *next != epoch + 1 {
                    violations.push(Violation {
                        position: pos,
                        message: format!(
                            "epoch advanced from {epoch} to {next} (must step by exactly one)"
                        ),
                    });
                }
                epoch = *next;
            }
            JobEvent::StaleFrameFenced { .. } => {}
            JobEvent::CacheHit { .. } | JobEvent::CacheMiss { .. } => {}
            JobEvent::RunAborted { .. } | JobEvent::RunStalled { .. } => {
                if abort_marker.is_none() {
                    abort_marker = Some(pos);
                    quiesced_after_abort = false;
                }
            }
            JobEvent::PoolQuiesced { in_flight } => {
                if *in_flight != 0 {
                    violations.push(Violation {
                        position: pos,
                        message: format!("pool quiesced with {in_flight} job(s) still in flight"),
                    });
                }
                if abort_marker.is_some() {
                    quiesced_after_abort = true;
                }
            }
            JobEvent::PoolWorkerDetached { worker } => {
                violations.push(Violation {
                    position: pos,
                    message: format!(
                        "worker {worker} detached: it outlived the shutdown grace and \
                         its thread leaked"
                    ),
                });
            }
        }
    }

    if success {
        for (fop, &par) in parallelism.iter().enumerate() {
            for index in 0..par {
                if !committed.contains_key(&(fop, index)) {
                    violations.push(Violation {
                        position: usize::MAX,
                        message: format!("job succeeded but task {fop}.{index} never committed"),
                    });
                }
            }
        }
        for (s, &complete) in stage_complete.iter().enumerate() {
            if !complete {
                violations.push(Violation {
                    position: usize::MAX,
                    message: format!("job succeeded but stage {s} never completed"),
                });
            }
        }
        if pending_replacements > 0 {
            violations.push(Violation {
                position: usize::MAX,
                message: format!(
                    "{pending_replacements} container loss(es) never followed by a replacement"
                ),
            });
        }
        let mut unresolved: Vec<(u64, bool)> = open_reconfigs.into_iter().collect();
        unresolved.sort_unstable();
        for (id, prepared) in unresolved {
            violations.push(Violation {
                position: usize::MAX,
                message: format!(
                    "reconfiguration {id} {} but never resolved to committed or aborted",
                    if prepared { "prepared" } else { "requested" }
                ),
            });
        }
    }

    // Law 11 end check runs regardless of `success`: failing well is
    // part of the protocol, so an aborted run owes the journal proof
    // that its pool drained.
    if abort_marker.is_some() && !quiesced_after_abort {
        violations.push(Violation {
            position: usize::MAX,
            message: "run aborted but the worker pool never quiesced \
                      (no PoolQuiesced after the abort marker)"
                .into(),
        });
    }

    violations
}

/// Panics with every violation found, or returns quietly on a clean
/// journal. The panic message includes the rendered timeline position of
/// each violation so a failing seed is directly debuggable.
pub fn assert_clean(journal: &EventJournal, success: bool) {
    let violations = check(journal, success);
    if !violations.is_empty() {
        let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        panic!(
            "journal violates {} invariant(s):\n  {}",
            rendered.len(),
            rendered.join("\n  ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::journal::{JournalMeta, JournalRecord};

    /// Two chained single-task fops in one stage: 1.0 requires 0.0.
    fn meta() -> JournalMeta {
        JournalMeta {
            n_stages: 1,
            stage_of: vec![0, 0],
            parallelism: vec![1, 1],
            required: vec![vec![vec![]], vec![vec![(0, 0)]]],
            max_task_attempts: 4,
            retransmit_bound: 2,
            executor_memory_bytes: 0,
        }
    }

    fn journal_with(meta: JournalMeta, events: Vec<JobEvent>) -> EventJournal {
        let records = events
            .into_iter()
            .enumerate()
            .map(|(i, event)| JournalRecord {
                seq: i as u64,
                at_us: i as u64 * 10,
                stage: Some(0),
                event,
            })
            .collect();
        EventJournal::from_parts(meta, records)
    }

    fn journal(events: Vec<JobEvent>) -> EventJournal {
        journal_with(meta(), events)
    }

    fn launch(fop: FopId, index: usize, attempt: AttemptId, exec: ExecId) -> JobEvent {
        JobEvent::TaskLaunched {
            fop,
            index,
            attempt,
            exec,
            relaunch: false,
            side_bytes_sent: 0,
            side_bytes_saved: 0,
            side_cache_misses: 0,
        }
    }

    fn commit(fop: FopId, index: usize, attempt: AttemptId, exec: ExecId) -> JobEvent {
        JobEvent::TaskCommitted {
            fop,
            index,
            attempt,
            exec,
            speculative: false,
            bytes_pushed: 0,
            preaggregated: 0,
            cache_hit: false,
        }
    }

    #[test]
    fn clean_successful_run_passes() {
        let j = journal(vec![
            launch(0, 0, 1, 0),
            commit(0, 0, 1, 0),
            launch(1, 0, 2, 1),
            commit(1, 0, 2, 1),
            JobEvent::StageCompleted(0),
        ]);
        assert_clean(&j, true);
    }

    #[test]
    fn law10_commit_of_fenced_attempt_is_detected() {
        // Attempt 1 was in flight at the recovery; the recovered master
        // must discard its report, never commit it.
        let j = journal(vec![
            launch(0, 0, 1, 0),
            JobEvent::MasterRecovered,
            commit(0, 0, 1, 0),
        ]);
        let v = check(&j, false);
        assert!(
            v.iter().any(|v| v.message.contains("fenced")),
            "missing fence violation: {v:?}"
        );
    }

    #[test]
    fn law10_failure_of_fenced_attempt_is_detected() {
        let j = journal(vec![
            launch(0, 0, 1, 0),
            JobEvent::MasterRecovered,
            JobEvent::TaskFailed {
                fop: 0,
                index: 0,
                attempt: 1,
                exec: 0,
            },
        ]);
        let v = check(&j, false);
        assert!(
            v.iter().any(|v| v.message.contains("fenced")),
            "missing fence violation: {v:?}"
        );
    }

    #[test]
    fn law10_recovered_run_with_fresh_attempts_is_clean() {
        // The canonical WAL-recovery shape: the in-flight attempt is
        // abandoned, the recovered master relaunches under a fenced
        // (much larger) attempt id, and the journal stays clean.
        let j = journal(vec![
            launch(0, 0, 1, 0),
            JobEvent::MasterRecovered,
            JobEvent::WalRecovered {
                frames_replayed: 2,
                frames_truncated: 1,
                snapshot_restored: false,
            },
            launch(0, 0, 1_000_001, 0),
            commit(0, 0, 1_000_001, 0),
            launch(1, 0, 1_000_002, 1),
            commit(1, 0, 1_000_002, 1),
            JobEvent::StageCompleted(0),
        ]);
        assert_clean(&j, true);
    }

    #[test]
    fn law10_wal_recovery_without_master_recovery_is_detected() {
        let j = journal(vec![JobEvent::WalRecovered {
            frames_replayed: 0,
            frames_truncated: 0,
            snapshot_restored: false,
        }]);
        let v = check(&j, false);
        assert!(
            v.iter().any(|v| v.message.contains("WAL recovery")),
            "missing pairing violation: {v:?}"
        );
    }

    #[test]
    fn law11_aborted_run_that_quiesces_is_clean() {
        let j = journal(vec![
            launch(0, 0, 1, 0),
            JobEvent::RunAborted {
                reason: "cancelled".into(),
            },
            JobEvent::PoolQuiesced { in_flight: 0 },
        ]);
        assert_clean(&j, false);
    }

    #[test]
    fn law11_stalled_run_that_quiesces_is_clean() {
        let j = journal(vec![
            launch(0, 0, 1, 0),
            JobEvent::RunStalled { waited_ms: 3_000 },
            JobEvent::PoolQuiesced { in_flight: 0 },
        ]);
        assert_clean(&j, false);
    }

    #[test]
    fn law11_abort_without_quiesce_is_detected() {
        let j = journal(vec![
            launch(0, 0, 1, 0),
            JobEvent::RunAborted {
                reason: "cancelled".into(),
            },
        ]);
        let v = check(&j, false);
        assert!(
            v.iter().any(|v| v.message.contains("never quiesced")),
            "missing quiesce violation: {v:?}"
        );
    }

    #[test]
    fn law11_quiesce_before_abort_does_not_satisfy_the_law() {
        // The PoolQuiesced must FOLLOW the abort marker: a quiesce from
        // an earlier, unrelated point in the run proves nothing about
        // the aborted run's pool.
        let j = journal(vec![
            JobEvent::PoolQuiesced { in_flight: 0 },
            JobEvent::RunAborted {
                reason: "cancelled".into(),
            },
        ]);
        let v = check(&j, false);
        assert!(
            v.iter().any(|v| v.message.contains("never quiesced")),
            "missing quiesce violation: {v:?}"
        );
    }

    #[test]
    fn law11_quiesce_with_jobs_in_flight_is_detected() {
        let j = journal(vec![
            JobEvent::RunStalled { waited_ms: 3_000 },
            JobEvent::PoolQuiesced { in_flight: 2 },
        ]);
        let v = check(&j, false);
        assert!(
            v.iter()
                .any(|v| v.message.contains("2 job(s) still in flight")),
            "missing in-flight violation: {v:?}"
        );
    }

    #[test]
    fn law11_detached_worker_is_detected_even_on_success() {
        let j = journal(vec![
            launch(0, 0, 1, 0),
            commit(0, 0, 1, 0),
            launch(1, 0, 2, 1),
            commit(1, 0, 2, 1),
            JobEvent::StageCompleted(0),
            JobEvent::PoolWorkerDetached { worker: 3 },
        ]);
        let v = check(&j, true);
        assert!(
            v.iter().any(|v| v.message.contains("worker 3 detached")),
            "missing detach violation: {v:?}"
        );
    }

    #[test]
    fn injected_double_commit_is_detected_naming_both_attempts() {
        let j = journal(vec![
            launch(0, 0, 7, 0),
            JobEvent::SpeculativeLaunched {
                fop: 0,
                index: 0,
                attempt: 9,
                exec: 1,
                side_bytes_sent: 0,
                side_bytes_saved: 0,
                side_cache_misses: 0,
            },
            commit(0, 0, 7, 0),
            commit(0, 0, 9, 1),
        ]);
        let violations = check(&j, false);
        assert_eq!(violations.len(), 1, "violations: {violations:?}");
        let msg = &violations[0].message;
        assert!(msg.contains("double commit of task 0.0"), "got: {msg}");
        assert!(
            msg.contains("attempt 7") && msg.contains("attempt 9"),
            "diagnostic must name both attempts, got: {msg}"
        );
    }

    #[test]
    fn launch_before_inputs_locatable_is_detected() {
        let j = journal(vec![launch(1, 0, 1, 0)]);
        let violations = check(&j, false);
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("before its input 0.0 is locatable")),
            "got: {violations:?}"
        );
    }

    #[test]
    fn launch_on_lost_or_blacklisted_executor_is_detected() {
        let j = journal(vec![
            JobEvent::ContainerEvicted(3),
            JobEvent::ContainerAdded(4),
            launch(0, 0, 1, 3),
        ]);
        assert!(check(&j, false)
            .iter()
            .any(|v| v.message.contains("on lost exec 3")),);
        let j = journal(vec![
            JobEvent::ExecutorBlacklisted(2),
            JobEvent::ContainerAdded(4),
            launch(0, 0, 1, 2),
        ]);
        assert!(check(&j, false)
            .iter()
            .any(|v| v.message.contains("on blacklisted exec 2")),);
    }

    #[test]
    fn eviction_without_replacement_fails_successful_runs_only() {
        let events = vec![
            launch(0, 0, 1, 0),
            commit(0, 0, 1, 0),
            launch(1, 0, 2, 1),
            commit(1, 0, 2, 1),
            JobEvent::StageCompleted(0),
            JobEvent::ContainerEvicted(5),
        ];
        let violations = check(&journal(events.clone()), true);
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("never followed by a replacement")),
            "got: {violations:?}"
        );
        assert!(check(&journal(events), false).is_empty());
    }

    #[test]
    fn stage_bracketing_is_enforced() {
        let j = journal(vec![
            JobEvent::StageCompleted(0),
            JobEvent::StageCompleted(0),
        ]);
        assert!(check(&j, false)
            .iter()
            .any(|v| v.message.contains("already complete")),);
        let j = journal(vec![JobEvent::StageReopened {
            stage: 0,
            recompute: true,
        }]);
        assert!(check(&j, false)
            .iter()
            .any(|v| v.message.contains("already open")),);
    }

    #[test]
    fn retransmission_bound_is_enforced() {
        let retry = JobEvent::MessageRetransmitted {
            exec: 1,
            to_master: true,
            seq: 5,
        };
        let j = journal(vec![retry.clone(), retry.clone()]);
        assert!(check(&j, false).is_empty(), "bound is 2, two retries fine");
        let j = journal(vec![retry.clone(), retry.clone(), retry]);
        let violations = check(&j, false);
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("retransmitted more than 2 times")),
            "got: {violations:?}"
        );
    }

    fn blk(fop: FopId, index: usize) -> BlockRef {
        BlockRef::Output { fop, index }
    }

    #[test]
    fn store_occupancy_over_budget_is_detected() {
        // The configured budget bounds self-reported occupancy.
        let m = JournalMeta {
            executor_memory_bytes: 64,
            ..meta()
        };
        let j = journal_with(
            m,
            vec![JobEvent::BlockAdmitted {
                exec: 0,
                block: blk(0, 0),
                bytes: 80,
                resident: 80,
            }],
        );
        assert!(
            check(&j, false)
                .iter()
                .any(|v| v.message.contains("exceeds its 64 B budget")),
            "got: {:?}",
            check(&j, false)
        );
        // A chaos shrink lowers the enforced budget mid-run, even when
        // the job started unlimited.
        let j = journal(vec![
            JobEvent::StoreBudgetChanged {
                exec: 0,
                budget: 32,
            },
            JobEvent::BlockAdmitted {
                exec: 0,
                block: blk(0, 0),
                bytes: 40,
                resident: 40,
            },
        ]);
        assert!(check(&j, false)
            .iter()
            .any(|v| v.message.contains("exceeds its 32 B budget")));
    }

    #[test]
    fn pinned_block_spill_is_detected() {
        let j = journal(vec![
            JobEvent::BlockAdmitted {
                exec: 0,
                block: blk(0, 0),
                bytes: 8,
                resident: 8,
            },
            JobEvent::BlockPinned {
                exec: 0,
                block: blk(0, 0),
            },
            JobEvent::BlockSpilled {
                exec: 0,
                block: blk(0, 0),
                bytes: 8,
                raw_bytes: 8,
                resident: 0,
            },
        ]);
        assert!(check(&j, false)
            .iter()
            .any(|v| v.message.contains("pinned block output 0.0 spilled")));
    }

    #[test]
    fn spilled_block_must_reload_before_pinning() {
        let spill_then_pin = vec![
            JobEvent::BlockAdmitted {
                exec: 0,
                block: blk(0, 0),
                bytes: 8,
                resident: 8,
            },
            JobEvent::BlockSpilled {
                exec: 0,
                block: blk(0, 0),
                bytes: 8,
                raw_bytes: 8,
                resident: 0,
            },
            JobEvent::BlockPinned {
                exec: 0,
                block: blk(0, 0),
            },
        ];
        assert!(check(&journal(spill_then_pin), false)
            .iter()
            .any(|v| v.message.contains("while spilled")));
        let with_reload = vec![
            JobEvent::BlockAdmitted {
                exec: 0,
                block: blk(0, 0),
                bytes: 8,
                resident: 8,
            },
            JobEvent::BlockSpilled {
                exec: 0,
                block: blk(0, 0),
                bytes: 8,
                raw_bytes: 8,
                resident: 0,
            },
            JobEvent::BlockLoaded {
                exec: 0,
                block: blk(0, 0),
                bytes: 8,
                resident: 8,
            },
            JobEvent::BlockPinned {
                exec: 0,
                block: blk(0, 0),
            },
            JobEvent::BlockUnpinned {
                exec: 0,
                block: blk(0, 0),
            },
        ];
        assert!(check(&journal(with_reload), false).is_empty());
    }

    #[test]
    fn oom_attempt_that_commits_is_detected() {
        let j = journal(vec![
            launch(0, 0, 1, 0),
            JobEvent::OomInjected {
                fop: 0,
                index: 0,
                attempt: 1,
                exec: 0,
            },
            commit(0, 0, 1, 0),
        ]);
        assert!(check(&j, false)
            .iter()
            .any(|v| v.message.contains("despite an injected allocation failure")));
    }

    #[test]
    fn push_resume_requires_a_deferral() {
        let j = journal(vec![JobEvent::PushResumed {
            fop: 0,
            index: 0,
            exec: 1,
            bytes: 8,
        }]);
        assert!(check(&j, false)
            .iter()
            .any(|v| v.message.contains("without a matching deferral")));
        let j = journal(vec![
            JobEvent::PushDeferred {
                fop: 0,
                index: 0,
                exec: 1,
                bytes: 8,
            },
            JobEvent::PushResumed {
                fop: 0,
                index: 0,
                exec: 1,
                bytes: 8,
            },
        ]);
        assert!(check(&j, false).is_empty());
    }

    fn reconfig_lifecycle(id: u64, epoch: u64) -> Vec<JobEvent> {
        use crate::compiler::Placement;
        use crate::runtime::reconfig::ReconfigTrigger;
        let change = ReconfigChange::MigrateStage {
            stage: 0,
            to: Placement::Reserved,
        };
        vec![
            JobEvent::ReconfigRequested {
                reconfig: id,
                trigger: ReconfigTrigger::Api,
                change,
            },
            JobEvent::ReconfigPrepared {
                reconfig: id,
                quiesced: 0,
            },
            JobEvent::EpochAdvanced { epoch },
            JobEvent::ReconfigCommitted {
                reconfig: id,
                change,
                epoch,
            },
        ]
    }

    #[test]
    fn clean_reconfig_run_passes() {
        let mut events = vec![launch(0, 0, 1, 0), commit(0, 0, 1, 0)];
        events.extend(reconfig_lifecycle(0, 1));
        events.extend([
            launch(1, 0, 2, 1),
            commit(1, 0, 2, 1),
            JobEvent::StageCompleted(0),
        ]);
        assert_clean(&journal(events), true);
    }

    #[test]
    fn stale_epoch_commit_is_detected() {
        // Attempt 2 launches under epoch 0, a reconfiguration commits
        // (epoch -> 1), then the stale attempt's commit arrives.
        let mut events = vec![launch(0, 0, 1, 0), commit(0, 0, 1, 0), launch(1, 0, 2, 1)];
        events.extend(reconfig_lifecycle(0, 1));
        events.push(commit(1, 0, 2, 1));
        let violations = check(&journal(events), false);
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("launched under stale epoch 0")),
            "got: {violations:?}"
        );
    }

    #[test]
    fn epoch_must_step_by_exactly_one() {
        let j = journal(vec![JobEvent::EpochAdvanced { epoch: 2 }]);
        assert!(check(&j, false)
            .iter()
            .any(|v| v.message.contains("must step by exactly one")));
    }

    #[test]
    fn prepare_and_commit_require_their_predecessors() {
        let j = journal(vec![JobEvent::ReconfigPrepared {
            reconfig: 3,
            quiesced: 0,
        }]);
        assert!(check(&j, false)
            .iter()
            .any(|v| v.message.contains("prepared without a request")));
        use crate::compiler::Placement;
        use crate::runtime::reconfig::ReconfigTrigger;
        let change = ReconfigChange::MigrateStage {
            stage: 0,
            to: Placement::Reserved,
        };
        let j = journal(vec![
            JobEvent::ReconfigRequested {
                reconfig: 3,
                trigger: ReconfigTrigger::Chaos,
                change,
            },
            JobEvent::EpochAdvanced { epoch: 1 },
            JobEvent::ReconfigCommitted {
                reconfig: 3,
                change,
                epoch: 1,
            },
        ]);
        assert!(check(&j, false)
            .iter()
            .any(|v| v.message.contains("committed without a prepare")));
    }

    #[test]
    fn unresolved_prepared_reconfig_fails_successful_run() {
        use crate::compiler::Placement;
        use crate::runtime::reconfig::ReconfigTrigger;
        let events = vec![
            launch(0, 0, 1, 0),
            commit(0, 0, 1, 0),
            launch(1, 0, 2, 1),
            commit(1, 0, 2, 1),
            JobEvent::StageCompleted(0),
            JobEvent::ReconfigRequested {
                reconfig: 0,
                trigger: ReconfigTrigger::Policy,
                change: ReconfigChange::MigrateStage {
                    stage: 0,
                    to: Placement::Reserved,
                },
            },
            JobEvent::ReconfigPrepared {
                reconfig: 0,
                quiesced: 1,
            },
        ];
        let violations = check(&journal(events.clone()), true);
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("prepared but never resolved")),
            "got: {violations:?}"
        );
        // A failed run may end mid-transaction.
        assert!(check(&journal(events), false).is_empty());
    }

    #[test]
    fn committed_repartition_updates_the_completeness_target() {
        use crate::runtime::reconfig::ReconfigTrigger;
        // Fop 1 repartitions from 1 task to 2; a run that commits only
        // 1.0 no longer satisfies completeness.
        let change = ReconfigChange::Repartition {
            fop: 1,
            parallelism: 2,
        };
        let events = vec![
            JobEvent::ReconfigRequested {
                reconfig: 0,
                trigger: ReconfigTrigger::Api,
                change,
            },
            JobEvent::ReconfigPrepared {
                reconfig: 0,
                quiesced: 0,
            },
            JobEvent::EpochAdvanced { epoch: 1 },
            JobEvent::ReconfigCommitted {
                reconfig: 0,
                change,
                epoch: 1,
            },
            launch(0, 0, 1, 0),
            commit(0, 0, 1, 0),
            launch(1, 0, 2, 1),
            commit(1, 0, 2, 1),
            JobEvent::StageCompleted(0),
        ];
        let violations = check(&journal(events), true);
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("task 1.1 never committed")),
            "got: {violations:?}"
        );
    }

    #[test]
    fn incomplete_task_fails_successful_run() {
        let j = journal(vec![
            launch(0, 0, 1, 0),
            commit(0, 0, 1, 0),
            JobEvent::StageCompleted(0),
        ]);
        let violations = check(&j, true);
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("task 1.0 never committed")),
            "got: {violations:?}"
        );
    }
}
